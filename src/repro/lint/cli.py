"""``python -m repro.lint`` — the simlint command line.

Exit codes: 0 clean, 1 unsuppressed violations, 2 usage errors
(unknown rule ids, missing paths).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.cache import LintCache, default_cache_path
from repro.lint.engine import lint_paths
from repro.lint.registry import all_rules, get_rule
from repro.lint.reporters import render_json, render_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "simlint: determinism & kernel-protocol static analysis "
            "for the simulator sources"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks", "tests"],
        help=(
            "files or directories to lint "
            "(default: src benchmarks tests)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="lint every file even if cached",
    )
    parser.add_argument(
        "--cache-file",
        metavar="PATH",
        help=(
            "cache location (default: $REPRO_LINT_CACHE or "
            "results/.cache/simlint.json)"
        ),
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in text output",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        scope = (
            "+".join(
                fragment.strip("/").split("/")[-1]
                for fragment in rule.include
            )
            if rule.include
            else "all"
        )
        lines.append(f"{rule.rule_id}  [{scope}]")
        lines.append(f"    {rule.summary}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        print(_list_rules())
        return 0

    rules = all_rules()
    if options.select:
        try:
            rules = [
                get_rule(rule_id.strip())
                for rule_id in options.select.split(",")
                if rule_id.strip()
            ]
        except KeyError as error:
            print(f"unknown rule id: {error.args[0]}", file=sys.stderr)
            return 2
        if not rules:
            print("--select named no rules", file=sys.stderr)
            return 2

    cache = None
    if not options.no_cache:
        cache_path = (
            Path(options.cache_file)
            if options.cache_file
            else default_cache_path()
        )
        cache = LintCache(cache_path)

    try:
        report = lint_paths(
            [Path(p) for p in options.paths], rules, cache
        )
    except FileNotFoundError as error:
        print(str(error), file=sys.stderr)
        return 2

    if options.format == "json":
        print(render_json(report))
    else:
        print(
            render_text(
                report, show_suppressed=options.show_suppressed
            )
        )
    return 0 if report.ok else 1
