"""``python -m repro.lint`` — the simlint command line.

Exit codes: 0 clean, 1 findings (live error-severity violations or a
stale baseline), 2 engine/config errors only (unknown rule patterns,
missing paths, unreadable baseline).
"""

from __future__ import annotations

import argparse
import fnmatch
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import Baseline, default_baseline_path
from repro.lint.cache import LintCache, default_cache_path
from repro.lint.engine import lint_paths
from repro.lint.registry import all_project_rules, all_rules
from repro.lint.reporters import render_json, render_sarif, render_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "simlint: determinism & kernel-protocol static analysis "
            "for the simulator sources"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks", "tests"],
        help=(
            "files or directories to lint "
            "(default: src benchmarks tests)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="PATTERNS",
        help=(
            "comma-separated rule ids or globs to run "
            "(e.g. 'stream-*,cc-interface'; default: all)"
        ),
    )
    parser.add_argument(
        "--ignore",
        metavar="PATTERNS",
        help="comma-separated rule ids or globs to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=(
            "baseline file of inventoried findings (default: the "
            "committed lint/baseline.json when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline, report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to inventory every current "
            "error-severity finding, then exit 0"
        ),
    )
    parser.add_argument(
        "--update-race-evidence",
        action="store_true",
        help=(
            "recompute the static reachability evidence stored on "
            "each simsan race-baseline entry and rewrite the simsan "
            "baseline, then exit 0"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help=(
            "file-pass worker processes "
            "(default: $REPRO_LINT_JOBS or 1)"
        ),
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip whole-program project rules (file rules only)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="lint every file even if cached",
    )
    parser.add_argument(
        "--cache-file",
        metavar="PATH",
        help=(
            "cache location (default: $REPRO_LINT_CACHE or "
            "results/.cache/simlint.json)"
        ),
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed/baselined findings in text output",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for kind, rules in (
        ("file", all_rules()),
        ("project", all_project_rules()),
    ):
        for rule in rules:
            scope = (
                "+".join(
                    fragment.strip("/").split("/")[-1] or fragment
                    for fragment in rule.include
                )
                if rule.include
                else "all"
            )
            lines.append(
                f"{rule.rule_id}  [{kind}, {rule.severity}, {scope}]"
            )
            lines.append(f"    {rule.summary}")
    return "\n".join(lines)


def _select_rules(
    select: Optional[str], ignore: Optional[str]
) -> tuple:
    """Resolve ``--select``/``--ignore`` glob lists into rule lists.

    Returns ``(file_rules, project_rules)``; raises ``ValueError``
    with a message when a pattern matches no rule id (a typo'd
    pattern silently linting nothing must not report success).
    """
    file_rules = {rule.rule_id: rule for rule in all_rules()}
    project_rules = {
        rule.rule_id: rule for rule in all_project_rules()
    }
    every_id = sorted(file_rules) + sorted(project_rules)

    def patterns(raw: Optional[str]) -> List[str]:
        if not raw:
            return []
        return [part.strip() for part in raw.split(",") if part.strip()]

    selected = set()
    select_patterns = patterns(select)
    if select_patterns:
        for pattern in select_patterns:
            matched = fnmatch.filter(every_id, pattern)
            if not matched:
                raise ValueError(
                    f"unknown rule: --select pattern {pattern!r} "
                    "matches no rule id"
                )
            selected.update(matched)
    else:
        selected.update(every_id)

    for pattern in patterns(ignore):
        matched = fnmatch.filter(every_id, pattern)
        if not matched:
            raise ValueError(
                f"unknown rule: --ignore pattern {pattern!r} "
                "matches no rule id"
            )
        selected.difference_update(matched)

    if not selected:
        raise ValueError("--select/--ignore left no rules to run")
    return (
        [file_rules[i] for i in sorted(selected) if i in file_rules],
        [
            project_rules[i]
            for i in sorted(selected)
            if i in project_rules
        ],
    )


def _resolve_baseline(options) -> Optional[Baseline]:
    """The baseline to apply, honouring the CLI flags."""
    if options.no_baseline or options.update_baseline:
        return None
    if options.baseline:
        return Baseline.load(Path(options.baseline))
    committed = default_baseline_path()
    if committed.exists():
        return Baseline.load(committed)
    return None


def _update_race_evidence(options) -> int:
    """Recompute static evidence on the simsan race baseline."""
    from repro.lint.engine import discover_files
    from repro.lint.flow.reconcile import (
        _tree_baseline_path,
        update_race_evidence,
    )
    from repro.lint.project import ProjectModel

    try:
        files = discover_files([Path(p) for p in options.paths])
        model = ProjectModel.build(files)
        target = _tree_baseline_path(model)
        if target is None or not target.exists():
            raise ValueError(
                "no simsan baseline in the linted tree (expected "
                "next to repro/sanitizer/report.py)"
            )
        changed = update_race_evidence(model, target)
    except (FileNotFoundError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    print(f"race evidence: {changed} entry(ies) updated in {target}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        print(_list_rules())
        return 0

    if options.update_race_evidence:
        return _update_race_evidence(options)

    try:
        rules, project_rules = _select_rules(
            options.select, options.ignore
        )
        baseline = _resolve_baseline(options)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if options.no_project:
        project_rules = []

    cache = None
    if not options.no_cache:
        cache_path = (
            Path(options.cache_file)
            if options.cache_file
            else default_cache_path()
        )
        cache = LintCache(cache_path)

    try:
        report = lint_paths(
            [Path(p) for p in options.paths],
            rules,
            cache,
            project_rules=project_rules,
            baseline=baseline,
            jobs=options.jobs,
        )
    except (FileNotFoundError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2

    if options.update_baseline:
        target = Path(
            options.baseline
            if options.baseline
            else default_baseline_path()
        )
        updated = Baseline.from_violations(
            [v for v in report.failures],
            reason="inventoried by --update-baseline; justify or fix",
        )
        updated.write(target)
        print(
            f"baseline: inventoried {sum(e.count for e in updated.entries)} "
            f"finding(s) in {target}"
        )
        return 0

    if options.format == "json":
        print(render_json(report))
    elif options.format == "sarif":
        print(render_sarif(report, rules + list(project_rules)))
    else:
        print(
            render_text(
                report, show_suppressed=options.show_suppressed
            )
        )
    return 0 if report.ok else 1
