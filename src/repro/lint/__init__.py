"""simlint — determinism & kernel-protocol static analysis.

The simulator must be a pure function of its configuration: identical
configs (seed included) give bit-identical schedules and metrics.  That
property is easy to break with ordinary-looking Python — an ``id()``
-keyed dict, a module-level ``random.random()`` call, iterating a
``set`` to pick a deadlock victim — and such breaks are invisible to
the type checker and usually to the test suite (they only show up as
rare cross-run flakes).  simlint rejects those bug classes at review
time by walking the AST of every source file.

Usage::

    python -m repro.lint src benchmarks tests
    python -m repro.lint src --format=json
    python -m repro.lint --list-rules

Findings that are intentional are silenced inline::

    if top.time == now:  # simlint: ignore[float-time-equality]

See :mod:`repro.lint.rules` for the rule set and
:mod:`repro.lint.engine` for the caching file driver.
"""

from repro.lint.engine import LintReport, lint_file, lint_paths
from repro.lint.registry import Rule, all_rules, get_rule, rules_signature
from repro.lint.violations import Violation

__all__ = [
    "LintReport",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "rules_signature",
]
