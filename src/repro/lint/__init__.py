"""simlint — determinism & kernel-protocol static analysis.

The simulator must be a pure function of its configuration: identical
configs (seed included) give bit-identical schedules and metrics.  That
property is easy to break with ordinary-looking Python — an ``id()``
-keyed dict, a module-level ``random.random()`` call, iterating a
``set`` to pick a deadlock victim — and such breaks are invisible to
the type checker and usually to the test suite (they only show up as
rare cross-run flakes).  simlint rejects those bug classes at review
time by walking the AST of every source file, then runs a
whole-program pass (:mod:`repro.lint.project`) over a symbol table and
call graph of the full tree to check cross-module contracts: stream
registrations, message-handler arity, CC-interface completeness, and
non-``Waitable`` yields.

Usage::

    python -m repro.lint src benchmarks tests
    python -m repro.lint src --format=json
    python -m repro.lint --format=sarif --jobs 4
    python -m repro.lint --select 'stream-*' --list-rules

Findings that are intentional are silenced inline::

    if top.time == now:  # simlint: ignore[float-time-equality]

or inventoried (with a reason) in ``lint/baseline.json``; only live
``error``-severity findings and stale baseline entries fail a run.

See :mod:`repro.lint.rules` for the file rules,
:mod:`repro.lint.project` for the project rules, and
:mod:`repro.lint.engine` for the caching, multi-process driver.
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.engine import LintReport, lint_file, lint_paths
from repro.lint.registry import (
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    get_rule,
    rules_signature,
)
from repro.lint.violations import Violation

__all__ = [
    "Baseline",
    "BaselineEntry",
    "LintReport",
    "ProjectRule",
    "Rule",
    "Violation",
    "all_project_rules",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "rules_signature",
]
