"""The violation record produced by every lint rule."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict

__all__ = ["SEVERITIES", "Violation"]

#: Recognized severity levels, strongest first.  Only ``error``
#: findings fail a run; ``warning`` and ``info`` are reported (and
#: surfaced in SARIF) without gating.
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a source location.

    ``suppressed`` is True when the flagged line carries a matching
    ``# simlint: ignore[rule-id]`` comment; ``baselined`` is True when
    a checked-in baseline entry inventories the finding.  Neither kind
    fails the run, but both are reported (JSON/SARIF always, text on
    request) so the waiver inventory stays auditable.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    suppressed: bool = False
    baselined: bool = False

    @property
    def sort_key(self) -> tuple:
        """Stable report order: location first, then rule."""
        return (self.path, self.line, self.col, self.rule_id)

    @property
    def counts(self) -> bool:
        """Whether this finding is live (neither waived nor baselined)."""
        return not self.suppressed and not self.baselined

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (used by the reporter and the cache)."""
        return {
            "rule_id": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Violation":
        """Inverse of :meth:`as_dict` (used by the result cache)."""
        return cls(
            rule_id=data["rule_id"],
            path=data["path"],
            line=int(data["line"]),
            col=int(data["col"]),
            message=data["message"],
            severity=str(data.get("severity", "error")),
            suppressed=bool(data["suppressed"]),
            baselined=bool(data.get("baselined", False)),
        )

    def with_path(self, path: str) -> "Violation":
        """The same finding relocated to ``path``.

        Cache entries are keyed on file *content*, so a hit may have
        been recorded under a different path (e.g. a moved file); the
        engine rebinds the location before reporting.
        """
        if path == self.path:
            return self
        return replace(self, path=path)

    def as_suppressed(self) -> "Violation":
        """A copy marked as waived by an inline comment."""
        return replace(self, suppressed=True)

    def as_baselined(self) -> "Violation":
        """A copy marked as inventoried by the baseline file."""
        return replace(self, baselined=True)
