"""The violation record produced by every lint rule."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["Violation"]


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a source location.

    ``suppressed`` is True when the flagged line carries a matching
    ``# simlint: ignore[rule-id]`` comment; suppressed findings are
    reported (JSON always, text on request) but never fail the run.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    @property
    def sort_key(self) -> tuple:
        """Stable report order: location first, then rule."""
        return (self.path, self.line, self.col, self.rule_id)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering (used by the reporter and the cache)."""
        return {
            "rule_id": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Violation":
        """Inverse of :meth:`as_dict` (used by the result cache)."""
        return cls(
            rule_id=data["rule_id"],
            path=data["path"],
            line=int(data["line"]),
            col=int(data["col"]),
            message=data["message"],
            suppressed=bool(data["suppressed"]),
        )

    def with_path(self, path: str) -> "Violation":
        """The same finding relocated to ``path``.

        Cache entries are keyed on file *content*, so a hit may have
        been recorded under a different path (e.g. a moved file); the
        engine rebinds the location before reporting.
        """
        if path == self.path:
            return self
        return Violation(
            rule_id=self.rule_id,
            path=path,
            line=self.line,
            col=self.col,
            message=self.message,
            suppressed=self.suppressed,
        )
