"""Flow-sensitive rules: the checks that need paths, not patterns.

Four rule classes built on the CFG / reaching-definitions / taint
layers (plus the static↔runtime reconciliation rule registered from
:mod:`repro.lint.flow.reconcile`):

``time-taint``
    The interprocedural generalization of ``float-time-equality``:
    values *derived by arithmetic* from simulated time (``now +
    delay``, interest accrued across helper returns) flowing into
    ``==``/``!=``/``in``, dict keys, set elements, ``hash()``, or
    subscript-store keys.  Pure copies of stored schedule times are
    exempt — they compare exactly by construction.
``draw-escape``
    RNG draw results crossing a message boundary (posted over the
    simulated network) or stored into a hash-ordered ``set``: either
    way the draw is consumed in an order the stream discipline cannot
    pin, so common-random-numbers comparisons silently decouple.
``waitable-escape``
    A Waitable created from the environment and, on some normal path,
    neither yielded nor cancelled nor handed off: the kernel carries a
    pending event forever (the static twin of simsan's leak audit).
``lock-path-discipline``
    CC code that acquires a lock-table entry must consume the
    acquisition result on *every* CFG path out — including exception
    edges — so no path can leave a granted-or-queued request dangling.

All four fail the run (``error``); ``--select``/``--ignore``,
suppressions, baselines, and ``--jobs`` apply exactly as they do to
every other rule.  The file rules declare the engine modules in
``extra_hash_modules`` so an engine edit busts their cached verdicts.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.flow.dataflow import FunctionFlow
from repro.lint.flow.taint import (
    DrawTaint,
    ProjectTaint,
    SINK_EQUALITY,
    TimeTaint,
    is_stream_draw_call,
    is_timeish,
    iter_hash_sinks,
)
from repro.lint.registry import (
    ProjectRule,
    Rule,
    register,
    register_project,
)
from repro.lint.project import _is_network_ref
from repro.lint.rules import _is_env_waitable_call
from repro.lint.violations import Violation

__all__ = [
    "DrawEscapeRule",
    "ENGINE_MODULES",
    "LockPathDisciplineRule",
    "TimeTaintRule",
    "WaitableEscapeRule",
]

#: Engine modules every flow rule's cached verdicts depend on.
ENGINE_MODULES = (
    "repro.lint.flow.cfg",
    "repro.lint.flow.dataflow",
    "repro.lint.flow.taint",
)


def _scopes(tree: ast.AST) -> List[ast.AST]:
    """Every analysis scope in one file: the module, each class body,
    each (nested) function."""
    scopes: List[ast.AST] = [tree]
    for node in ast.walk(tree):
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            scopes.append(node)
    return scopes


def _parent_map(root: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _node_index_of(flow: FunctionFlow, stmt: ast.AST) -> Optional[int]:
    for index, candidate in enumerate(flow.cfg.stmts):
        if candidate is stmt:
            return index
    return None


# ======================================================================
# waitable-escape
# ======================================================================


@register
class WaitableEscapeRule(Rule):
    """Waitables provably never yielded nor cancelled on some path."""

    rule_id = "waitable-escape"
    summary = (
        "Waitable created here is neither yielded nor cancelled on "
        "some path to function exit: the kernel keeps the pending "
        "event alive forever (simsan's leak audit would report it at "
        "runtime); yield it, cancel it, or hand it off explicitly"
    )
    severity = "error"
    version = 1
    include = ("repro/",)
    extra_hash_modules = ENGINE_MODULES

    #: Method calls that settle a waitable in place.
    _CONSUME_METHODS = frozenset(
        {"cancel", "succeed", "fail", "trigger"}
    )

    def check(self, tree, source, path):
        violations: List[Violation] = []
        for scope in _scopes(tree):
            self._check_scope(scope, path, violations)
        return violations

    def _check_scope(
        self, scope: ast.AST, path: str, violations: List[Violation]
    ) -> None:
        candidates = self._candidates(scope)
        if not candidates:
            return
        flow = FunctionFlow(scope)
        for var, stmt in candidates:
            def_index = _node_index_of(flow, stmt)
            if def_index is None:
                continue
            escaped, consuming = self._classify_uses(
                flow, var, stmt
            )
            if escaped:
                continue  # handed off somewhere we cannot track
            if not consuming or flow.cfg.reaches_exit_avoiding(
                def_index, consuming, include_exceptional=False
            ):
                violations.append(self.violation(path, stmt))

    @staticmethod
    def _candidates(
        scope: ast.AST,
    ) -> List[Tuple[str, ast.Assign]]:
        found: List[Tuple[str, ast.Assign]] = []
        stack = list(scope.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                 ast.ClassDef),
            ):
                continue
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_env_waitable_call(node.value)
            ):
                found.append((node.targets[0].id, node))
            stack.extend(ast.iter_child_nodes(node))
        return found

    def _classify_uses(
        self, flow: FunctionFlow, var: str, defining: ast.Assign
    ) -> Tuple[bool, Set[int]]:
        """(some use escapes tracking, node indices with a consuming
        use) for every load of ``var`` outside its defining assign."""
        consuming: Set[int] = set()
        for index, stmt in enumerate(flow.cfg.stmts):
            if stmt is defining:
                continue
            for root in flow.cfg.expressions(index):
                parents = _parent_map(root)
                for node in ast.walk(root):
                    if not (
                        isinstance(node, ast.Name)
                        and node.id == var
                        and isinstance(node.ctx, ast.Load)
                    ):
                        continue
                    verdict = self._classify_one(
                        node, parents, root, stmt
                    )
                    if verdict == "escape":
                        return True, consuming
                    if verdict == "consume":
                        consuming.add(index)
        return False, consuming

    def _classify_one(
        self,
        name: ast.Name,
        parents: Dict[ast.AST, ast.AST],
        root: ast.AST,
        stmt: Optional[ast.AST],
    ) -> str:
        parent = parents.get(name)
        if parent is None:
            # The name is the whole expression root: a Return value,
            # an Assign value (alias/store), a bare Expr...  Only a
            # handful of statements evaluate a bare name root.
            if isinstance(stmt, (ast.Return, ast.Assign,
                                 ast.AnnAssign)):
                return "escape"
            return "neutral"
        if isinstance(parent, ast.Yield) and parent.value is name:
            return "consume"
        if isinstance(parent, ast.Attribute) and parent.value is name:
            grand = parents.get(parent)
            if (
                parent.attr in self._CONSUME_METHODS
                and isinstance(grand, ast.Call)
                and grand.func is parent
            ):
                return "consume"
            return "neutral"  # attribute read (x.time, x.done)
        if isinstance(parent, ast.Call):
            if name in parent.args or any(
                keyword.value is name
                for keyword in parent.keywords
            ):
                return "escape"
            return "neutral"
        if isinstance(
            parent,
            (ast.Compare, ast.BoolOp, ast.UnaryOp, ast.IfExp),
        ):
            return "neutral"
        if isinstance(stmt, (ast.If, ast.While)):
            return "neutral"  # truthiness test
        # Containers, subscripts, starred args, returns of
        # expressions, f-strings, anything else: assume handed off.
        return "escape"


# ======================================================================
# lock-path-discipline
# ======================================================================


def _is_lockish(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return "lock" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "lock" in node.attr.lower()
    return False


@register
class LockPathDisciplineRule(Rule):
    """Acquire results must be consumed on every path out."""

    rule_id = "lock-path-discipline"
    summary = (
        "lock-table acquire whose result escapes inspection on some "
        "CFG path (including exception edges): every path out of a CC "
        "method must branch on the grant or hand the request to "
        "conflict handling, or a queued entry dangles past a release"
    )
    severity = "error"
    version = 1
    include = ("repro/cc/", "repro/router/")
    extra_hash_modules = ENGINE_MODULES

    def check(self, tree, source, path):
        violations: List[Violation] = []
        for scope in _scopes(tree):
            self._check_scope(scope, path, violations)
        return violations

    def _check_scope(
        self, scope: ast.AST, path: str, violations: List[Violation]
    ) -> None:
        acquires = self._acquire_statements(scope)
        if not acquires:
            return
        flow = FunctionFlow(scope)
        for stmt, names in acquires:
            index = _node_index_of(flow, stmt)
            if index is None:
                continue
            if names is None:
                # Bare-expression acquire: the (granted, request)
                # result is discarded on *every* path.
                violations.append(
                    self.violation(
                        path,
                        stmt,
                        "lock acquire result discarded: the grant "
                        "flag and queued request are unreachable, so "
                        "no path can release or abort the entry",
                    )
                )
                continue
            blocked = {
                other
                for other in range(len(flow.cfg))
                if other != index
                and names & flow.node_uses(other)
            }
            if flow.cfg.reaches_exit_avoiding(
                index, blocked, include_exceptional=True
            ):
                violations.append(self.violation(path, stmt))

    @staticmethod
    def _acquire_statements(
        scope: ast.AST,
    ) -> List[Tuple[ast.AST, Optional[FrozenSet[str]]]]:
        """(statement, assigned-result names) per lock acquire; the
        names are None when the result is discarded outright."""
        found: List[Tuple[ast.AST, Optional[FrozenSet[str]]]] = []
        stack = list(scope.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                 ast.ClassDef),
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))
            value = None
            if isinstance(node, (ast.Expr, ast.Assign)):
                value = node.value
            if not (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "acquire"
                and _is_lockish(value.func.value)
            ):
                continue
            if isinstance(node, ast.Expr):
                found.append((node, None))
                continue
            names: Set[str] = set()
            opaque = False
            for target in node.targets:
                elements = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for element in elements:
                    if isinstance(element, ast.Name):
                        names.add(element.id)
                    else:
                        opaque = True
            if opaque:
                continue  # stored into an attribute: tracked elsewhere
            found.append((node, frozenset(names)))
        return found


# ======================================================================
# time-taint
# ======================================================================


@register_project
class TimeTaintRule(ProjectRule):
    """Arithmetic-derived times flowing into equality or hashing."""

    rule_id = "time-taint"
    summary = (
        "value derived by arithmetic from simulated time flows into "
        "exact comparison or hashing: float arithmetic does not "
        "round-trip, so the outcome depends on accumulated precision "
        "rather than the schedule; compare stored schedule times, or "
        "quantize deliberately and document the grid"
    )
    severity = "error"
    version = 1
    include = (
        "repro/sim/",
        "repro/core/",
        "repro/cc/",
        "repro/router/",
    )
    extra_hash_modules = ENGINE_MODULES

    def check_project(self, model) -> List[Violation]:
        project_taint = ProjectTaint(model, TimeTaint)
        sink_param_memo: Dict[str, FrozenSet[str]] = {}
        violations: List[Violation] = []
        seen: Set[Tuple[str, int, int, str]] = set()

        def emit(path: str, anchor: ast.AST, message: str) -> None:
            key = (
                path,
                getattr(anchor, "lineno", 1),
                getattr(anchor, "col_offset", 0) + 1,
                message,
            )
            if key in seen:
                return
            seen.add(key)
            violations.append(self.violation(path, anchor, message))

        for fn in sorted(
            model.functions.values(), key=lambda f: f.qualname
        ):
            if not self.applies_to(fn.path):
                continue
            flow = project_taint.flow_for(fn.node)
            taint = project_taint.taint_for(fn)
            for index in range(len(flow.cfg)):
                for root in flow.cfg.expressions(index):
                    for kind, operand, anchor in iter_hash_sinks(
                        root
                    ):
                        if kind == SINK_EQUALITY and is_timeish(
                            operand
                        ):
                            # Syntactically timeish operands belong
                            # to float-time-equality.
                            continue
                        if taint.tainted(operand, index):
                            emit(
                                fn.path,
                                anchor,
                                f"time-derived value used as "
                                f"{kind} in {fn.qualname}; "
                                + self.summary,
                            )
                    self._check_call_args(
                        model,
                        project_taint,
                        sink_param_memo,
                        fn,
                        taint,
                        root,
                        index,
                        emit,
                    )
        return violations

    # -- depth-1 argument propagation ----------------------------------

    def _check_call_args(
        self,
        model,
        project_taint: ProjectTaint,
        memo: Dict[str, FrozenSet[str]],
        fn,
        taint: TimeTaint,
        root: ast.AST,
        index: int,
        emit,
    ) -> None:
        for call in ast.walk(root):
            if not isinstance(call, ast.Call):
                continue
            target = model.resolve_call(fn, call)
            if target is None:
                continue
            sink_params = self._sink_params(
                project_taint, memo, target
            )
            if not sink_params:
                continue
            params, _required, _vararg = target.positional_params()
            names = [param.arg for param in params]
            for position, arg in enumerate(call.args):
                if isinstance(arg, ast.Starred):
                    break
                if (
                    position < len(names)
                    and names[position] in sink_params
                    and taint.tainted(arg, index)
                ):
                    emit(
                        fn.path,
                        call,
                        f"time-derived argument "
                        f"{names[position]!r} reaches an exact "
                        f"comparison/hash inside "
                        f"{target.qualname}; " + self.summary,
                    )
            for keyword in call.keywords:
                if (
                    keyword.arg in sink_params
                    and taint.tainted(keyword.value, index)
                ):
                    emit(
                        fn.path,
                        call,
                        f"time-derived argument {keyword.arg!r} "
                        f"reaches an exact comparison/hash inside "
                        f"{target.qualname}; " + self.summary,
                    )

    def _sink_params(
        self,
        project_taint: ProjectTaint,
        memo: Dict[str, FrozenSet[str]],
        fn,
    ) -> FrozenSet[str]:
        """Parameters of ``fn`` that flow into a hash/equality sink
        *within fn itself* (depth-1: no further call chaining)."""
        cached = memo.get(fn.qualname)
        if cached is not None:
            return cached
        flow = project_taint.flow_for(fn.node)
        params, _required, _vararg = fn.positional_params()
        names = [param.arg for param in params] + [
            arg.arg for arg in fn.node.args.kwonlyargs
        ]
        sinks: Set[str] = set()
        for name in names:
            taint = TimeTaint(
                flow, tainted_params=frozenset((name,))
            )
            if self._any_sink_tainted(flow, taint):
                sinks.add(name)
        result = frozenset(sinks)
        memo[fn.qualname] = result
        return result

    @staticmethod
    def _any_sink_tainted(
        flow: FunctionFlow, taint: TimeTaint
    ) -> bool:
        for index in range(len(flow.cfg)):
            for root in flow.cfg.expressions(index):
                for _kind, operand, _anchor in iter_hash_sinks(root):
                    if taint.tainted(operand, index):
                        return True
        return False


# ======================================================================
# draw-escape
# ======================================================================


@register_project
class DrawEscapeRule(ProjectRule):
    """RNG draws crossing message boundaries or hash-ordered storage."""

    rule_id = "draw-escape"
    summary = (
        "RNG draw result escapes its drawing context: posted across "
        "the simulated network it is consumed in delivery order, and "
        "stored in a set it is consumed in hash order — either way "
        "the draw sequence decouples from the stream discipline that "
        "common-random-numbers comparisons rely on; consume draws "
        "where they are made, or store them in an explicitly ordered "
        "structure"
    )
    severity = "error"
    version = 1
    include = ("repro/",)
    extra_hash_modules = ENGINE_MODULES

    def check_project(self, model) -> List[Violation]:
        project_taint = ProjectTaint(model, DrawTaint)
        violations: List[Violation] = []
        seen: Set[Tuple[str, int, int]] = set()
        for fn in sorted(
            model.functions.values(), key=lambda f: f.qualname
        ):
            if not self.applies_to(fn.path):
                continue
            flow = project_taint.flow_for(fn.node)
            taint = project_taint.taint_for(fn)
            for index in range(len(flow.cfg)):
                for root in flow.cfg.expressions(index):
                    for call, sink_args, what in self._sinks(root):
                        for arg in sink_args:
                            if not taint.tainted(arg, index):
                                continue
                            key = (
                                fn.path,
                                call.lineno,
                                call.col_offset + 1,
                            )
                            if key in seen:
                                break
                            seen.add(key)
                            violations.append(
                                self.violation(
                                    fn.path,
                                    call,
                                    f"RNG draw result {what} in "
                                    f"{fn.qualname}; " + self.summary,
                                )
                            )
                            break
        return violations

    @staticmethod
    def _sinks(root: ast.AST):
        """(call, candidate argument expressions, description)."""
        for node in ast.walk(root):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            attr = node.func.attr
            receiver = node.func.value
            if attr == "post" and _is_network_ref(receiver):
                arguments = list(node.args) + [
                    keyword.value for keyword in node.keywords
                ]
                yield node, arguments, (
                    "crosses a message boundary (network post)"
                )
            elif attr == "add" and node.args:
                yield node, [node.args[0]], (
                    "is stored into a hash-ordered set"
                )


# Registers the race-reconciliation project rule.
import repro.lint.flow.reconcile  # noqa: E402,F401  (registers on import)
