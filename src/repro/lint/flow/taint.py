"""Taint lattices over the per-function dataflow, plus the
interprocedural summary layer.

Two concrete lattices share one propagation engine:

* :class:`TimeTaint` — "may this expression carry a value *derived by
  arithmetic* from a simulation time?"  The sources are the arithmetic
  operations themselves (``now + delay``, ``deadline - self.now``),
  not time loads: a *pure copy* of a stored schedule time
  (``handle.time``, ``now = self.now``) is canonical — every reader
  observes the identical float, so comparing or hashing it is exact —
  while anything that passed through float arithmetic is not.
* :class:`DrawTaint` — "may this expression carry a value drawn from a
  named RNG stream?"  Sources are the draw calls themselves
  (``streams.exponential(...)``); any arithmetic or copy of a draw
  stays a draw.

Shared lattice decisions, chosen so the engine is precise on the
kernel's real code:

* **Stores kill.**  Assigning into an attribute, subscript, or
  container laundered the value into program state; loads of
  attributes/subscripts are therefore untainted.  (This is what keeps
  ``handle.time`` — assigned from ``now + delay`` in ``schedule()`` —
  a *clean* stored time at its consumption sites.)
* **Unknown calls are untainted** unless an interprocedural summary
  (:class:`ProjectTaint`) proves the callee returns taint; a small
  passthrough set (``min``/``max``/``abs``/...) forwards operand
  taint.
* **Cycles resolve to untainted** — the least fixpoint of a
  may-analysis.

The interprocedural layer is deliberately *bounded*: function
summaries are one bit ("returns tainted"), the summary fixpoint is
capped, and argument-to-parameter propagation reaches exactly one call
deep (a tainted argument is checked against the callee's own sink
scan, not re-summarized transitively).
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.flow.dataflow import (
    ASSIGN,
    AUG,
    PARAM,
    FunctionFlow,
)

__all__ = [
    "ARITH_OPS",
    "DrawTaint",
    "ProjectTaint",
    "Taint",
    "TimeTaint",
    "TIME_ATTRS",
    "is_timeish",
    "iter_hash_sinks",
]

#: Attribute / variable spellings that denote a simulation clock or a
#: stored schedule time (same set the syntactic rule uses).
TIME_ATTRS = frozenset({"now", "time"})

#: Binary operations that perform float arithmetic (taint sources for
#: the time lattice when an operand is time-valued).
ARITH_OPS = (
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
)

#: Builtins/math helpers that return (a function of) their operands:
#: taint flows straight through.
PASSTHROUGH_CALLS = frozenset(
    {"min", "max", "abs", "float", "int", "round", "sum", "floor", "ceil"}
)

#: Summary fixpoint cap — "bounded context" for the interprocedural
#: pass.  Call chains deeper than this many summary hops stay
#: unanalyzed (conservatively untainted).
MAX_SUMMARY_ROUNDS = 5


def is_timeish(expr: ast.AST) -> bool:
    """A load that syntactically denotes a clock / stored time."""
    if isinstance(expr, ast.Name):
        return expr.id in TIME_ATTRS
    if isinstance(expr, ast.Attribute):
        return expr.attr in TIME_ATTRS
    return False


class Taint:
    """Expression-level may-taint over one :class:`FunctionFlow`.

    ``tainted_params`` marks parameter names assumed tainted at entry
    (used for the depth-1 argument propagation).  ``call_taint`` maps
    a call expression to True (callee summary: returns tainted),
    False (resolved, untainted) or None (unresolved).
    """

    def __init__(
        self,
        flow: FunctionFlow,
        tainted_params: FrozenSet[str] = frozenset(),
        call_taint: Optional[
            Callable[[ast.Call], Optional[bool]]
        ] = None,
    ):
        self.flow = flow
        self.tainted_params = frozenset(tainted_params)
        self.call_taint = call_taint
        self._name_memo: Dict[Tuple[str, int], bool] = {}
        self._name_stack: Set[Tuple[str, int]] = set()

    # -- lattice hooks -------------------------------------------------

    def source(self, expr: ast.AST, node: int) -> bool:
        """Whether ``expr`` itself introduces taint."""
        return False

    def binop_tainted(self, expr: ast.BinOp, node: int) -> bool:
        return self.tainted(expr.left, node) or self.tainted(
            expr.right, node
        )

    # -- propagation ---------------------------------------------------

    def tainted(self, expr: ast.AST, node: int) -> bool:
        """May ``expr``, evaluated at CFG node ``node``, carry taint?"""
        if self.source(expr, node):
            return True
        if isinstance(expr, ast.BinOp):
            return self.binop_tainted(expr, node)
        if isinstance(expr, ast.UnaryOp):
            return self.tainted(expr.operand, node)
        if isinstance(expr, ast.IfExp):
            return self.tainted(expr.body, node) or self.tainted(
                expr.orelse, node
            )
        if isinstance(expr, ast.NamedExpr):
            return self.tainted(expr.value, node)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(
                self.tainted(
                    element.value
                    if isinstance(element, ast.Starred)
                    else element,
                    node,
                )
                for element in expr.elts
            )
        if isinstance(expr, ast.Starred):
            return self.tainted(expr.value, node)
        if isinstance(expr, ast.Call):
            return self._call_tainted(expr, node)
        if isinstance(expr, ast.Name):
            return self._name_tainted(expr.id, node)
        # Attribute / Subscript loads (stores kill), constants,
        # comparisons, boolops, f-strings: untainted.
        return False

    def _call_tainted(self, call: ast.Call, node: int) -> bool:
        func = call.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name in PASSTHROUGH_CALLS:
            return any(
                self.tainted(arg, node) for arg in call.args
            )
        if self.call_taint is not None and bool(
            self.call_taint(call)
        ):
            return True
        return False

    def _name_tainted(self, var: str, node: int) -> bool:
        key = (var, node)
        cached = self._name_memo.get(key)
        if cached is not None:
            return cached
        if key in self._name_stack:
            return False  # least fixpoint on def cycles
        self._name_stack.add(key)
        try:
            result = self._name_tainted_uncached(var, node)
        finally:
            self._name_stack.discard(key)
        self._name_memo[key] = result
        return result

    def _name_tainted_uncached(self, var: str, node: int) -> bool:
        for definition in self.flow.rdefs.definitions_of(var, node):
            if (
                definition.kind == PARAM
                and var in self.tainted_params
            ):
                return True
            if definition.kind == ASSIGN and definition.value is not None:
                if self.tainted(definition.value, definition.node):
                    return True
            elif definition.kind == AUG and definition.value is not None:
                # x += v  ==  x = x BINOP v: arithmetic via the hook.
                shim = ast.BinOp(
                    left=ast.Name(id=var, ctx=ast.Load()),
                    op=ast.Add(),
                    right=definition.value,
                )
                if self.binop_tainted(shim, definition.node):
                    return True
        return False


class TimeTaint(Taint):
    """The time lattice: arithmetic on a time-valued operand is the
    source; copies of stored times stay clean."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._timeval_memo: Dict[Tuple[str, int], bool] = {}
        self._timeval_stack: Set[Tuple[str, int]] = set()

    def binop_tainted(self, expr: ast.BinOp, node: int) -> bool:
        if not isinstance(expr.op, ARITH_OPS):
            return False
        for side in (expr.left, expr.right):
            if self._time_valued(side, node) or self.tainted(
                side, node
            ):
                return True
        return False

    def _time_valued(self, expr: ast.AST, node: int) -> bool:
        """May ``expr`` hold a time? (may-variant of the clean-copy
        classifier: some reaching def suffices)."""
        if is_timeish(expr):
            return True
        if not isinstance(expr, ast.Name):
            return False
        key = (expr.id, node)
        cached = self._timeval_memo.get(key)
        if cached is not None:
            return cached
        if key in self._timeval_stack:
            return False
        self._timeval_stack.add(key)
        try:
            result = any(
                definition.kind == ASSIGN
                and definition.value is not None
                and self._time_valued(
                    definition.value, definition.node
                )
                for definition in self.flow.rdefs.definitions_of(
                    expr.id, node
                )
            )
        finally:
            self._timeval_stack.discard(key)
        self._timeval_memo[key] = result
        return result


class DrawTaint(Taint):
    """The draw lattice: RNG stream draw calls are the source."""

    def source(self, expr: ast.AST, node: int) -> bool:
        return is_stream_draw_call(expr)


def is_stream_draw_call(expr: ast.AST) -> bool:
    """``streams.exponential(...)``-style draw returning a *value*
    (``.get`` hands out the stream object, not a draw — excluded)."""
    # Imported lazily to keep flow modules import-light for the
    # per-file rule pass.
    from repro.lint.stream_draws import (
        STREAM_DRAW_METHODS,
        _is_streams_ref,
    )

    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in STREAM_DRAW_METHODS
        and expr.func.attr != "get"
        and _is_streams_ref(expr.func.value)
    )


class CleanTime:
    """Must-analysis twin of :class:`TimeTaint` for the syntactic
    equality rule: is an operand *provably* a pure copy of a stored
    schedule time (a timeish load, or a local every one of whose
    reaching definitions is a clean copy chain)?

    Anything unprovable — parameters, globals, augmented or opaque
    bindings, def cycles — classifies as not clean.
    """

    def __init__(self, flow: FunctionFlow):
        self.flow = flow
        self._memo: Dict[Tuple[str, int], bool] = {}
        self._stack: Set[Tuple[str, int]] = set()

    def clean(self, expr: ast.AST, node: int) -> bool:
        if isinstance(expr, ast.Attribute):
            return expr.attr in TIME_ATTRS
        if isinstance(expr, ast.Name):
            return self._name_clean(expr.id, node)
        return False

    def _name_clean(self, var: str, node: int) -> bool:
        key = (var, node)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._stack:
            return False  # cycle: cannot prove cleanliness
        self._stack.add(key)
        try:
            defs = self.flow.rdefs.definitions_of(var, node)
            result = bool(defs) and all(
                definition.kind == ASSIGN
                and definition.value is not None
                and self.clean(definition.value, definition.node)
                for definition in defs
            )
        finally:
            self._stack.discard(key)
        self._memo[key] = result
        return result


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------

#: ``(kind, operand)`` hash/equality sinks yielded per expression root.
SINK_EQUALITY = "equality comparison"
SINK_MEMBERSHIP = "membership test"
SINK_DICT_KEY = "dict key"
SINK_SET_ELEMENT = "set element"
SINK_HASH = "hash() argument"
SINK_SUBSCRIPT_STORE = "subscript store key"


def iter_hash_sinks(root: ast.AST):
    """Yield ``(kind, operand_expr, report_node)`` for every position
    under ``root`` whose value feeds float equality or hashing."""
    for sub in ast.walk(root):
        if isinstance(sub, ast.Compare):
            operands = [sub.left] + list(sub.comparators)
            for position, op in enumerate(sub.ops):
                if isinstance(op, (ast.Eq, ast.NotEq)):
                    yield SINK_EQUALITY, operands[position], sub
                    yield SINK_EQUALITY, operands[position + 1], sub
                elif isinstance(op, (ast.In, ast.NotIn)):
                    # ``x in container`` hashes / equality-compares x.
                    yield SINK_MEMBERSHIP, operands[position], sub
        elif isinstance(sub, ast.Dict):
            for keyexpr in sub.keys:
                if keyexpr is not None:  # None = ** expansion
                    yield SINK_DICT_KEY, keyexpr, keyexpr
        elif isinstance(sub, ast.Set):
            for element in sub.elts:
                yield SINK_SET_ELEMENT, element, element
        elif (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "hash"
            and sub.args
        ):
            yield SINK_HASH, sub.args[0], sub
        elif isinstance(sub, ast.Subscript) and isinstance(
            sub.ctx, ast.Store
        ):
            yield SINK_SUBSCRIPT_STORE, sub.slice, sub


# ----------------------------------------------------------------------
# Interprocedural summaries
# ----------------------------------------------------------------------


class ProjectTaint:
    """Returns-tainted summaries for every function in a
    :class:`~repro.lint.project.ProjectModel`, for one lattice.

    ``taint_class`` is :class:`TimeTaint` or :class:`DrawTaint`.  The
    summary is one bit per function — "some return value may carry
    taint" — computed by a fixpoint over the conservative call graph,
    capped at :data:`MAX_SUMMARY_ROUNDS` (bounded context).
    """

    def __init__(self, model, taint_class):
        self.model = model
        self.taint_class = taint_class
        self._flows: Dict[ast.AST, FunctionFlow] = {}
        self.returns_tainted: Dict[str, bool] = {}
        self._solve()

    def flow_for(self, fn_node: ast.AST) -> FunctionFlow:
        flow = self._flows.get(fn_node)
        if flow is None:
            flow = FunctionFlow(fn_node)
            self._flows[fn_node] = flow
        return flow

    def taint_for(self, fn, tainted_params=frozenset()) -> Taint:
        """A taint instance for ``fn`` (a FunctionInfo) whose call
        verdicts consult the converged summaries."""
        return self.taint_class(
            self.flow_for(fn.node),
            tainted_params=frozenset(tainted_params),
            call_taint=lambda call: self.call_verdict(fn, call),
        )

    def call_verdict(self, caller, call: ast.Call) -> Optional[bool]:
        target = self.model.resolve_call(caller, call)
        if target is None:
            return None
        return self.returns_tainted.get(target.qualname, False)

    def _solve(self) -> None:
        functions = sorted(
            self.model.functions.values(), key=lambda f: f.qualname
        )
        summaries = {fn.qualname: False for fn in functions}
        for _round in range(MAX_SUMMARY_ROUNDS):
            changed = False
            for fn in functions:
                if summaries[fn.qualname]:
                    continue
                if self._fn_returns_tainted(fn, summaries):
                    summaries[fn.qualname] = True
                    changed = True
            if not changed:
                break
        self.returns_tainted = summaries

    def _fn_returns_tainted(self, fn, summaries) -> bool:
        flow = self.flow_for(fn.node)
        taint = self.taint_class(
            flow,
            call_taint=lambda call: self._verdict_during_solve(
                fn, call, summaries
            ),
        )
        for index, stmt in enumerate(flow.cfg.stmts):
            if (
                isinstance(stmt, ast.Return)
                and stmt.value is not None
                and taint.tainted(stmt.value, index)
            ):
                return True
        return False

    def _verdict_during_solve(
        self, caller, call: ast.Call, summaries
    ) -> Optional[bool]:
        target = self.model.resolve_call(caller, call)
        if target is None:
            return None
        return summaries.get(target.qualname, False)
