"""Flow-sensitive analysis layer: CFGs, reaching definitions, taint
lattices, and the rules built on them (see DESIGN.md §12)."""
