"""Reaching definitions and def-use chains over one function CFG.

The classic forward may-analysis: a *definition* is one binding of a
local name at one CFG node (an assignment, an augmented assignment, a
loop target, a ``with ... as`` binding, an ``except ... as`` binding, a
walrus, a parameter at entry).  ``ReachingDefs`` computes, for every
node, which definitions of each name may be live on some path reaching
it; the flow rules then ask questions like "is every definition of
``now`` reaching this comparison a plain copy of a stored schedule
time?" without caring how the worklist converged.

Scope discipline matches the per-file rules elsewhere in the linter:
analysis is per function, names assigned in nested functions or
lambdas do not exist here, and anything the analysis cannot prove it
reports as :data:`OPAQUE` — the rules treat opaque as "unknown
provenance", never as "safe".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lint.flow.cfg import CFG, ENTRY, build_cfg, node_expressions

__all__ = [
    "Definition",
    "FunctionFlow",
    "ReachingDefs",
    "name_loads",
]

#: ``Definition.kind`` values.  ``assign`` carries the bound value
#: expression; every other kind is an opaque (re)binding.
ASSIGN = "assign"
AUG = "aug"
PARAM = "param"
OPAQUE = "opaque"


@dataclass(frozen=True)
class Definition:
    """One binding of ``var`` at CFG node ``node``."""

    var: str
    node: int
    kind: str = ASSIGN
    #: The bound expression for ``assign``/``aug`` kinds, else None.
    value: Optional[ast.AST] = field(default=None, compare=False)

    def __hash__(self) -> int:  # value is auxiliary, not identity
        return hash((self.var, self.node, self.kind))


def _target_names(target: ast.AST) -> Iterable[Tuple[str, bool]]:
    """``(name, is_simple)`` pairs bound by an assignment target.

    ``is_simple`` is True only for a bare ``Name`` target — tuple
    elements, starred targets, and subscript/attribute stores bind (or
    mutate) in ways the copy analysis must treat as opaque.
    """
    if isinstance(target, ast.Name):
        yield target.id, True
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            if isinstance(element, ast.Starred):
                element = element.value
            for name, _simple in _target_names(element):
                yield name, False


def name_loads(expr: ast.AST) -> Set[str]:
    """Names read (Load context) anywhere under ``expr``, excluding
    nested function/lambda bodies."""
    loads: Set[str] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, ast.Load
        ):
            loads.add(node.id)
        stack.extend(ast.iter_child_nodes(node))
    return loads


class ReachingDefs:
    """Reaching-definition sets for one CFG.

    ``include_exceptional`` controls whether definitions flow along
    exceptional edges; the default is True (a handler sees whatever
    was bound before the raise), which is the conservative choice for
    every rule built on top.
    """

    def __init__(self, cfg: CFG, include_exceptional: bool = True):
        self.cfg = cfg
        self.include_exceptional = include_exceptional
        #: Per-node generated definitions.
        self.gen: List[List[Definition]] = []
        #: Names whose binding is unanalyzable (global/nonlocal, del).
        self.escaped: Set[str] = set()
        self._collect()
        #: IN sets: node -> var -> reaching definitions.
        self.reach_in: List[Dict[str, FrozenSet[Definition]]] = []
        self._solve()

    # ------------------------------------------------------------------
    # Definition collection
    # ------------------------------------------------------------------

    def _collect(self) -> None:
        cfg = self.cfg
        for index in range(len(cfg)):
            self.gen.append(self._gen(index))

    def _gen(self, index: int) -> List[Definition]:
        cfg = self.cfg
        stmt = cfg.stmts[index]
        kind = cfg.kinds[index]
        defs: List[Definition] = []
        if index == ENTRY:
            function = cfg.function
            args = getattr(function, "args", None)
            if args is not None:
                params = (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                )
                if args.vararg:
                    params.append(args.vararg)
                if args.kwarg:
                    params.append(args.kwarg)
                for param in params:
                    defs.append(
                        Definition(param.arg, index, kind=PARAM)
                    )
            return defs
        if stmt is None or kind == "finally":
            return defs
        if isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                defs.append(Definition(stmt.name, index, kind=OPAQUE))
            self._walrus_defs(stmt.type, index, defs)
            return defs
        if isinstance(stmt, (ast.Global, ast.Nonlocal)):
            self.escaped.update(stmt.names)
            return defs
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.escaped.add(target.id)
            return defs
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for name, simple in _target_names(target):
                    defs.append(
                        Definition(
                            name,
                            index,
                            kind=ASSIGN if simple else OPAQUE,
                            value=stmt.value if simple else None,
                        )
                    )
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and isinstance(
                stmt.target, ast.Name
            ):
                defs.append(
                    Definition(
                        stmt.target.id,
                        index,
                        kind=ASSIGN,
                        value=stmt.value,
                    )
                )
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                defs.append(
                    Definition(
                        stmt.target.id, index, kind=AUG, value=stmt.value
                    )
                )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            for name, _simple in _target_names(stmt.target):
                defs.append(Definition(name, index, kind=OPAQUE))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for name, _simple in _target_names(
                        item.optional_vars
                    ):
                        defs.append(
                            Definition(name, index, kind=OPAQUE)
                        )
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            defs.append(Definition(stmt.name, index, kind=OPAQUE))
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                if bound != "*":
                    defs.append(Definition(bound, index, kind=OPAQUE))
        # Walrus bindings inside any expression evaluated at this node.
        for root in node_expressions(stmt, kind):
            self._walrus_defs(root, index, defs)
        return defs

    @staticmethod
    def _walrus_defs(
        root: Optional[ast.AST], index: int, defs: List[Definition]
    ) -> None:
        if root is None:
            return
        stack = [root]
        while stack:
            node = stack.pop()
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                continue
            if isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                defs.append(
                    Definition(
                        node.target.id,
                        index,
                        kind=ASSIGN,
                        value=node.value,
                    )
                )
            stack.extend(ast.iter_child_nodes(node))

    # ------------------------------------------------------------------
    # Worklist solve
    # ------------------------------------------------------------------

    def _solve(self) -> None:
        cfg = self.cfg
        size = len(cfg)
        reach_out: List[Dict[str, FrozenSet[Definition]]] = [
            {} for _ in range(size)
        ]
        self.reach_in = [{} for _ in range(size)]
        worklist = list(range(size))
        in_worklist = [True] * size
        while worklist:
            node = worklist.pop(0)
            in_worklist[node] = False
            merged: Dict[str, Set[Definition]] = {}
            for pred in cfg.pred[node]:
                if (
                    not self.include_exceptional
                    and (pred, node) in cfg.exceptional
                ):
                    continue
                for var, defs in reach_out[pred].items():
                    merged.setdefault(var, set()).update(defs)
            new_in = {
                var: frozenset(defs) for var, defs in merged.items()
            }
            self.reach_in[node] = new_in
            out: Dict[str, FrozenSet[Definition]] = dict(new_in)
            for definition in self.gen[node]:
                out[definition.var] = frozenset((definition,))
            if out != reach_out[node]:
                reach_out[node] = out
                for succ in cfg.succ[node]:
                    if not in_worklist[succ]:
                        in_worklist[succ] = True
                        worklist.append(succ)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def definitions_of(
        self, var: str, node: int
    ) -> FrozenSet[Definition]:
        """Definitions of ``var`` that may reach ``node`` (its IN set).

        An empty set means no local binding reaches here — the name is
        a global, builtin, or closure variable.  Names declared
        ``global``/``nonlocal`` (or ``del``-ed) report as a single
        opaque definition: their provenance is unanalyzable.
        """
        if var in self.escaped:
            return frozenset((Definition(var, ENTRY, kind=OPAQUE),))
        return self.reach_in[node].get(var, frozenset())


class FunctionFlow:
    """CFG + reaching definitions for one function, built lazily and
    shared by every flow rule analyzing that function."""

    def __init__(self, function: ast.AST):
        self.function = function
        self.cfg = build_cfg(function)
        self._rdefs: Optional[ReachingDefs] = None

    @property
    def rdefs(self) -> ReachingDefs:
        if self._rdefs is None:
            self._rdefs = ReachingDefs(self.cfg)
        return self._rdefs

    def owner_of(self, expr: ast.AST) -> Optional[int]:
        return self.cfg.owner_of(expr)

    def node_uses(self, index: int) -> Set[str]:
        """Names loaded by the expressions evaluated at one node."""
        loads: Set[str] = set()
        for root in self.cfg.expressions(index):
            loads |= name_loads(root)
        return loads
