"""Per-function control-flow graphs for the flow-sensitive rules.

One node per *simple statement*, one per compound-statement header
(the ``if``/``while``/``for``/``with`` line itself), plus a synthetic
``entry``/``exit`` pair, one node per ``except`` clause (hosting the
``as name`` binding) and one marker per ``finally`` block entry.

Modeled control flow:

* branches — ``if``/``elif``/``else`` with joined fall-through;
* loops — ``while``/``for`` with back edges, ``break``/``continue``
  and loop ``else`` clauses;
* ``return``/``raise`` — edges toward the function exit, routed
  through the innermost enclosing ``finally`` when one exists;
* exceptions — an edge from every statement of a ``try`` body to each
  of its handlers and to its ``finally`` entry, recorded separately
  (:attr:`CFG.exceptional`) so each analysis opts in or out of
  exceptional paths explicitly;
* ``with`` — straight-line flow through the body (``__exit__``
  interception is not modeled);
* generators — nothing special: ``yield`` is an expression, so a
  yielding statement is an ordinary node that control re-enters, and
  the graph is identical whether or not the caller ever resumes.

Deliberate approximations, all conservative for the rules built on
top: only *explicit* exceptional flow is modeled (a statement outside
any ``try`` body gets no "may raise" edge — otherwise every node
would reach exit and path queries would be vacuous), and ``break`` /
``return`` do not chain through multiple nested ``finally`` blocks
(the innermost is entered; its exceptional continuation edge to exit
covers further propagation).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CFG",
    "ENTRY",
    "EXIT",
    "build_cfg",
    "node_expressions",
]

#: Synthetic node indices present in every graph.
ENTRY = 0
EXIT = 1

_MATCH = getattr(ast, "Match", ())


def node_expressions(
    stmt: Optional[ast.AST], kind: str = "stmt"
) -> List[ast.AST]:
    """Expression roots evaluated *at* one CFG node.

    For a compound statement this is the header only (the ``if`` test,
    the ``for`` target and iterable, ...) — body statements are their
    own nodes — while a simple statement owns every expression child.
    """
    if stmt is None or kind == "finally":
        return []
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots: List[ast.AST] = []
        for item in stmt.items:
            roots.append(item.context_expr)
            if item.optional_vars is not None:
                roots.append(item.optional_vars)
        return roots
    if isinstance(stmt, ast.Try):
        return []
    if _MATCH and isinstance(stmt, _MATCH):
        return [stmt.subject]
    if isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        # A nested def/class is an assignment of its name; only the
        # decorators (and class bases) evaluate here, not the body.
        roots = list(stmt.decorator_list)
        if isinstance(stmt, ast.ClassDef):
            roots.extend(stmt.bases)
        return roots
    return [
        child
        for child in ast.iter_child_nodes(stmt)
        if isinstance(child, ast.expr)
    ]


class CFG:
    """A statement-level control-flow graph for one function."""

    def __init__(self, function: Optional[ast.AST] = None):
        self.function = function
        self.stmts: List[Optional[ast.AST]] = [None, None]
        self.kinds: List[str] = ["entry", "exit"]
        self.succ: List[Set[int]] = [set(), set()]
        self.pred: List[Set[int]] = [set(), set()]
        #: Edges taken only when an exception is in flight.
        self.exceptional: Set[Tuple[int, int]] = set()
        self._expr_owner: Optional[Dict[ast.AST, int]] = None

    def __len__(self) -> int:
        return len(self.stmts)

    def add_node(
        self, stmt: Optional[ast.AST] = None, kind: str = "stmt"
    ) -> int:
        index = len(self.stmts)
        self.stmts.append(stmt)
        self.kinds.append(kind)
        self.succ.append(set())
        self.pred.append(set())
        return index

    def add_edge(
        self, src: int, dst: int, exceptional: bool = False
    ) -> None:
        # ``exceptional`` marks edges taken *only* with an exception in
        # flight; an edge that is also normal fall-through (a try body
        # reaching its own finally) counts as normal, whichever order
        # the builder discovered the two roles in.
        existed = dst in self.succ[src]
        self.succ[src].add(dst)
        self.pred[dst].add(src)
        if exceptional:
            if not existed or (src, dst) in self.exceptional:
                self.exceptional.add((src, dst))
        else:
            self.exceptional.discard((src, dst))

    def expressions(self, index: int) -> List[ast.AST]:
        return node_expressions(self.stmts[index], self.kinds[index])

    def label(self, index: int) -> str:
        """Stable human-readable node label (used by the differential
        tests to compare against hand-derived edge sets)."""
        kind = self.kinds[index]
        if kind in ("entry", "exit"):
            return kind
        stmt = self.stmts[index]
        if kind == "finally":
            return f"finally@{stmt.lineno}"
        if isinstance(stmt, ast.ExceptHandler):
            return f"except@{stmt.lineno}"
        return f"{type(stmt).__name__}@{stmt.lineno}"

    def edge_labels(
        self, exceptional: Optional[bool] = None
    ) -> Set[Tuple[str, str]]:
        """Edges as ``(src_label, dst_label)`` pairs.

        ``exceptional=None`` returns every edge; ``True``/``False``
        restricts to exceptional / normal edges respectively.
        """
        pairs = set()
        for src, dsts in enumerate(self.succ):
            for dst in dsts:
                is_exc = (src, dst) in self.exceptional
                if exceptional is not None and is_exc != exceptional:
                    continue
                pairs.add((self.label(src), self.label(dst)))
        return pairs

    def owner_of(self, expr: ast.AST) -> Optional[int]:
        """The node whose header/statement contains ``expr``."""
        if self._expr_owner is None:
            # Keyed by the node objects themselves (AST nodes hash by
            # identity and the CFG keeps them alive via ``stmts``).
            owners: Dict[ast.AST, int] = {}
            for index in range(len(self.stmts)):
                for root in self.expressions(index):
                    for sub in ast.walk(root):
                        owners[sub] = index
            self._expr_owner = owners
        return self._expr_owner.get(expr)

    def reaches_exit_avoiding(
        self,
        start: int,
        blocked: Set[int],
        include_exceptional: bool = True,
    ) -> bool:
        """Whether some path from ``start``'s successors reaches exit
        without passing through any node in ``blocked``."""
        seen: Set[int] = set()
        stack = [
            dst
            for dst in self.succ[start]
            if include_exceptional
            or (start, dst) not in self.exceptional
        ]
        while stack:
            node = stack.pop()
            if node in seen or node in blocked:
                continue
            if node == EXIT:
                return True
            seen.add(node)
            stack.extend(
                dst
                for dst in self.succ[node]
                if include_exceptional
                or (node, dst) not in self.exceptional
            )
        return False


class _LoopFrame:
    __slots__ = ("head", "breaks")

    def __init__(self, head: int):
        self.head = head
        self.breaks: List[int] = []


class _TryFrame:
    """Exception-edge targets active while building a ``try`` body."""

    __slots__ = ("targets",)

    def __init__(self, targets: Sequence[int]):
        self.targets = list(targets)


class _Builder:
    def __init__(self, function: ast.AST):
        self.function = function
        self.cfg = CFG(function)
        self.loops: List[_LoopFrame] = []
        self.tries: List[_TryFrame] = []
        self.finallies: List[int] = []

    def build(self) -> CFG:
        out = self._seq(list(self.function.body), [ENTRY])
        for pred in out:
            self.cfg.add_edge(pred, EXIT)
        return self.cfg

    # ------------------------------------------------------------------

    def _new_node(
        self,
        stmt: Optional[ast.AST],
        kind: str = "stmt",
        preds: Sequence[int] = (),
    ) -> int:
        index = self.cfg.add_node(stmt, kind)
        for pred in preds:
            self.cfg.add_edge(pred, index)
        if self.tries:
            for target in self.tries[-1].targets:
                self.cfg.add_edge(index, target, exceptional=True)
        return index

    def _seq(
        self, stmts: Sequence[ast.AST], preds: Sequence[int]
    ) -> List[int]:
        current = list(preds)
        for stmt in stmts:
            current = self._stmt(stmt, current)
        return current

    def _stmt(
        self, stmt: ast.AST, preds: List[int]
    ) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._new_node(stmt, preds=preds)
            return self._seq(stmt.body, [node])
        if _MATCH and isinstance(stmt, _MATCH):
            node = self._new_node(stmt, preds=preds)
            outs = [node]  # conservative no-match fall-through
            for case in stmt.cases:
                outs.extend(self._seq(case.body, [node]))
            return outs
        if isinstance(stmt, ast.Return):
            node = self._new_node(stmt, preds=preds)
            target = self.finallies[-1] if self.finallies else EXIT
            self.cfg.add_edge(node, target)
            return []
        if isinstance(stmt, ast.Raise):
            node = self._new_node(stmt, preds=preds)
            if self.tries:
                for target in self.tries[-1].targets:
                    self.cfg.add_edge(
                        node, target, exceptional=True
                    )
            else:
                target = (
                    self.finallies[-1] if self.finallies else EXIT
                )
                self.cfg.add_edge(node, target, exceptional=True)
            return []
        if isinstance(stmt, ast.Break):
            node = self._new_node(stmt, preds=preds)
            if self.loops:
                self.loops[-1].breaks.append(node)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._new_node(stmt, preds=preds)
            if self.loops:
                self.cfg.add_edge(node, self.loops[-1].head)
            return []
        return [self._new_node(stmt, preds=preds)]

    def _if(self, stmt: ast.If, preds: List[int]) -> List[int]:
        node = self._new_node(stmt, preds=preds)
        then_out = self._seq(stmt.body, [node])
        if stmt.orelse:
            else_out = self._seq(stmt.orelse, [node])
        else:
            else_out = [node]
        return then_out + else_out

    def _loop(self, stmt: ast.AST, preds: List[int]) -> List[int]:
        head = self._new_node(stmt, preds=preds)
        frame = _LoopFrame(head)
        self.loops.append(frame)
        body_out = self._seq(stmt.body, [head])
        self.loops.pop()
        for pred in body_out:
            self.cfg.add_edge(pred, head)  # back edge
        if stmt.orelse:
            out = self._seq(stmt.orelse, [head])
        else:
            out = [head]
        return out + frame.breaks

    def _try(self, stmt: ast.Try, preds: List[int]) -> List[int]:
        # Handler/finally entry nodes are created *before* this try's
        # frame is pushed, so they carry the exception edges of any
        # enclosing frame (a raise escaping a handler propagates out).
        handler_nodes = [
            self._new_node(handler, kind="handler")
            for handler in stmt.handlers
        ]
        fin_node = (
            self._new_node(stmt, kind="finally")
            if stmt.finalbody
            else None
        )
        targets = list(handler_nodes)
        if fin_node is not None:
            targets.append(fin_node)
            self.finallies.append(fin_node)
        self.tries.append(_TryFrame(targets))
        body_out = self._seq(stmt.body, preds)
        self.tries.pop()
        # The else clause and the handler bodies run with the handlers
        # no longer active, but a finally still intercepts them.
        if fin_node is not None:
            self.tries.append(_TryFrame([fin_node]))
        if stmt.orelse:
            else_out = self._seq(stmt.orelse, body_out)
        else:
            else_out = body_out
        handler_outs: List[int] = []
        for hnode, handler in zip(handler_nodes, stmt.handlers):
            handler_outs.extend(self._seq(handler.body, [hnode]))
        if fin_node is None:
            return else_out + handler_outs
        self.tries.pop()
        self.finallies.pop()
        for pred in else_out + handler_outs:
            self.cfg.add_edge(pred, fin_node)
        fin_out = self._seq(stmt.finalbody, [fin_node])
        # Exceptional continuation: the finally block may have been
        # entered with a pending exception or early return, in which
        # case control leaves the function when it completes.
        for pred in fin_out:
            self.cfg.add_edge(pred, EXIT, exceptional=True)
        return fin_out


def build_cfg(function: ast.AST) -> CFG:
    """Build the CFG for one ``FunctionDef``/``AsyncFunctionDef``."""
    return _Builder(function).build()
