"""Static↔runtime reconciliation of simsan's race baseline.

simsan's committed baseline (``repro/sanitizer/baseline.json``) lists
the same-timestamp races the determinism audit observed at runtime and
a human judged benign.  Each entry names a file, a count, and a prose
reason — runtime evidence.  This module derives the *static* half of
the contract: for every baselined file, which shared-state kinds
(``lock``, ``cpu``, ``disk``, ``mailbox``, ``net``, ``stream``,
``dispatch``) the file's code can reach, and through which witness
function.

The derived evidence is stored on each baseline entry (``"evidence":
["cpu via repro.core.resource_manager.ResourceManager._run_cpu",
...]``) by ``repro-lint --update-race-evidence`` and re-derived on
every lint run by :class:`RaceReconciliationRule`:

* an entry with **no** evidence fails lint — a runtime waiver without
  a machine-checked justification;
* an entry whose stored evidence no longer matches the derived set
  fails lint — either the code grew a *new* statically-reachable race
  surface (which must be re-audited, not silently inherited by the
  waiver) or it lost one (the waiver is broader than the code).

Reachability is a breadth-first walk of the PR-5 call graph, bounded
at :data:`MAX_DEPTH` calls, seeded with the file's own functions plus
the classes it constructs (constructing ``Disk(...)`` makes ``Disk``'s
methods reachable even when the instances live in a list the call
graph cannot type).  Anchors are syntactic: explicit sanitizer hooks
(``san.write(("cpu", ...))``), stream draws, network posts, and
``env.run`` dispatch loops.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.flow.taint import is_stream_draw_call
from repro.lint.project import (
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    _dotted_name,
    _is_network_ref,
    function_body_walk,
)
from repro.lint.registry import ProjectRule, register_project
from repro.lint.rules import _mentions_env
from repro.lint.violations import Violation

__all__ = [
    "MAX_DEPTH",
    "RaceReconciliationRule",
    "derive_evidence",
    "simsan_baseline_path",
    "update_race_evidence",
]

#: Call-graph depth bound for the reachability walk ("bounded
#: context"): the witness chain from a baselined file to a shared-state
#: anchor may cross at most this many resolved calls.
MAX_DEPTH = 3


def simsan_baseline_path() -> Path:
    """The committed simsan race baseline."""
    from repro.sanitizer.report import default_baseline_path

    return default_baseline_path()


def _tree_baseline_path(model: ProjectModel) -> Optional[Path]:
    """The simsan baseline belonging to the *linted* tree.

    Resolved next to the tree's own ``repro/sanitizer/report.py`` so a
    lint run over a fixture tree (tests, partial checkouts) never
    reconciles against the installed package's baseline — a tree
    without the sanitizer package has no race baseline to reconcile.
    """
    for module in model.modules.values():
        if module.path.endswith("repro/sanitizer/report.py"):
            return Path(module.path).parent / "baseline.json"
    return None


def _is_sanitizer_ref(node: ast.AST) -> bool:
    name = ""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    return name in ("san", "_san") or "sanitizer" in name


def _direct_kinds(fn: FunctionInfo) -> Set[str]:
    """Shared-state kinds this function's own body touches."""
    kinds: Set[str] = set()
    for node in function_body_walk(fn.node):
        if is_stream_draw_call(node):
            kinds.add("stream")
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
        ):
            continue
        attr = node.func.attr
        receiver = node.func.value
        if (
            attr in ("write", "read")
            and _is_sanitizer_ref(receiver)
            and node.args
        ):
            first = node.args[0]
            if (
                isinstance(first, ast.Tuple)
                and first.elts
                and isinstance(first.elts[0], ast.Constant)
                and isinstance(first.elts[0].value, str)
            ):
                kinds.add(first.elts[0].value)
        elif attr in ("check_stream", "wrap_stream"):
            kinds.add("stream")
        elif attr == "post" and _is_network_ref(receiver):
            kinds.add("net")
        elif attr == "run" and _mentions_env(receiver):
            kinds.add("dispatch")
    return kinds


def _constructed_classes(
    model: ProjectModel, fn: FunctionInfo
) -> List[str]:
    """Qualnames of methods of classes ``fn`` visibly constructs."""
    module = model.modules.get(fn.module)
    if module is None:
        return []
    methods: List[str] = []
    for node in function_body_walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        spelled = _dotted_name(node.func)
        if spelled is None:
            continue
        cls = model.resolve_class(module, spelled)
        if cls is None:
            continue
        methods.extend(
            method.qualname for method in cls.methods.values()
        )
    return methods


def derive_evidence(
    model: ProjectModel, module: ModuleInfo
) -> List[str]:
    """``"kind via witness-qualname"`` lines for one baselined module.

    Deterministic: breadth-first over the call graph (closest witness
    wins, lexicographic within a level), one witness per kind, output
    sorted.
    """
    graph = model.call_graph()
    roots = sorted(
        fn.qualname
        for fn in model.functions.values()
        if fn.module == module.name
    )
    witness: Dict[str, str] = {}
    seen: Set[str] = set(roots)
    frontier: List[str] = roots
    for _depth in range(MAX_DEPTH + 1):
        if not frontier:
            break
        next_frontier: Set[str] = set()
        for qualname in frontier:
            fn = model.functions.get(qualname)
            if fn is None:
                continue
            for kind in sorted(_direct_kinds(fn)):
                witness.setdefault(kind, qualname)
            next_frontier.update(graph.get(qualname, ()))
            next_frontier.update(_constructed_classes(model, fn))
        frontier = sorted(next_frontier - seen)
        seen |= next_frontier
    return sorted(
        f"{kind} via {qualname}"
        for kind, qualname in witness.items()
    )


def _module_for_entry(
    model: ProjectModel, entry: BaselineEntry
) -> Optional[ModuleInfo]:
    for module in model.modules.values():
        if entry.matches_path(module.path):
            return module
    return None


def update_race_evidence(
    model: ProjectModel, baseline_path: Optional[Path] = None
) -> int:
    """Recompute and store evidence on every simsan baseline entry.

    Returns the number of entries whose evidence changed.  Entries
    whose file is outside the linted tree are left untouched.
    """
    import dataclasses

    path = baseline_path or simsan_baseline_path()
    baseline = Baseline.load(path)
    changed = 0
    updated: List[BaselineEntry] = []
    for entry in baseline.entries:
        module = _module_for_entry(model, entry)
        if module is None:
            updated.append(entry)
            continue
        evidence = tuple(derive_evidence(model, module))
        if evidence != entry.evidence:
            changed += 1
        updated.append(
            dataclasses.replace(entry, evidence=evidence)
        )
    Baseline(updated).write(path)
    return changed


@register_project
class RaceReconciliationRule(ProjectRule):
    """Every simsan-baselined race must carry current static evidence."""

    rule_id = "race-reconciliation"
    summary = (
        "simsan runtime race baseline entry lacks matching static "
        "evidence: each confirmed-benign race waiver must name the "
        "shared-state kinds its file can statically reach, and the "
        "stored set must match what the call graph derives today; "
        "re-audit the new surface, then refresh with "
        "--update-race-evidence"
    )
    severity = "error"
    version = 1
    include = ("repro/",)

    #: Test seam: overrides the committed baseline location.
    baseline_path: Optional[Path] = None

    def check_project(self, model) -> List[Violation]:
        path = self.baseline_path or _tree_baseline_path(model)
        if path is None or not Path(path).exists():
            return []
        try:
            baseline = Baseline.load(path)
        except ValueError:
            return []  # simsan's own tooling reports malformed files
        violations: List[Violation] = []
        reported: Set[str] = set()
        for entry in baseline.entries:
            module = _module_for_entry(model, entry)
            if module is None or not self.applies_to(module.path):
                continue  # partial lint: file not in this run's model
            derived = derive_evidence(model, module)
            message = self._mismatch(entry, derived)
            if message is None or entry.path in reported:
                continue
            reported.add(entry.path)
            violations.append(
                Violation(
                    rule_id=self.rule_id,
                    path=module.path,
                    line=1,
                    col=1,
                    message=message,
                    severity=self.severity,
                )
            )
        return violations

    @staticmethod
    def _mismatch(
        entry: BaselineEntry, derived: List[str]
    ) -> Optional[str]:
        if not entry.evidence:
            return (
                f"baselined race in {entry.path} carries no static "
                f"evidence (derived: {', '.join(derived) or 'none'}); "
                f"run repro-lint --update-race-evidence after "
                f"auditing"
            )
        stored = set(entry.evidence)
        current = set(derived)
        if stored == current:
            return None
        grown = sorted(current - stored)
        lost = sorted(stored - current)
        parts = []
        if grown:
            parts.append(
                "new statically-reachable shared state: "
                + ", ".join(grown)
            )
        if lost:
            parts.append("stale evidence: " + ", ".join(lost))
        return (
            f"static evidence for baselined race in {entry.path} is "
            f"out of date ({'; '.join(parts)}); re-audit the change, "
            f"then run repro-lint --update-race-evidence"
        )
