"""Text, JSON, and SARIF renderings of a :class:`LintReport`."""

from __future__ import annotations

import json
from typing import List, Optional

from repro.lint.engine import LintReport

__all__ = ["render_json", "render_sarif", "render_text"]

#: simlint severity -> SARIF result level.
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}

_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(
    report: LintReport, show_suppressed: bool = False
) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: List[str] = []
    for violation in report.violations:
        waived = violation.suppressed or violation.baselined
        if waived and not show_suppressed:
            continue
        marker = ""
        if violation.suppressed:
            marker = " (suppressed)"
        elif violation.baselined:
            marker = " (baselined)"
        tag = violation.rule_id
        if violation.severity != "error":
            tag += f":{violation.severity}"
        lines.append(
            f"{violation.path}:{violation.line}:{violation.col}: "
            f"[{tag}]{marker} {violation.message}"
        )
    for entry in report.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry.path} [{entry.rule}] "
            f"waives {entry.count} finding(s) that no longer exist — "
            "trim lint/baseline.json"
        )
    active = len(report.active)
    suppressed = len(report.suppressed)
    baselined = len(report.baselined)
    waived_bits = f"{suppressed} suppressed"
    if baselined:
        waived_bits += f", {baselined} baselined"
    if active:
        summary = (
            f"{active} violation{'s' if active != 1 else ''}"
            f" ({waived_bits}) in {report.files} files"
        )
    else:
        summary = (
            f"clean: 0 violations ({waived_bits}) in "
            f"{report.files} files"
        )
    if report.cache_hits:
        summary += f" [{report.cache_hits} cached]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report; always includes waived findings."""
    payload = {
        "version": 2,
        "summary": {
            "files": report.files,
            "violations": len(report.active),
            "failures": len(report.failures),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
            "stale_baseline": len(report.stale_baseline),
            "cache_hits": report.cache_hits,
            "ok": report.ok,
        },
        "violations": [v.as_dict() for v in report.violations],
        "stale_baseline": [
            entry.as_dict() for entry in report.stale_baseline
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(
    report: LintReport,
    rules: Optional[list] = None,
    driver_name: str = "simlint",
) -> str:
    """SARIF 2.1.0 rendering (one run, driver ``driver_name``).

    ``rules`` is the list of rule objects that ran (file and project
    rules together); None means every registered rule.  The runtime
    sanitizer reuses this renderer with its check descriptors and
    ``driver_name="simsan"``.  Waived findings are emitted with a
    ``suppressions`` entry (``inSource`` for inline comments,
    ``external`` for baseline waivers) so code scanners show them as
    dismissed instead of dropping them.
    """
    if rules is None:
        from repro.lint.registry import all_project_rules, all_rules

        rules = list(all_rules()) + list(all_project_rules())
    rules = sorted(rules, key=lambda r: r.rule_id)
    rule_index = {rule.rule_id: i for i, rule in enumerate(rules)}
    descriptors = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[rule.severity]
            },
        }
        for rule in rules
    ]

    results = []
    for violation in report.violations:
        result = {
            "ruleId": violation.rule_id,
            "level": _SARIF_LEVELS.get(violation.severity, "error"),
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": max(1, violation.col),
                        },
                    }
                }
            ],
        }
        index = rule_index.get(violation.rule_id)
        if index is not None:
            result["ruleIndex"] = index
        if violation.suppressed:
            result["suppressions"] = [
                {
                    "kind": "inSource",
                    "justification": "simlint: ignore comment",
                }
            ]
        elif violation.baselined:
            result["suppressions"] = [
                {
                    "kind": "external",
                    "justification": "inventoried in lint/baseline.json",
                }
            ]
        results.append(result)

    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": driver_name,
                        "rules": descriptors,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///./"}
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
