"""Text and JSON renderings of a :class:`~repro.lint.engine.LintReport`."""

from __future__ import annotations

import json
from typing import List

from repro.lint.engine import LintReport

__all__ = ["render_json", "render_text"]


def render_text(
    report: LintReport, show_suppressed: bool = False
) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: List[str] = []
    for violation in report.violations:
        if violation.suppressed and not show_suppressed:
            continue
        marker = " (suppressed)" if violation.suppressed else ""
        lines.append(
            f"{violation.path}:{violation.line}:{violation.col}: "
            f"[{violation.rule_id}]{marker} {violation.message}"
        )
    active = len(report.active)
    suppressed = len(report.suppressed)
    if active:
        summary = (
            f"{active} violation{'s' if active != 1 else ''}"
            f" ({suppressed} suppressed) in {report.files} files"
        )
    else:
        summary = (
            f"clean: 0 violations ({suppressed} suppressed) in "
            f"{report.files} files"
        )
    if report.cache_hits:
        summary += f" [{report.cache_hits} cached]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report; always includes suppressed findings."""
    payload = {
        "version": 1,
        "summary": {
            "files": report.files,
            "violations": len(report.active),
            "suppressed": len(report.suppressed),
            "cache_hits": report.cache_hits,
            "ok": report.ok,
        },
        "violations": [v.as_dict() for v in report.violations],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
