"""Whole-program analysis: symbol table, call graph, project rules.

The per-file rules in :mod:`repro.lint.rules` catch hazards visible in
one AST.  The bugs PRs 2-4 actually shipped — a stream name that only
exists at one call site, a message handler whose signature drifted, a
CC manager that silently inherits a no-op ``crash_reset`` — span
files, so this module parses the whole linted tree once into a
:class:`ProjectModel`:

* a **module-qualified symbol table** (every module, class, method and
  function under its dotted name, with per-module import aliasing and
  conservative base-class resolution), and
* a **conservative call graph** (edges only where the callee resolves
  unambiguously: bare names through imports, ``self.method`` through
  the class chain, ``ClassName.method``, and ``self.attr.method``
  where ``self.attr`` was assigned from exactly one constructor
  spelling along the chain — never attribute calls on receivers whose
  type the model cannot pin down).

:class:`~repro.lint.registry.ProjectRule` subclasses registered here
run after every file rule and see the full model.  Nothing in the
linted tree is ever imported or executed — all analysis is static.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.lint.registry import ProjectRule, register_project
from repro.lint.rules import (
    _OBVIOUS_NON_WAITABLE,
    _is_env_waitable_call,
)
from repro.lint.stream_draws import (
    compile_patterns,
    draw_is_registered,
    iter_stream_draws,
)
from repro.lint.violations import Violation

__all__ = [
    "CCInterfaceRule",
    "ClassInfo",
    "FunctionInfo",
    "MessageHandlerRule",
    "ModuleInfo",
    "ProjectModel",
    "StreamRegistryRule",
    "WaitableLeakRule",
]


# ======================================================================
# Symbol table
# ======================================================================


def _decorator_names(node: ast.AST) -> FrozenSet[str]:
    names = set()
    for decorator in getattr(node, "decorator_list", ()):
        target = decorator
        if isinstance(target, ast.Call):
            target = target.func
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return frozenset(names)


def function_body_walk(function: ast.AST):
    """Walk a function body without entering nested functions."""
    stack = list(function.body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_generator(function: ast.AST) -> bool:
    for node in function_body_walk(function):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


@dataclass(frozen=True)
class FunctionInfo:
    """One module-level function or class method."""

    qualname: str
    name: str
    module: str
    path: str
    class_name: Optional[str]
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    decorators: FrozenSet[str]
    is_generator: bool

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def is_abstract(self) -> bool:
        return "abstractmethod" in self.decorators

    def positional_params(self) -> Tuple[List[ast.arg], int, bool]:
        """(positional params sans self/cls, required count, has *args)."""
        args = self.node.args
        params = list(args.posonlyargs) + list(args.args)
        if self.is_method and not (
            self.decorators & {"staticmethod"}
        ):
            params = params[1:]  # self / cls
        required = max(0, len(params) - len(args.defaults))
        return params, required, args.vararg is not None

    def accepts_positional(self, count: int) -> bool:
        """Whether ``fn(*count_args)`` binds without error."""
        params, required, has_vararg = self.positional_params()
        if count < required:
            return False
        return has_vararg or count <= len(params)


@dataclass(frozen=True)
class ClassInfo:
    """One class with its methods and raw base-class spellings."""

    qualname: str
    name: str
    module: str
    path: str
    node: ast.ClassDef
    bases: Tuple[str, ...]  # dotted names as written; "" if unresolvable
    methods: Dict[str, FunctionInfo]
    abstract_methods: FrozenSet[str]
    instance_attrs: FrozenSet[str]
    #: attr -> constructor spelling for ``self.attr = Spelling(...)``
    #: assignments; "" when two methods disagree on the spelling.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module of the linted tree."""

    name: str
    path: str
    tree: ast.Module
    source: str
    #: Local alias -> fully qualified dotted target.
    imports: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def module_name_for(path: Path) -> str:
    """Dotted module name derived from the package layout on disk.

    Walks up while ``__init__.py`` marks the parent as a package, so
    ``src/repro/core/network.py`` maps to ``repro.core.network``
    regardless of where the tree is checked out (and fixture packages
    in temporary directories resolve the same way).
    """
    path = Path(path)
    parts = [] if path.name == "__init__.py" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem


class ProjectModel:
    """Symbol table + call graph over one set of parsed modules."""

    def __init__(self, modules: Dict[str, ModuleInfo]):
        self.modules = modules
        self.modules_by_path: Dict[str, ModuleInfo] = {
            info.path: info for info in modules.values()
        }
        self.classes: Dict[str, ClassInfo] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        for info in modules.values():
            for cls in info.classes.values():
                self.classes[cls.qualname] = cls
                self.classes_by_name.setdefault(cls.name, []).append(
                    cls
                )
            for fn in info.functions.values():
                self.functions[fn.qualname] = fn
            for cls in info.classes.values():
                for method in cls.methods.values():
                    self.functions[method.qualname] = method
        self._call_graph: Optional[Dict[str, FrozenSet[str]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, files: Sequence[Path]) -> "ProjectModel":
        """Parse ``files`` into a model; unparsable files are skipped
        (the per-file pass already reported them as ``parse-error``)."""
        modules: Dict[str, ModuleInfo] = {}
        for path in files:
            path = Path(path)
            posix = path.as_posix()
            try:
                source = path.read_bytes().decode(
                    "utf-8", errors="replace"
                )
                tree = ast.parse(source, filename=posix)
            except (OSError, SyntaxError, ValueError):
                continue
            name = module_name_for(path)
            if name in modules:
                # Two files mapping to one module (e.g. the same tree
                # given twice): first discovery wins, deterministic
                # because files arrive sorted.
                continue
            modules[name] = cls._build_module(
                name, posix, tree, source
            )
        return cls(modules)

    @staticmethod
    def _build_module(
        name: str, path: str, tree: ast.Module, source: str
    ) -> ModuleInfo:
        info = ModuleInfo(
            name=name, path=path, tree=tree, source=source
        )
        package = name.rsplit(".", 1)[0] if "." in name else ""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = (
                        alias.name if alias.asname else
                        alias.name.split(".")[0]
                    )
                    info.imports[bound] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Relative import: resolve against this package.
                    anchor_parts = name.split(".")
                    anchor = anchor_parts[: len(anchor_parts) - node.level]
                    base = ".".join(anchor + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    info.imports[bound] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        for node in tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                info.functions[node.name] = FunctionInfo(
                    qualname=f"{name}.{node.name}",
                    name=node.name,
                    module=name,
                    path=path,
                    class_name=None,
                    node=node,
                    decorators=_decorator_names(node),
                    is_generator=_is_generator(node),
                )
            elif isinstance(node, ast.ClassDef):
                info.classes[node.name] = ProjectModel._build_class(
                    name, path, node
                )
        _ = package  # (kept for symmetry; relative imports used it)
        return info

    @staticmethod
    def _build_class(
        module: str, path: str, node: ast.ClassDef
    ) -> ClassInfo:
        methods: Dict[str, FunctionInfo] = {}
        abstract = set()
        instance_attrs = set()
        attr_types: Dict[str, str] = {}
        for item in node.body:
            if isinstance(
                item, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                fn = FunctionInfo(
                    qualname=f"{module}.{node.name}.{item.name}",
                    name=item.name,
                    module=module,
                    path=path,
                    class_name=node.name,
                    node=item,
                    decorators=_decorator_names(item),
                    is_generator=_is_generator(item),
                )
                methods[item.name] = fn
                if fn.is_abstract:
                    abstract.add(item.name)
                for sub in function_body_walk(item):
                    target = None
                    if isinstance(sub, ast.Assign):
                        for t in sub.targets:
                            target = t
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(
                                    target.value, ast.Name
                                )
                                and target.value.id == "self"
                            ):
                                instance_attrs.add(target.attr)
                                spelled = (
                                    _dotted_name(sub.value.func)
                                    if isinstance(
                                        sub.value, ast.Call
                                    )
                                    else None
                                ) or ""
                                previous = attr_types.get(
                                    target.attr
                                )
                                if previous is None:
                                    attr_types[target.attr] = spelled
                                elif previous != spelled:
                                    # Re-assigned with a different
                                    # spelling: type unknown.
                                    attr_types[target.attr] = ""
                    elif isinstance(sub, ast.AnnAssign):
                        target = sub.target
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            instance_attrs.add(target.attr)
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                instance_attrs.add(item.target.id)
            elif isinstance(item, ast.Assign):
                for t in item.targets:
                    if isinstance(t, ast.Name):
                        instance_attrs.add(t.id)
        bases = tuple(
            _dotted_name(base) or "" for base in node.bases
        )
        return ClassInfo(
            qualname=f"{module}.{node.name}",
            name=node.name,
            module=module,
            path=path,
            node=node,
            bases=bases,
            methods=methods,
            abstract_methods=frozenset(abstract),
            instance_attrs=frozenset(instance_attrs),
            attr_types=attr_types,
        )

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve_class(
        self, module: ModuleInfo, spelled: str
    ) -> Optional[ClassInfo]:
        """Resolve a base-class spelling as written in ``module``."""
        if not spelled:
            return None
        head, _, rest = spelled.partition(".")
        # Fully spelled or import-aliased dotted reference.
        target = module.imports.get(head)
        if target is not None:
            qualname = f"{target}.{rest}" if rest else target
            found = self.classes.get(qualname)
            if found is not None:
                return found
        if not rest:
            local = module.classes.get(head)
            if local is not None:
                return local
            candidates = self.classes_by_name.get(head, [])
            if len(candidates) == 1:
                return candidates[0]
        return self.classes.get(spelled)

    def base_classes(self, cls: ClassInfo) -> List[ClassInfo]:
        """Resolved direct bases of ``cls`` (unresolvable ones drop)."""
        module = self.modules.get(cls.module)
        if module is None:
            return []
        resolved = []
        for spelled in cls.bases:
            base = self.resolve_class(module, spelled)
            if base is not None:
                resolved.append(base)
        return resolved

    def mro_chain(self, cls: ClassInfo) -> List[ClassInfo]:
        """Conservative linearization: DFS over resolved bases,
        duplicates and cycles dropped, ``cls`` first."""
        chain: List[ClassInfo] = []
        seen = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            chain.append(current)
            stack.extend(self.base_classes(current))
        return chain

    def resolve_method(
        self, cls: ClassInfo, name: str
    ) -> Optional[FunctionInfo]:
        """First definition of ``name`` along the class chain."""
        for ancestor in self.mro_chain(cls):
            method = ancestor.methods.get(name)
            if method is not None:
                return method
        return None

    def chain_instance_attrs(self, cls: ClassInfo) -> FrozenSet[str]:
        """Instance attributes assigned anywhere along the chain."""
        attrs = set()
        for ancestor in self.mro_chain(cls):
            attrs.update(ancestor.instance_attrs)
        return frozenset(attrs)

    def attr_class(
        self, cls: ClassInfo, attr: str
    ) -> Optional[ClassInfo]:
        """The class of ``self.attr`` when every assignment along the
        chain agrees on one resolvable constructor spelling."""
        spelled: Optional[str] = None
        declared_in: Optional[ClassInfo] = None
        for ancestor in self.mro_chain(cls):
            candidate = ancestor.attr_types.get(attr)
            if candidate is None:
                continue
            if not candidate:
                return None  # some assignment had unknown type
            if spelled is None:
                spelled = candidate
                declared_in = ancestor
            elif spelled != candidate:
                return None  # ancestors disagree
        if spelled is None or declared_in is None:
            return None
        # Resolve the spelling in the module that wrote it.
        module = self.modules.get(declared_in.module)
        if module is None:
            return None
        return self.resolve_class(module, spelled)

    def transitive_subclasses(
        self, root: ClassInfo
    ) -> List[ClassInfo]:
        """Every model class below ``root`` (excluding it), sorted."""
        below = []
        for cls in self.classes.values():
            if cls.qualname == root.qualname:
                continue
            chain = self.mro_chain(cls)
            if any(
                c.qualname == root.qualname for c in chain[1:]
            ):
                below.append(cls)
        below.sort(key=lambda c: c.qualname)
        return below

    def resolve_call(
        self, caller: FunctionInfo, call: ast.Call
    ) -> Optional[FunctionInfo]:
        """Conservative callee resolution; None when ambiguous."""
        func = call.func
        module = self.modules.get(caller.module)
        if isinstance(func, ast.Name):
            if module is None:
                return None
            local = module.functions.get(func.id)
            if local is not None:
                return local
            imported = module.imports.get(func.id)
            if imported is not None:
                return self.functions.get(imported)
            return None
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
                and caller.class_name is not None
                and module is not None
            ):
                enclosing = module.classes.get(caller.class_name)
                if enclosing is not None:
                    return self.resolve_method(enclosing, func.attr)
                return None
            if (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and caller.class_name is not None
                and module is not None
            ):
                # self.attr.method() through the recorded constructor
                # type of self.attr.
                enclosing = module.classes.get(caller.class_name)
                if enclosing is not None:
                    target_cls = self.attr_class(
                        enclosing, receiver.attr
                    )
                    if target_cls is not None:
                        return self.resolve_method(
                            target_cls, func.attr
                        )
                return None
            if isinstance(receiver, ast.Name) and module is not None:
                target = self.resolve_class(module, receiver.id)
                if target is not None:
                    return self.resolve_method(target, func.attr)
        return None

    def call_graph(self) -> Dict[str, FrozenSet[str]]:
        """Caller qualname -> resolved callee qualnames (memoized)."""
        if self._call_graph is None:
            edges: Dict[str, FrozenSet[str]] = {}
            for fn in self.functions.values():
                callees = set()
                for node in ast.walk(fn.node):
                    if isinstance(node, ast.Call):
                        target = self.resolve_call(fn, node)
                        if target is not None:
                            callees.add(target.qualname)
                edges[fn.qualname] = frozenset(callees)
            self._call_graph = edges
        return self._call_graph

    # ------------------------------------------------------------------
    # Domain extractions
    # ------------------------------------------------------------------

    def stream_registry(self) -> List[str]:
        """Stream names/patterns registered via ``register_stream``.

        Extracted statically from every module in the model (the
        canonical registrations live in ``repro/sim/streams.py``, but
        extensions may register their own); only constant first
        arguments count.
        """
        patterns = set()
        for module in self.modules.values():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if name != "register_stream":
                    continue
                if node.args and isinstance(
                    node.args[0], ast.Constant
                ) and isinstance(node.args[0].value, str):
                    patterns.add(node.args[0].value)
        return sorted(patterns)

    def stream_registry_paths(self) -> FrozenSet[str]:
        """Paths of modules that register stream names."""
        paths = set()
        for module in self.modules.values():
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "register_stream"
                ):
                    paths.add(module.path)
                    break
        return frozenset(paths)


# ======================================================================
# Project rules
# ======================================================================


@register_project
class StreamRegistryRule(ProjectRule):
    """Every stream draw must resolve to a registered stream name."""

    rule_id = "stream-registry"
    summary = (
        "stream name does not resolve to any register_stream() entry: "
        "a typo silently forks a fresh RNG stream and perturbs "
        "common-random-numbers comparisons; register the name in "
        "repro/sim/streams.py or fix the spelling"
    )
    severity = "error"
    version = 1
    include = ("repro/",)

    def check_project(self, model: ProjectModel) -> List[Violation]:
        patterns = model.stream_registry()
        if not patterns:
            return []  # no registry in scope: nothing to check against
        compiled = compile_patterns(patterns)
        registry_paths = model.stream_registry_paths()
        violations: List[Violation] = []
        for module in sorted(
            model.modules.values(), key=lambda m: m.path
        ):
            if not self.applies_to(module.path):
                continue
            if module.path in registry_paths:
                continue  # the registry module's own internals
            for draw in iter_stream_draws(module.tree):
                if draw.dynamic:
                    continue
                if draw_is_registered(draw, compiled):
                    continue
                drawn = (
                    repr(draw.name)
                    if draw.name is not None
                    else f"f-string starting {draw.prefix!r}"
                )
                violations.append(
                    Violation(
                        rule_id=self.rule_id,
                        path=module.path,
                        line=draw.line,
                        col=draw.col,
                        message=(
                            f"unregistered stream name {drawn}; "
                            + self.summary
                        ),
                        severity=self.severity,
                    )
                )
        return violations


def _is_network_ref(node: ast.AST) -> bool:
    # ``network.post(...)`` / ``self.network.post(...)`` /
    # ``self.net._transmit...`` — the same spelling heuristic the
    # stream rules use for their receivers.
    if isinstance(node, ast.Name):
        return "network" in node.id or node.id == "net"
    if isinstance(node, ast.Attribute):
        return "network" in node.attr or node.attr == "net"
    return False


@register_project
class MessageHandlerRule(ProjectRule):
    """``post()`` handlers must be resolvable unary callables."""

    rule_id = "message-handler-protocol"
    summary = (
        "NetworkManager.post handlers run as handler(payload): the "
        "handler (and any on_drop hook) must resolve to a callable "
        "accepting exactly one positional argument"
    )
    severity = "error"
    version = 1
    include = ("repro/",)

    def check_project(self, model: ProjectModel) -> List[Violation]:
        violations: List[Violation] = []
        for module in sorted(
            model.modules.values(), key=lambda m: m.path
        ):
            if not self.applies_to(module.path):
                continue
            self._check_module(model, module, violations)
        return violations

    def _check_module(
        self,
        model: ProjectModel,
        module: ModuleInfo,
        violations: List[Violation],
    ) -> None:
        functions = list(module.functions.values())
        for cls in module.classes.values():
            functions.extend(cls.methods.values())
        for fn in functions:
            local_defs = {
                node.name: node
                for node in ast.walk(fn.node)
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
                and node is not fn.node
            }
            for node in ast.walk(fn.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "post"
                    and _is_network_ref(node.func.value)
                ):
                    continue
                for role, expr in self._hook_args(node):
                    problem = self._check_callable(
                        model, module, fn, local_defs, expr
                    )
                    if problem is not None:
                        violations.append(
                            Violation(
                                rule_id=self.rule_id,
                                path=module.path,
                                line=expr.lineno,
                                col=expr.col_offset + 1,
                                message=f"{role}: {problem}",
                                severity=self.severity,
                            )
                        )

    @staticmethod
    def _hook_args(call: ast.Call):
        """(role, expression) pairs for the handler and on_drop args."""
        hooks = []
        if len(call.args) >= 3:
            hooks.append(("post() handler", call.args[2]))
        if len(call.args) >= 5:
            hooks.append(("post() on_drop hook", call.args[4]))
        for keyword in call.keywords:
            if keyword.arg == "handler":
                hooks.append(("post() handler", keyword.value))
            elif keyword.arg == "on_drop":
                hooks.append(("post() on_drop hook", keyword.value))
        return hooks

    def _check_callable(
        self,
        model: ProjectModel,
        module: ModuleInfo,
        caller: FunctionInfo,
        local_defs: Dict[str, ast.AST],
        expr: ast.AST,
    ) -> Optional[str]:
        """None when fine/unknown, else a description of the problem."""
        if isinstance(expr, ast.Constant) and expr.value is None:
            return None  # explicit "no hook"
        if isinstance(expr, ast.Lambda):
            return self._lambda_problem(expr)
        if isinstance(expr, ast.Name):
            local = local_defs.get(expr.id)
            if local is not None:
                return self._arity_problem(
                    FunctionInfo(
                        qualname=f"<local>.{expr.id}",
                        name=expr.id,
                        module=module.name,
                        path=module.path,
                        class_name=None,
                        node=local,
                        decorators=_decorator_names(local),
                        is_generator=_is_generator(local),
                    )
                )
            target = module.functions.get(expr.id)
            if target is None:
                imported = module.imports.get(expr.id)
                if imported is not None:
                    target = model.functions.get(imported)
            if target is not None:
                return self._arity_problem(target)
            return None  # a parameter or attribute: unknown, skip
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and caller.class_name is not None
        ):
            enclosing = module.classes.get(caller.class_name)
            if enclosing is None:
                return None
            method = model.resolve_method(enclosing, expr.attr)
            if method is not None:
                return self._arity_problem(method)
            if expr.attr in model.chain_instance_attrs(enclosing):
                return None  # instance attribute: arity unknown
            return (
                f"handler self.{expr.attr} does not resolve to any "
                f"method or attribute of {enclosing.name}"
            )
        return None

    @staticmethod
    def _lambda_problem(expr: ast.Lambda) -> Optional[str]:
        args = expr.args
        params = list(args.posonlyargs) + list(args.args)
        required = max(0, len(params) - len(args.defaults))
        if required <= 1 <= (
            len(params) if args.vararg is None else 10**9
        ):
            return None
        return (
            f"lambda takes {required} required argument(s); "
            "delivery calls it with exactly one payload"
        )

    @staticmethod
    def _arity_problem(fn: FunctionInfo) -> Optional[str]:
        if fn.accepts_positional(1):
            return None
        _params, required, _vararg = fn.positional_params()
        return (
            f"{fn.qualname} takes {required} required positional "
            "argument(s); delivery calls it with exactly one payload"
        )


@register_project
class CCInterfaceRule(ProjectRule):
    """Concrete CC classes must implement the full abstract surface."""

    rule_id = "cc-interface"
    summary = (
        "concurrency-control class leaves part of the CC interface "
        "unimplemented: every concrete manager must provide the "
        "abstract surface plus an explicit crash_reset, so a new "
        "algorithm cannot silently no-op under fault injection"
    )
    severity = "error"
    #: v2: the router package hosts CC classes too (RoutedNodeManager
    #: and any future composite manager) — same surface requirements.
    version = 2
    include = ("repro/cc/", "repro/router/")

    #: Root -> methods that must be defined *below* the root even
    #: though the root ships a concrete default.
    _EXPLICIT: Dict[str, Tuple[str, ...]] = {
        "NodeCCManager": ("crash_reset",),
        "CCAlgorithm": (),
    }

    def check_project(self, model: ProjectModel) -> List[Violation]:
        violations: List[Violation] = []
        for root_name in sorted(self._EXPLICIT):
            for root in model.classes_by_name.get(root_name, []):
                if not root.abstract_methods:
                    continue  # not the abstract interface definition
                self._check_root(model, root, violations)
        return violations

    def _check_root(
        self,
        model: ProjectModel,
        root: ClassInfo,
        violations: List[Violation],
    ) -> None:
        subclasses = model.transitive_subclasses(root)
        parents = set()
        for cls in subclasses:
            for base in model.base_classes(cls):
                parents.add(base.qualname)
        required = sorted(
            set(root.abstract_methods)
            | set(self._EXPLICIT.get(root.name, ()))
        )
        for cls in subclasses:
            if cls.qualname in parents:
                continue  # intermediate base: leaves carry the check
            if cls.abstract_methods:
                continue  # itself abstract: not instantiable
            if not self.applies_to(cls.path):
                continue
            chain = [
                ancestor
                for ancestor in model.mro_chain(cls)
                if ancestor.qualname != root.qualname
            ]
            missing = [
                name
                for name in required
                if not any(
                    name in ancestor.methods
                    and name not in ancestor.abstract_methods
                    for ancestor in chain
                )
            ]
            if missing:
                violations.append(
                    Violation(
                        rule_id=self.rule_id,
                        path=cls.path,
                        line=cls.node.lineno,
                        col=cls.node.col_offset + 1,
                        message=(
                            f"{cls.name} (concrete {root.name}) does "
                            "not implement: " + ", ".join(missing)
                            + " — implement them explicitly (an "
                            "intentional no-op still documents the "
                            "fault-recovery contract)"
                        ),
                        severity=self.severity,
                    )
                )


@register_project
class WaitableLeakRule(ProjectRule):
    """Process bodies must not yield calls returning non-Waitables."""

    rule_id = "waitable-leak"
    summary = (
        "sim process yields the result of a call that provably "
        "returns a non-Waitable: the kernel will kill the process "
        "with SimulationError at runtime; yield a "
        "Timeout/Event/Process (or use 'yield from' for a "
        "sub-generator)"
    )
    severity = "error"
    version = 1
    include = ("repro/",)

    def check_project(self, model: ProjectModel) -> List[Violation]:
        violations: List[Violation] = []
        for fn in sorted(
            model.functions.values(), key=lambda f: f.qualname
        ):
            if not self.applies_to(fn.path):
                continue
            if not fn.is_generator:
                continue
            self._check_process(model, fn, violations)
        return violations

    def _check_process(
        self,
        model: ProjectModel,
        fn: FunctionInfo,
        violations: List[Violation],
    ) -> None:
        yields = [
            node
            for node in function_body_walk(fn.node)
            if isinstance(node, ast.Yield)
        ]
        if not any(
            y.value is not None and _is_env_waitable_call(y.value)
            for y in yields
        ):
            return  # not a sim-process body (plain generator)
        for y in yields:
            value = y.value
            if not isinstance(value, ast.Call):
                continue  # bare/literal yields: per-file rule's job
            if _is_env_waitable_call(value):
                continue
            callee = model.resolve_call(fn, value)
            if callee is None:
                continue  # unresolvable: stay conservative
            if callee.is_generator:
                violations.append(
                    Violation(
                        rule_id=self.rule_id,
                        path=fn.path,
                        line=value.lineno,
                        col=value.col_offset + 1,
                        message=(
                            f"{fn.qualname} yields a generator "
                            f"object from {callee.qualname}; a "
                            "generator is not a Waitable — use "
                            "'yield from' or wrap in env.process()"
                        ),
                        severity=self.severity,
                    )
                )
            elif self._returns_provably_non_waitable(callee):
                violations.append(
                    Violation(
                        rule_id=self.rule_id,
                        path=fn.path,
                        line=value.lineno,
                        col=value.col_offset + 1,
                        message=(
                            f"{fn.qualname} yields the result of "
                            f"{callee.qualname}, which provably "
                            "returns a non-Waitable; " + self.summary
                        ),
                        severity=self.severity,
                    )
                )

    @staticmethod
    def _returns_provably_non_waitable(fn: FunctionInfo) -> bool:
        returns = [
            node
            for node in function_body_walk(fn.node)
            if isinstance(node, ast.Return)
        ]
        values = [r.value for r in returns if r.value is not None]
        if not values:
            return True  # falls off the end / bare return: None
        return all(
            isinstance(value, _OBVIOUS_NON_WAITABLE)
            or (
                isinstance(value, ast.Constant)
                and value.value is None
            )
            for value in values
        )
