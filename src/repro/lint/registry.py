"""Rule base class and the process-wide rule registry.

Rules register themselves with the :func:`register` decorator at import
time (importing :mod:`repro.lint.rules` populates the registry).  Each
rule carries a ``version`` stamp; the combined signature of every
registered rule feeds the per-file cache key, so editing or adding a
rule invalidates exactly the cached results it could change.
"""

from __future__ import annotations

import ast
import hashlib
from typing import Dict, List, Tuple, Type

from repro.lint.violations import Violation

__all__ = [
    "Rule",
    "all_rules",
    "get_rule",
    "register",
    "rules_signature",
]


class Rule:
    """One static check.

    Subclasses set the class attributes and implement :meth:`check`.

    ``include``/``exclude`` scope the rule by path substring (matched
    against the POSIX form of the file path): with a non-empty
    ``include`` the rule only runs on paths containing one of the
    fragments; any ``exclude`` fragment wins over ``include``.  This is
    how "wall-clock reads are fine in benchmark timing loops" and
    "unordered iteration only matters where schedules are decided" are
    expressed without a config file.
    """

    #: Stable kebab-case identifier, used in reports and suppressions.
    rule_id: str = ""
    #: One-line description for ``--list-rules`` and the docs table.
    summary: str = ""
    #: Bumped whenever the rule's behaviour changes (cache invalidation).
    version: int = 1
    #: Path fragments the rule is limited to (empty = everywhere).
    include: Tuple[str, ...] = ()
    #: Path fragments the rule never runs on.
    exclude: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` (POSIX string)."""
        if any(fragment in path for fragment in self.exclude):
            return False
        if self.include:
            return any(fragment in path for fragment in self.include)
        return True

    def check(
        self, tree: ast.AST, source: str, path: str
    ) -> List[Violation]:
        """Findings for one parsed file; locations must be 1-based."""
        raise NotImplementedError

    def violation(
        self, path: str, node: ast.AST, message: str = ""
    ) -> Violation:
        """Convenience constructor anchored at ``node``."""
        return Violation(
            rule_id=self.rule_id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message or self.summary,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule."""
    rule = rule_class()
    if not rule.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id: {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return rule_class


def _ensure_loaded() -> None:
    if not _REGISTRY:
        import repro.lint.rules  # noqa: F401 - registers on import


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id for stable output."""
    _ensure_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule; raises ``KeyError`` for unknown ids."""
    _ensure_loaded()
    return _REGISTRY[rule_id]


def rules_signature(rules: List[Rule] = None) -> str:
    """Digest of the active rule set, part of every cache key.

    Covers rule ids, versions, and scoping, so changing any of them
    invalidates cached per-file results.
    """
    if rules is None:
        rules = all_rules()
    parts = [
        f"{r.rule_id}:{r.version}:{','.join(r.include)}"
        f":{','.join(r.exclude)}"
        for r in sorted(rules, key=lambda r: r.rule_id)
    ]
    digest = hashlib.sha256("|".join(parts).encode("utf-8"))
    return digest.hexdigest()[:16]
