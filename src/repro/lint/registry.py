"""Rule base classes and the process-wide rule registries.

Two kinds of rule live here:

* **File rules** (:class:`Rule`) see one parsed file at a time and are
  cache-friendly: linting a file is a pure function of its bytes and
  the active rule set.
* **Project rules** (:class:`ProjectRule`) see the whole-program model
  (symbol table + call graph, :mod:`repro.lint.project`) and run after
  every file rule; their findings are never cached per file.

Rules register themselves with the :func:`register` /
:func:`register_project` decorators at import time (importing
:mod:`repro.lint.rules` and :mod:`repro.lint.project` populates the
registries).  Each rule carries a ``version`` stamp and a *source
hash* — a whitespace/comment-insensitive digest of the module that
defines it — and the combined signature of every registered file rule
feeds the per-file cache key, so editing a rule's logic invalidates
exactly the cached results it could change while a formatting-only
edit of the rule module invalidates nothing.
"""

from __future__ import annotations

import ast
import hashlib
import importlib
import inspect
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Type

from repro.lint.violations import SEVERITIES, Violation

__all__ = [
    "RULESET_VERSION",
    "ProjectRule",
    "Rule",
    "all_project_rules",
    "all_rules",
    "get_rule",
    "module_source_hash",
    "register",
    "register_project",
    "rules_signature",
]

#: Bumped when the engine's rule semantics change globally (severity
#: model, suppression format, ...); part of every cache key.
#: v3: flow-sensitive rule layer (CFG/dataflow/taint) added.
RULESET_VERSION = 3


class _BaseRule:
    """Attributes shared by file and project rules."""

    #: Stable kebab-case identifier, used in reports and suppressions.
    rule_id: str = ""
    #: One-line description for ``--list-rules`` and the docs table.
    summary: str = ""
    #: ``error`` findings fail the run; ``warning``/``info`` only report.
    severity: str = "error"
    #: Bumped whenever the rule's behaviour changes (cache invalidation).
    version: int = 1
    #: Path fragments the rule is limited to (empty = everywhere).
    include: Tuple[str, ...] = ()
    #: Path fragments the rule never runs on.
    exclude: Tuple[str, ...] = ()
    #: Dotted names of engine modules this rule's verdicts also depend
    #: on (the flow rules name the CFG/dataflow/taint modules here, so
    #: editing the engine busts their cached results, not just edits
    #: to the rule module itself).
    extra_hash_modules: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` (POSIX string)."""
        if any(fragment in path for fragment in self.exclude):
            return False
        if self.include:
            return any(fragment in path for fragment in self.include)
        return True

    @property
    def source_hash(self) -> str:
        """Digest of the defining module (plus any declared engine
        modules), insensitive to formatting."""
        try:
            module_file = inspect.getfile(type(self))
        except (TypeError, OSError):  # pragma: no cover - builtins only
            return "unknown"
        digests = [module_source_hash(module_file)]
        for dotted in self.extra_hash_modules:
            module = importlib.import_module(dotted)
            origin = getattr(module, "__file__", None)
            digests.append(
                module_source_hash(origin) if origin else dotted
            )
        if len(digests) == 1:
            return digests[0]
        combined = hashlib.sha256(":".join(digests).encode("utf-8"))
        return combined.hexdigest()[:16]

    def violation(
        self,
        path: str,
        node: ast.AST,
        message: str = "",
        severity: Optional[str] = None,
    ) -> Violation:
        """Convenience constructor anchored at ``node``."""
        return Violation(
            rule_id=self.rule_id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message or self.summary,
            severity=severity or self.severity,
        )


class Rule(_BaseRule):
    """One per-file static check.

    Subclasses set the class attributes and implement :meth:`check`.

    ``include``/``exclude`` scope the rule by path substring (matched
    against the POSIX form of the file path): with a non-empty
    ``include`` the rule only runs on paths containing one of the
    fragments; any ``exclude`` fragment wins over ``include``.  This is
    how "wall-clock reads are fine in benchmark timing loops" and
    "unordered iteration only matters where schedules are decided" are
    expressed without a config file.
    """

    def check(
        self, tree: ast.AST, source: str, path: str
    ) -> List[Violation]:
        """Findings for one parsed file; locations must be 1-based."""
        raise NotImplementedError


class ProjectRule(_BaseRule):
    """One whole-program check.

    ``check_project`` receives the :class:`~repro.lint.project.
    ProjectModel` built over every linted file and returns findings
    anchored in any of them.  ``include``/``exclude`` scope which
    files' *findings* the rule may emit (the model itself always spans
    the full tree — a conformance check needs to see the registry
    module even when findings are limited to consumer modules).
    """

    def check_project(self, model) -> List[Violation]:
        """Findings over the whole-program model."""
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}
_PROJECT_REGISTRY: Dict[str, ProjectRule] = {}


def _register_into(registry: Dict, other: Dict, rule) -> None:
    if not rule.rule_id:
        raise ValueError(f"{type(rule).__name__} has no rule_id")
    if rule.rule_id in registry or rule.rule_id in other:
        raise ValueError(f"duplicate rule id: {rule.rule_id}")
    if rule.severity not in SEVERITIES:
        raise ValueError(
            f"{rule.rule_id}: unknown severity {rule.severity!r}"
        )
    registry[rule.rule_id] = rule


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a file rule."""
    _register_into(_REGISTRY, _PROJECT_REGISTRY, rule_class())
    return rule_class


def register_project(
    rule_class: Type[ProjectRule],
) -> Type[ProjectRule]:
    """Class decorator: instantiate and register a project rule."""
    _register_into(_PROJECT_REGISTRY, _REGISTRY, rule_class())
    return rule_class


def _ensure_loaded() -> None:
    if not _REGISTRY:
        import repro.lint.rules  # noqa: F401 - registers on import
    if not _PROJECT_REGISTRY:
        import repro.lint.project  # noqa: F401 - registers on import
    # Flow rules register into both registries; re-import is a cached
    # no-op after the first call.
    import repro.lint.flow.rules  # noqa: F401 - registers on import


def all_rules() -> List[Rule]:
    """Every registered file rule, ordered by id for stable output."""
    _ensure_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def all_project_rules() -> List[ProjectRule]:
    """Every registered project rule, ordered by id."""
    _ensure_loaded()
    return [
        _PROJECT_REGISTRY[rule_id]
        for rule_id in sorted(_PROJECT_REGISTRY)
    ]


def get_rule(rule_id: str):
    """Look up one rule (file or project); ``KeyError`` if unknown."""
    _ensure_loaded()
    if rule_id in _REGISTRY:
        return _REGISTRY[rule_id]
    return _PROJECT_REGISTRY[rule_id]


#: Per-module AST-digest memo (hashing rules.py once per process).
_SOURCE_HASH_CACHE: Dict[str, str] = {}


def module_source_hash(module_file: str) -> str:
    """Formatting-insensitive digest of one Python source file.

    Hashes the ``ast.dump`` of the parsed module, so whitespace and
    comment edits produce the same digest while any change to the
    code's structure (including docstrings) produces a new one.  Files
    that cannot be read or parsed hash their raw identity instead —
    conservative: an unreadable rule module never silently reuses
    stale cached verdicts.
    """
    cached = _SOURCE_HASH_CACHE.get(module_file)
    if cached is not None:
        return cached
    try:
        source = Path(module_file).read_text("utf-8")
        normalized = ast.dump(ast.parse(source))
    except (OSError, SyntaxError, ValueError):
        normalized = f"unparsed:{module_file}"
    digest = hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:16]
    _SOURCE_HASH_CACHE[module_file] = digest
    return digest


def rules_signature(rules: List[Rule] = None) -> str:
    """Digest of the active file-rule set, part of every cache key.

    Covers the engine-wide :data:`RULESET_VERSION` plus each rule's
    id, version stamp, scoping, and defining-module source hash, so
    changing any of them invalidates cached per-file results — while a
    whitespace-only edit of a rule module changes nothing.  Project
    rules are deliberately absent: per-file cache entries hold only
    file-rule findings, which project-rule edits cannot affect.
    """
    if rules is None:
        rules = all_rules()
    parts = [f"ruleset:{RULESET_VERSION}"]
    parts.extend(
        f"{r.rule_id}:{r.version}:{r.severity}:{r.source_hash}"
        f":{','.join(r.include)}:{','.join(r.exclude)}"
        for r in sorted(rules, key=lambda r: r.rule_id)
    )
    digest = hashlib.sha256("|".join(parts).encode("utf-8"))
    return digest.hexdigest()[:16]
