"""Per-file lint result cache, keyed on content hash.

Linting is a pure function of ``(file bytes, rule set)``: suppressions
live in the file, rule scoping is part of the rules signature, and
nothing else feeds a verdict.  So results are cached in one JSON file
keyed by ``sha256(file bytes)`` plus the
:func:`~repro.lint.registry.rules_signature` of the active rules —
editing a file, a rule, or a rule's scope invalidates exactly the
entries it could change.  The same discipline as
:mod:`repro.experiments.result_cache`, scaled down to one flat file.

Corrupt or unreadable caches are treated as empty; writes go through a
temp file + ``os.replace`` so interrupted runs never leave a truncated
cache behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.lint.violations import Violation

__all__ = ["LintCache", "default_cache_path"]

#: Bump when the cache entry layout changes (2: violations carry
#: severity/baselined fields; 3: flow-rule verdicts depend on the
#: engine modules, hashed via extra_hash_modules).
CACHE_FORMAT = 3


def default_cache_path() -> Path:
    """``$REPRO_LINT_CACHE`` or ``results/.cache/simlint.json``."""
    override = os.environ.get("REPRO_LINT_CACHE")
    if override:
        return Path(override)
    return Path("results") / ".cache" / "simlint.json"


class LintCache:
    """Content-addressed store of per-file violation lists."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self._entries: Dict[str, List[dict]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text("utf-8"))
        except (OSError, ValueError):
            return
        if (
            not isinstance(raw, dict)
            or raw.get("format") != CACHE_FORMAT
            or not isinstance(raw.get("entries"), dict)
        ):
            return
        self._entries = raw["entries"]

    @staticmethod
    def key(content_hash: str, rules_signature: str) -> str:
        """Cache key for one file under one rule set."""
        return f"{content_hash}:{rules_signature}"

    def get(self, key: str) -> Optional[List[Violation]]:
        """Cached violations for ``key``, or None on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        try:
            return [Violation.from_dict(item) for item in entry]
        except (KeyError, TypeError, ValueError):
            # Corrupt entry: drop it and recompute.
            del self._entries[key]
            self._dirty = True
            return None

    def put(self, key: str, violations: List[Violation]) -> None:
        """Record the violations for ``key``."""
        self._entries[key] = [v.as_dict() for v in violations]
        self._dirty = True

    def save(self) -> None:
        """Persist atomically; silently skips unwritable locations."""
        if not self._dirty:
            return
        payload = {"format": CACHE_FORMAT, "entries": self._entries}
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            temp = self.path.with_name(self.path.name + ".tmp")
            temp.write_text(
                json.dumps(payload, sort_keys=True), "utf-8"
            )
            os.replace(temp, self.path)
            self._dirty = False
        except OSError:
            # A read-only checkout must not break linting.
            pass

    def __len__(self) -> int:
        return len(self._entries)
