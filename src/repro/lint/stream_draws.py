"""Static extraction of RNG stream draws and registry matching.

Both the per-file ``fault-stream-misuse`` rule and the whole-program
``stream-registry`` rule reason about the same syntactic event: *a
named draw from a* :class:`~repro.sim.streams.RandomStreams` *family*
(``streams.get("page-choice")``, ``self._streams.bernoulli(
"fault-msg-loss", p)``, ...).  This module is their shared foundation:
it extracts every draw from an AST together with whatever is provable
about the stream-name argument, and it implements the matching
semantics for registry *patterns* — registered names may contain
``{placeholder}`` segments (``"disk-service-{node}"``) that stand for
any non-empty text, mirroring the f-strings that draw them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

__all__ = [
    "STREAM_DRAW_METHODS",
    "StreamDraw",
    "compile_patterns",
    "draw_is_registered",
    "iter_stream_draws",
    "pattern_regex",
]

#: RandomStreams methods whose first argument is a stream name.
STREAM_DRAW_METHODS = frozenset(
    {
        "bernoulli",
        "exponential",
        "get",
        "sample_without_replacement",
        "uniform",
        "uniform_int",
    }
)


@dataclass(frozen=True)
class StreamDraw:
    """One stream-draw call site with what is provable about its name.

    Exactly one of three shapes:

    * ``name`` set — the argument is a string literal;
    * ``prefix`` set — an f-string whose head is a string literal (the
      tail is dynamic);
    * neither — the name is fully dynamic (a variable, a call, an
      f-string opening with an interpolation) and nothing is provable.
    """

    line: int
    col: int
    name: Optional[str] = None
    prefix: Optional[str] = None

    @property
    def dynamic(self) -> bool:
        """Whether nothing at all is provable about the name."""
        return self.name is None and self.prefix is None

    def provably_prefixed(self, head: str) -> bool:
        """Whether the drawn name provably starts with ``head``."""
        if self.name is not None:
            return self.name.startswith(head)
        if self.prefix is not None:
            return self.prefix.startswith(head)
        return False


def _is_streams_ref(node: ast.AST) -> bool:
    # ``streams.get(...)`` / ``self.streams.get(...)`` /
    # ``self._streams.bernoulli(...)``.
    if isinstance(node, ast.Name):
        return "streams" in node.id
    if isinstance(node, ast.Attribute):
        return "streams" in node.attr
    return False


def _draw_from_call(node: ast.Call) -> StreamDraw:
    line = node.lineno
    col = node.col_offset + 1
    if not node.args:
        return StreamDraw(line=line, col=col)
    name_arg = node.args[0]
    if isinstance(name_arg, ast.Constant):
        if isinstance(name_arg.value, str):
            return StreamDraw(line=line, col=col, name=name_arg.value)
        return StreamDraw(line=line, col=col)
    if isinstance(name_arg, ast.JoinedStr) and name_arg.values:
        head = name_arg.values[0]
        if isinstance(head, ast.Constant) and isinstance(
            head.value, str
        ):
            return StreamDraw(line=line, col=col, prefix=head.value)
    return StreamDraw(line=line, col=col)


def iter_stream_draws(tree: ast.AST) -> Iterator[StreamDraw]:
    """Every stream-draw call site in ``tree``."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in STREAM_DRAW_METHODS
            and _is_streams_ref(node.func.value)
        ):
            yield _draw_from_call(node)


# ----------------------------------------------------------------------
# Registry-pattern matching
# ----------------------------------------------------------------------

_PLACEHOLDER_RE = re.compile(r"\{[^{}]*\}")


def pattern_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a registry pattern to a full-match regex.

    Each ``{placeholder}`` matches any non-empty text; everything else
    is literal.
    """
    parts = []
    last = 0
    for match in _PLACEHOLDER_RE.finditer(pattern):
        parts.append(re.escape(pattern[last : match.start()]))
        parts.append(".+")
        last = match.end()
    parts.append(re.escape(pattern[last:]))
    return re.compile("".join(parts))


def literal_prefix(pattern: str) -> str:
    """The constant head of a pattern (up to its first placeholder)."""
    match = _PLACEHOLDER_RE.search(pattern)
    return pattern if match is None else pattern[: match.start()]


@dataclass(frozen=True)
class CompiledPattern:
    """One registry entry ready for matching."""

    pattern: str
    regex: "re.Pattern[str]"
    prefix: str
    has_placeholder: bool


def compile_patterns(
    patterns: Sequence[str],
) -> list[CompiledPattern]:
    """Compile registry entries once for a batch of draws."""
    return [
        CompiledPattern(
            pattern=p,
            regex=pattern_regex(p),
            prefix=literal_prefix(p),
            has_placeholder=_PLACEHOLDER_RE.search(p) is not None,
        )
        for p in patterns
    ]


def draw_is_registered(
    draw: StreamDraw, compiled: Sequence[CompiledPattern]
) -> bool:
    """Whether a draw resolves to some registered stream name.

    Exact names must full-match a pattern.  F-string draws are checked
    by prefix compatibility: the constant head must be consistent with
    some entry's literal prefix (one a prefix of the other), and the
    entry must either carry a placeholder or extend beyond the head —
    a typo in the constant head therefore always fails.  Fully dynamic
    draws are unprovable either way and never reported here.
    """
    if draw.name is not None:
        return any(c.regex.fullmatch(draw.name) for c in compiled)
    if draw.prefix is not None:
        head = draw.prefix
        for c in compiled:
            if not (c.has_placeholder or len(c.pattern) > len(head)):
                continue
            if head.startswith(c.prefix) or c.prefix.startswith(head):
                return True
        return False
    return True  # dynamic: nothing provable
