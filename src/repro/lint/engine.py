"""File discovery and the lint driver.

``lint_paths`` walks the given files/directories, lints every ``*.py``
(through the content-hash cache when one is supplied, fanning out to a
process pool when ``jobs > 1``), runs the whole-program project rules
over the full tree, applies inline suppressions and the baseline, and
returns a :class:`LintReport` with stable ordering — the same tree
always produces byte-identical output, which is itself a determinism
property the reporters rely on.

The two passes cache differently: per-file findings are a pure
function of ``(file bytes, file-rule set)`` and go through the
:class:`~repro.lint.cache.LintCache`; project findings depend on the
whole tree and are recomputed every run (building the model is one
parse per file — cheap next to the per-file rule sweep it replaces on
a warm cache).
"""

from __future__ import annotations

import ast
import concurrent.futures
import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.cache import LintCache
from repro.lint.registry import (
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    rules_signature,
)
from repro.lint.suppress import apply_suppressions, parse_suppressions
from repro.lint.violations import Violation

__all__ = [
    "LintReport",
    "discover_files",
    "lint_file",
    "lint_paths",
    "resolve_lint_jobs",
]

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {
        ".git",
        ".hypothesis",
        ".mypy_cache",
        ".pytest_cache",
        ".ruff_cache",
        ".venv",
        "__pycache__",
        "node_modules",
    }
)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files: int = 0
    cache_hits: int = 0
    #: Baseline entries that waived fewer findings than they claim.
    stale_baseline: List[BaselineEntry] = field(default_factory=list)

    @property
    def active(self) -> List[Violation]:
        """Live findings — neither suppressed nor baselined."""
        return [v for v in self.violations if v.counts]

    @property
    def failures(self) -> List[Violation]:
        """Live *error*-severity findings — the ones that fail the run
        (warnings and infos are reported without gating)."""
        return [v for v in self.active if v.severity == "error"]

    @property
    def suppressed(self) -> List[Violation]:
        """Findings waived by inline comments."""
        return [v for v in self.violations if v.suppressed]

    @property
    def baselined(self) -> List[Violation]:
        """Findings inventoried by the baseline file."""
        return [v for v in self.violations if v.baselined]

    @property
    def ok(self) -> bool:
        """Clean: no live errors and no stale baseline entries."""
        return not self.failures and not self.stale_baseline


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files.

    Missing paths raise ``FileNotFoundError`` — a mistyped directory
    must not silently lint nothing and report success.
    """
    seen = set()
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_file():
            candidates: Iterable[Path] = [path]
        else:
            candidates = (
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not _SKIP_DIRS.intersection(candidate.parts)
            )
        for candidate in candidates:
            marker = candidate.resolve()
            if marker not in seen:
                seen.add(marker)
                files.append(candidate)
    files.sort(key=lambda f: f.as_posix())
    return files


def resolve_lint_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit > ``$REPRO_LINT_JOBS`` > 1 (serial).

    Unlike the sweep executor, the default is serial — linting is
    fast and the pool only pays off on a cold cache over the full
    tree, so parallelism is opt-in (``--jobs`` / the env knob).
    """
    if jobs is None:
        env = os.environ.get("REPRO_LINT_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    "REPRO_LINT_JOBS must be a positive integer, "
                    f"got {env!r}"
                ) from None
        else:
            jobs = 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def lint_source(
    source: str, path: str, rules: Optional[List[Rule]] = None
) -> List[Violation]:
    """Lint already-loaded source text (fixture/test entry point)."""
    if rules is None:
        rules = all_rules()
    posix_path = Path(path).as_posix()
    try:
        tree = ast.parse(source, filename=posix_path)
    except SyntaxError as error:
        return [
            Violation(
                rule_id="parse-error",
                path=posix_path,
                line=error.lineno or 1,
                col=(error.offset or 1),
                message=f"file does not parse: {error.msg}",
            )
        ]
    violations: List[Violation] = []
    for rule in rules:
        if rule.applies_to(posix_path):
            violations.extend(rule.check(tree, source, posix_path))
    violations = apply_suppressions(violations, source)
    violations.sort(key=lambda v: v.sort_key)
    return violations


def lint_file(
    path: Path,
    rules: Optional[List[Rule]] = None,
    cache: Optional[LintCache] = None,
    signature: Optional[str] = None,
) -> List[Violation]:
    """Lint one file with the file rules, consulting ``cache``."""
    if rules is None:
        rules = all_rules()
    path = Path(path)
    data = path.read_bytes()
    posix_path = path.as_posix()
    if cache is not None:
        if signature is None:
            signature = rules_signature(rules)
        key = LintCache.key(
            hashlib.sha256(data).hexdigest(), signature
        )
        cached = cache.get(key)
        if cached is not None:
            return [v.with_path(posix_path) for v in cached]
    violations = lint_source(
        data.decode("utf-8", errors="replace"), posix_path, rules
    )
    if cache is not None:
        cache.put(key, violations)
    return violations


def _lint_worker(
    path_str: str, rules: List[Rule]
) -> List[Violation]:
    """Pool worker: lint one file with the given file rules.

    The file is read in the worker — linting is a pure function of
    the bytes, so the parent only needs them for the cache key.  Rule
    instances are stateless value objects and travel by pickle.
    """
    path = Path(path_str)
    source = path.read_bytes().decode("utf-8", errors="replace")
    return lint_source(source, path_str, rules)


def _file_pass(
    files: Sequence[Path],
    rules: List[Rule],
    cache: Optional[LintCache],
    jobs: int,
    report: LintReport,
) -> None:
    """Per-file rules over ``files``, appending into ``report``."""
    signature = rules_signature(rules)
    missing: List[Tuple[str, Optional[str]]] = []  # (path, cache key)
    for path in files:
        posix_path = path.as_posix()
        report.files += 1
        key = None
        if cache is not None:
            data = path.read_bytes()
            key = LintCache.key(
                hashlib.sha256(data).hexdigest(), signature
            )
            cached = cache.get(key)
            if cached is not None:
                report.cache_hits += 1
                report.violations.extend(
                    v.with_path(posix_path) for v in cached
                )
                continue
        missing.append((posix_path, key))

    if jobs > 1 and len(missing) > 1:
        workers = min(jobs, len(missing))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers
        ) as pool:
            futures = [
                pool.submit(_lint_worker, posix_path, rules)
                for posix_path, _key in missing
            ]
            results = [future.result() for future in futures]
    else:
        results = [
            _lint_worker(posix_path, rules)
            for posix_path, _key in missing
        ]
    for (posix_path, key), violations in zip(missing, results):
        if cache is not None and key is not None:
            cache.put(key, violations)
        report.violations.extend(violations)


def _project_pass(
    files: Sequence[Path],
    project_rules: Sequence[ProjectRule],
    report: LintReport,
) -> None:
    """Whole-program rules over the full tree, appending findings."""
    from repro.lint.project import ProjectModel

    model = ProjectModel.build(files)
    findings: List[Violation] = []
    for rule in project_rules:
        findings.extend(rule.check_project(model))
    # Inline suppressions apply to project findings too; sources come
    # from the already-parsed model (unparsable files have no project
    # findings to suppress).
    suppression_maps: Dict[str, Dict[int, set]] = {}
    for violation in findings:
        module = model.modules_by_path.get(violation.path)
        if module is None:
            report.violations.append(violation)
            continue
        waivers = suppression_maps.get(violation.path)
        if waivers is None:
            waivers = parse_suppressions(module.source)
            suppression_maps[violation.path] = waivers
        if violation.rule_id in waivers.get(violation.line, ()):
            report.violations.append(violation.as_suppressed())
        else:
            report.violations.append(violation)


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[List[Rule]] = None,
    cache: Optional[LintCache] = None,
    project_rules: Optional[Sequence[ProjectRule]] = None,
    baseline: Optional[Baseline] = None,
    jobs: Optional[int] = None,
) -> LintReport:
    """Lint a set of files/directories into one report.

    ``rules=None`` runs every registered file rule; in that case
    ``project_rules=None`` also runs every registered project rule.
    With an explicit ``rules`` list, project rules default to none —
    callers selecting a subset (tests, ``--select``) pass both lists
    explicitly.  ``baseline`` marks inventoried findings; ``jobs``
    follows :func:`resolve_lint_jobs`.
    """
    if project_rules is None:
        project_rules = all_project_rules() if rules is None else ()
    if rules is None:
        rules = all_rules()
    jobs = resolve_lint_jobs(jobs)
    report = LintReport()
    files = discover_files(paths)
    _file_pass(files, rules, cache, jobs, report)
    if project_rules:
        _project_pass(files, project_rules, report)
    if cache is not None:
        cache.save()
    report.violations.sort(key=lambda v: v.sort_key)
    if baseline is not None:
        report.violations, report.stale_baseline = baseline.apply(
            report.violations
        )
    return report
