"""File discovery and the lint driver.

``lint_paths`` walks the given files/directories, lints every ``*.py``
(through the content-hash cache when one is supplied), applies inline
suppressions, and returns a :class:`LintReport` with stable ordering —
the same tree always produces byte-identical output, which is itself a
determinism property the reporters rely on.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint.cache import LintCache
from repro.lint.registry import Rule, all_rules, rules_signature
from repro.lint.suppress import apply_suppressions
from repro.lint.violations import Violation

__all__ = ["LintReport", "discover_files", "lint_file", "lint_paths"]

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {
        ".git",
        ".hypothesis",
        ".mypy_cache",
        ".pytest_cache",
        ".ruff_cache",
        ".venv",
        "__pycache__",
        "node_modules",
    }
)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files: int = 0
    cache_hits: int = 0

    @property
    def active(self) -> List[Violation]:
        """Unsuppressed violations — the ones that fail the run."""
        return [v for v in self.violations if not v.suppressed]

    @property
    def suppressed(self) -> List[Violation]:
        """Findings waived by inline comments."""
        return [v for v in self.violations if v.suppressed]

    @property
    def ok(self) -> bool:
        """Whether the tree is clean (no unsuppressed violations)."""
        return not self.active


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files.

    Missing paths raise ``FileNotFoundError`` — a mistyped directory
    must not silently lint nothing and report success.
    """
    seen = set()
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_file():
            candidates: Iterable[Path] = [path]
        else:
            candidates = (
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not _SKIP_DIRS.intersection(candidate.parts)
            )
        for candidate in candidates:
            marker = candidate.resolve()
            if marker not in seen:
                seen.add(marker)
                files.append(candidate)
    files.sort(key=lambda f: f.as_posix())
    return files


def lint_source(
    source: str, path: str, rules: Optional[List[Rule]] = None
) -> List[Violation]:
    """Lint already-loaded source text (fixture/test entry point)."""
    if rules is None:
        rules = all_rules()
    posix_path = Path(path).as_posix()
    try:
        tree = ast.parse(source, filename=posix_path)
    except SyntaxError as error:
        return [
            Violation(
                rule_id="parse-error",
                path=posix_path,
                line=error.lineno or 1,
                col=(error.offset or 1),
                message=f"file does not parse: {error.msg}",
            )
        ]
    violations: List[Violation] = []
    for rule in rules:
        if rule.applies_to(posix_path):
            violations.extend(rule.check(tree, source, posix_path))
    violations = apply_suppressions(violations, source)
    violations.sort(key=lambda v: v.sort_key)
    return violations


def lint_file(
    path: Path,
    rules: Optional[List[Rule]] = None,
    cache: Optional[LintCache] = None,
    signature: Optional[str] = None,
) -> List[Violation]:
    """Lint one file, consulting ``cache`` when provided."""
    if rules is None:
        rules = all_rules()
    path = Path(path)
    data = path.read_bytes()
    posix_path = path.as_posix()
    if cache is not None:
        if signature is None:
            signature = rules_signature(rules)
        key = LintCache.key(
            hashlib.sha256(data).hexdigest(), signature
        )
        cached = cache.get(key)
        if cached is not None:
            return [v.with_path(posix_path) for v in cached]
    violations = lint_source(
        data.decode("utf-8", errors="replace"), posix_path, rules
    )
    if cache is not None:
        cache.put(key, violations)
    return violations


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[List[Rule]] = None,
    cache: Optional[LintCache] = None,
) -> LintReport:
    """Lint a set of files/directories into one report."""
    if rules is None:
        rules = all_rules()
    signature = rules_signature(rules)
    report = LintReport()
    for path in discover_files(paths):
        data = path.read_bytes()
        posix_path = path.as_posix()
        report.files += 1
        if cache is not None:
            key = LintCache.key(
                hashlib.sha256(data).hexdigest(), signature
            )
            cached = cache.get(key)
            if cached is not None:
                report.cache_hits += 1
                report.violations.extend(
                    v.with_path(posix_path) for v in cached
                )
                continue
        violations = lint_source(
            data.decode("utf-8", errors="replace"),
            posix_path,
            rules,
        )
        if cache is not None:
            cache.put(key, violations)
        report.violations.extend(violations)
    if cache is not None:
        cache.save()
    report.violations.sort(key=lambda v: v.sort_key)
    return report
