"""Inline suppression comments.

A finding is silenced by putting::

    # simlint: ignore[rule-id]
    # simlint: ignore[rule-a, rule-b]

on the *flagged line* (the line the violation is anchored to).  The
bracket list names the rule ids being waived; a bare ``ignore`` without
a bracket list is deliberately not supported — blanket waivers hide the
next, different bug on the same line.

Suppressed findings still appear in JSON output (``"suppressed":
true``) so the waiver inventory stays auditable.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set

from repro.lint.violations import Violation

__all__ = ["apply_suppressions", "parse_suppressions"]

_IGNORE_RE = re.compile(
    r"#\s*simlint:\s*ignore\[([A-Za-z0-9_,\- ]+)\]"
)


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map of 1-based line number -> rule ids waived on that line."""
    suppressions: Dict[int, Set[str]] = {}
    for line_number, line in enumerate(source.splitlines(), start=1):
        if "simlint" not in line:
            continue
        match = _IGNORE_RE.search(line)
        if match is None:
            continue
        rule_ids = {
            fragment.strip()
            for fragment in match.group(1).split(",")
            if fragment.strip()
        }
        if rule_ids:
            suppressions[line_number] = rule_ids
    return suppressions


def apply_suppressions(
    violations: List[Violation], source: str
) -> List[Violation]:
    """Mark violations whose line waives their rule as suppressed."""
    if not violations:
        return violations
    suppressions = parse_suppressions(source)
    if not suppressions:
        return violations
    result: List[Violation] = []
    for violation in violations:
        waived = suppressions.get(violation.line, ())
        if violation.rule_id in waived:
            result.append(violation.as_suppressed())
        else:
            result.append(violation)
    return result
