"""The shipped simlint rule set.

Each rule targets a bug class this codebase has actually hit (or nearly
hit) while keeping figure replications seed-stable:

``id-keyed-container``
    ``d[id(obj)]`` — CPython reuses ids after garbage collection, so an
    id-keyed entry can be claimed by an unrelated object (the PR 2
    ``Timeout`` bug).  Key containers by the object itself.
``unseeded-global-random``
    Module-level ``random.*`` / ``numpy.random.*`` draws inside the
    simulator share one ambient stream: any new call site perturbs
    every stream after it and breaks common-random-numbers runs.  All
    randomness must come from injected ``random.Random`` streams.
``wall-clock``
    ``time.time()`` / ``datetime.now()`` readings leak host timing into
    a simulation whose only clock is ``env.now``.
``unordered-set-iteration``
    Iterating a ``set`` where schedules, grants, or victims are decided
    makes the outcome hash-order-dependent; wrap in ``sorted()`` with
    an explicit key.
``unordered-dict-iteration``
    Iterating a dict (or its ``items()``/``keys()``/``values()`` views)
    where schedules, grants, or victims are decided couples the outcome
    to insertion history rather than a canonical order — and key-view
    set algebra (``d.keys() - e``) is outright hash-ordered.  Warning
    severity: insertion order *is* deterministic, so intended uses
    carry a waiver naming that intent instead of a sort.
``float-time-equality``
    ``==`` / ``!=`` on simulated-time floats is only sound when both
    sides are copies of the same scheduled value; anywhere else it
    silently depends on floating-point drift.  Flagged so every exact
    comparison is either restructured or carries a justifying
    suppression.
``process-protocol``
    Kernel misuse inside generator process bodies: yielding a value
    that is obviously not a :class:`~repro.sim.kernel.Waitable`
    (a bare ``yield``, a literal) or calling ``env.run()`` reentrantly
    from inside a process.
``fault-stream-misuse``
    The fault subsystem's no-perturbation guarantee rests on drawing
    exclusively from dedicated ``fault-*`` random streams: a fault
    module that touches a shared stream (``page-choice``,
    ``restart-delay``, ...) silently changes every failure-free draw
    sequence after it and breaks the bit-identical-without-faults
    property.  Flags stream draws inside ``repro/faults/`` whose
    stream name does not start with ``fault-``.
``resident-terminal-process``
    Spawning one kernel ``Process`` per terminal — ``env.process``
    inside a loop over the terminal population, or a process named
    ``terminal-*`` — resurrects the resident-terminal design whose
    O(terminals) generators capped the simulated machine size.
    Arrivals must flow through
    :class:`~repro.core.workload.AggregatedTerminalSource`; the
    verification fallback in the transaction manager carries an
    explicit waiver.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.lint.registry import Rule, register
from repro.lint.stream_draws import iter_stream_draws
from repro.lint.violations import Violation

__all__ = [
    "FaultStreamMisuseRule",
    "FloatTimeEqualityRule",
    "IdKeyedContainerRule",
    "ProcessProtocolRule",
    "ResidentTerminalProcessRule",
    "UnorderedDictIterationRule",
    "UnorderedSetIterationRule",
    "UnseededGlobalRandomRule",
    "WallClockRule",
]


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


@register
class IdKeyedContainerRule(Rule):
    """Containers keyed by ``id(...)``."""

    rule_id = "id-keyed-container"
    summary = (
        "container keyed by id(obj): ids are recycled after GC, so a "
        "stale entry can be claimed by an unrelated object; key by the "
        "object itself (identity hash) or attach the state to it"
    )
    version = 1

    _KEYED_METHODS = frozenset(
        {"get", "pop", "setdefault", "add", "discard", "remove"}
    )

    def check(self, tree, source, path):
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Subscript) and _is_id_call(
                node.slice
            ):
                violations.append(self.violation(path, node))
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._KEYED_METHODS
                    and node.args
                    and _is_id_call(node.args[0])
                ):
                    violations.append(self.violation(path, node))
            elif isinstance(node, ast.Compare):
                if any(
                    isinstance(op, (ast.In, ast.NotIn))
                    for op in node.ops
                ) and _is_id_call(node.left):
                    violations.append(self.violation(path, node))
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None and _is_id_call(key):
                        violations.append(self.violation(path, key))
        return violations


@register
class UnseededGlobalRandomRule(Rule):
    """Module-level RNG draws inside the simulator packages."""

    rule_id = "unseeded-global-random"
    summary = (
        "module-level RNG call shares the ambient global stream; draw "
        "from an injected random.Random stream instead (see "
        "repro.sim.streams)"
    )
    version = 1
    include = ("repro/sim/", "repro/core/", "repro/cc/")

    _RNG_FUNCS = frozenset(
        {
            "betavariate",
            "choice",
            "choices",
            "expovariate",
            "gammavariate",
            "gauss",
            "getrandbits",
            "lognormvariate",
            "normalvariate",
            "paretovariate",
            "randbytes",
            "randint",
            "random",
            "randrange",
            "sample",
            "seed",
            "shuffle",
            "triangular",
            "uniform",
            "vonmisesvariate",
            "weibullvariate",
        }
    )

    def check(self, tree, source, path):
        violations: List[Violation] = []
        bare_imports: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name in self._RNG_FUNCS:
                            bare_imports.add(
                                alias.asname or alias.name
                            )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                if (
                    func.attr in self._RNG_FUNCS
                    and self._is_global_rng_module(func.value)
                ):
                    violations.append(self.violation(path, node))
            elif isinstance(func, ast.Name):
                if func.id in bare_imports:
                    violations.append(self.violation(path, node))
        return violations

    @staticmethod
    def _is_global_rng_module(node: ast.AST) -> bool:
        # ``random.<fn>(...)`` — the stdlib module, not a Random
        # instance (instances are never named ``random`` here).
        if isinstance(node, ast.Name):
            return node.id == "random"
        # ``numpy.random.<fn>`` / ``np.random.<fn>``.
        if isinstance(node, ast.Attribute) and node.attr == "random":
            value = node.value
            return isinstance(value, ast.Name) and value.id in (
                "numpy",
                "np",
            )
        return False


@register
class WallClockRule(Rule):
    """Host-clock reads outside CLI/benchmark timing code."""

    rule_id = "wall-clock"
    summary = (
        "wall-clock read inside simulation code: the only clock is "
        "env.now; host time makes runs irreproducible"
    )
    version = 1
    # CLI progress timing and benchmark harnesses legitimately measure
    # wall time; everything else simulates it.
    exclude = ("experiments/", "benchmarks/")

    _TIME_FUNCS = frozenset(
        {
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
            "process_time",
            "process_time_ns",
            "time",
            "time_ns",
        }
    )
    _DATETIME_FUNCS = frozenset({"now", "today", "utcnow"})

    def check(self, tree, source, path):
        violations: List[Violation] = []
        bare_imports: Set[str] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == "time"
            ):
                for alias in node.names:
                    if alias.name in self._TIME_FUNCS:
                        bare_imports.add(alias.asname or alias.name)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                value = func.value
                if (
                    func.attr in self._TIME_FUNCS
                    and isinstance(value, ast.Name)
                    and value.id == "time"
                ):
                    violations.append(self.violation(path, node))
                elif (
                    func.attr in self._DATETIME_FUNCS
                    and self._is_datetime_ref(value)
                ):
                    violations.append(self.violation(path, node))
            elif isinstance(func, ast.Name):
                if func.id in bare_imports:
                    violations.append(self.violation(path, node))
        return violations

    @staticmethod
    def _is_datetime_ref(node: ast.AST) -> bool:
        # ``datetime.now`` / ``date.today`` / ``datetime.datetime.now``.
        if isinstance(node, ast.Name):
            return node.id in ("datetime", "date")
        if isinstance(node, ast.Attribute):
            return node.attr in ("datetime", "date")
        return False


class _SetlikeTracker(ast.NodeVisitor):
    """Per-function map of local names bound to set-valued expressions."""

    def __init__(self) -> None:
        self.setlike_names: Set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_setlike(node.value, self.setlike_names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.setlike_names.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and _is_setlike(
            node.value, self.setlike_names
        ):
            if isinstance(node.target, ast.Name):
                self.setlike_names.add(node.target.id)
        self.generic_visit(node)

    # Name resolution stays within one function body.
    def visit_FunctionDef(self, node) -> None:  # pragma: no cover
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef


def _is_setlike(
    node: ast.AST, local_names: Optional[Set[str]] = None
) -> bool:
    """Whether ``node`` is syntactically a ``set`` expression.

    Recognizes set displays/comprehensions, ``set(...)`` /
    ``frozenset(...)`` calls, ``d.get(k, set())`` / ``d.pop(k, set())``
    (the set-valued default makes the result a set), and — when
    ``local_names`` is supplied — local variables previously bound to
    one of the above.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in (
            "set",
            "frozenset",
        ):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("get", "pop")
            and any(_is_setlike(arg) for arg in node.args)
        ):
            return True
    if (
        local_names is not None
        and isinstance(node, ast.Name)
        and node.id in local_names
    ):
        return True
    return False


@register
class UnorderedSetIterationRule(Rule):
    """Set iteration where schedules and victims are decided."""

    rule_id = "unordered-set-iteration"
    summary = (
        "iteration order of a set is hash-dependent; wrap in sorted() "
        "with an explicit key so grant/victim order is deterministic"
    )
    version = 1
    include = ("repro/cc/", "repro/sim/", "repro/core/")

    def check(self, tree, source, path):
        violations: List[Violation] = []
        # One tracker per function scope (module level gets its own).
        scopes: List[ast.AST] = [tree]
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                scopes.append(node)
        for scope in scopes:
            tracker = _SetlikeTracker()
            for statement in scope.body:
                tracker.visit(statement)
            names = tracker.setlike_names
            for node in self._iter_scope(scope):
                iterables: List[ast.AST] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iterables.append(node.iter)
                elif isinstance(
                    node,
                    (
                        ast.ListComp,
                        ast.SetComp,
                        ast.DictComp,
                        ast.GeneratorExp,
                    ),
                ):
                    iterables.extend(
                        generator.iter
                        for generator in node.generators
                    )
                for iterable in iterables:
                    if _is_setlike(iterable, names):
                        violations.append(
                            self.violation(path, iterable)
                        )
        return violations

    @staticmethod
    def _iter_scope(scope: ast.AST):
        """Nodes of ``scope`` excluding nested function bodies."""
        body = scope.body
        stack = list(body)
        while stack:
            node = stack.pop()
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ) and node is not scope:
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))


#: Dict view accessors whose iteration order is the insertion history.
_DICT_VIEW_METHODS = frozenset({"items", "keys", "values"})

#: Builtins whose result cannot depend on the iteration order of a
#: comprehension argument; a dict iterated inside one is harmless.
_ORDER_FREE_CONSUMERS = frozenset(
    {"all", "any", "sum", "min", "max", "len", "set", "frozenset",
     "sorted"}
)


class _DictlikeTracker(ast.NodeVisitor):
    """Per-function map of local names bound to dict-valued expressions."""

    def __init__(self) -> None:
        self.dictlike_names: Set[str] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_dictlike(node.value, self.dictlike_names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.dictlike_names.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and _is_dictlike(
            node.value, self.dictlike_names
        ):
            if isinstance(node.target, ast.Name):
                self.dictlike_names.add(node.target.id)
        self.generic_visit(node)

    # Name resolution stays within one function body.
    def visit_FunctionDef(self, node) -> None:  # pragma: no cover
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef


def _is_dict_view_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _DICT_VIEW_METHODS
        and not node.args
        and not node.keywords
    )


def _is_dictlike(
    node: ast.AST, local_names: Optional[Set[str]] = None
) -> bool:
    """Whether ``node`` is syntactically a ``dict`` expression.

    Recognizes dict displays/comprehensions, ``dict(...)`` /
    ``defaultdict(...)`` / ``Counter(...)`` / ``OrderedDict(...)``
    calls, ``d.get(k, {})`` / ``d.pop(k, {})`` (the dict-valued default
    makes the result a dict), and — when ``local_names`` is supplied —
    local variables previously bound to one of the above.
    """
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in (
            "dict",
            "defaultdict",
            "Counter",
            "OrderedDict",
        ):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("get", "pop")
            and any(_is_dictlike(arg) for arg in node.args)
        ):
            return True
    if (
        local_names is not None
        and isinstance(node, ast.Name)
        and node.id in local_names
    ):
        return True
    return False


@register
class UnorderedDictIterationRule(Rule):
    """Dict iteration where schedules and victims are decided."""

    rule_id = "unordered-dict-iteration"
    summary = (
        "iteration order of a dict is its insertion history, not a "
        "canonical order; where grants, victims, or wakeups are "
        "decided this couples the outcome to arrival order — iterate "
        "sorted(...) with an explicit key, or waive with the reason "
        "the insertion order is the intended one"
    )
    severity = "warning"
    version = 1
    include = ("repro/cc/", "repro/sim/", "repro/core/")

    def check(self, tree, source, path):
        violations: List[Violation] = []
        exempt = self._order_free_comprehensions(tree)
        scopes: List[ast.AST] = [tree]
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                scopes.append(node)
        for scope in scopes:
            tracker = _DictlikeTracker()
            for statement in scope.body:
                tracker.visit(statement)
            names = tracker.dictlike_names
            for node in UnorderedSetIterationRule._iter_scope(scope):
                iterables: List[ast.AST] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iterables.append(node.iter)
                elif isinstance(
                    node,
                    (
                        ast.ListComp,
                        ast.SetComp,
                        ast.DictComp,
                        ast.GeneratorExp,
                    ),
                ) and node not in exempt:
                    iterables.extend(
                        generator.iter
                        for generator in node.generators
                    )
                for iterable in iterables:
                    if self._is_dict_ordered(iterable, names):
                        violations.append(
                            self.violation(path, iterable)
                        )
        return violations

    @staticmethod
    def _is_dict_ordered(
        node: ast.AST, names: Set[str]
    ) -> bool:
        """Iterables whose order is a dict's insertion history (or, for
        key-view set algebra, hash order)."""
        if _is_dict_view_call(node) or _is_dictlike(node, names):
            return True
        # d.keys() | e, d.keys() - e, ...: KeysView set algebra
        # produces a plain *unordered* set.
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return _is_dict_view_call(node.left) or _is_dict_view_call(
                node.right
            )
        return False

    @staticmethod
    def _order_free_comprehensions(tree: ast.AST) -> Set[ast.AST]:
        """Comprehensions consumed by order-insensitive builtins."""
        exempt: Set[ast.AST] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_FREE_CONSUMERS
                and len(node.args) == 1
                and isinstance(
                    node.args[0],
                    (ast.ListComp, ast.SetComp, ast.GeneratorExp),
                )
            ):
                exempt.add(node.args[0])
        return exempt


_TIME_ATTRS = frozenset({"now", "time"})


def _is_timeish(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        return node.attr in _TIME_ATTRS
    if isinstance(node, ast.Name):
        return node.id in _TIME_ATTRS
    return False


def _flow_scopes(tree: ast.AST) -> List[ast.AST]:
    """Module plus every nested function/class body (each a CFG scope)."""
    scopes: List[ast.AST] = [tree]
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            scopes.append(node)
    return scopes


@register
class FloatTimeEqualityRule(Rule):
    """Exact float comparison on simulated-time expressions.

    v2 is flow-sensitive: a comparison whose operands are *provably*
    pure copies of stored schedule times — timeish loads, or locals
    every one of whose reaching definitions is a clean copy chain
    (:class:`repro.lint.flow.taint.CleanTime`) — is discharged, because
    exact equality of copies of one scheduled value is sound.  Any
    operand the dataflow cannot prove clean (parameters, arithmetic,
    opaque bindings) still flags, exactly as v1 did syntactically.
    """

    rule_id = "float-time-equality"
    summary = (
        "== / != on simulated time is exact float comparison; it is "
        "only sound for copies of one scheduled value — the dataflow "
        "could not prove both operands are pure copies, so "
        "restructure, or suppress with a justification"
    )
    version = 2
    # Simulator sources only: tests legitimately assert exact clock
    # values the kernel guarantees.
    include = ("repro/sim/", "repro/core/", "repro/cc/")
    extra_hash_modules = (
        "repro.lint.flow.cfg",
        "repro.lint.flow.dataflow",
        "repro.lint.flow.taint",
    )

    def check(self, tree, source, path):
        candidates = [
            node
            for node in ast.walk(tree)
            if isinstance(node, ast.Compare)
            and self._offending_pairs(node)
        ]
        if not candidates:
            return []
        from repro.lint.flow.dataflow import FunctionFlow
        from repro.lint.flow.taint import CleanTime

        violations: List[Violation] = []
        remaining = candidates
        for scope in _flow_scopes(tree):
            if not remaining:
                break
            flow = FunctionFlow(scope)
            clean = CleanTime(flow)
            unowned = []
            for compare in remaining:
                index = flow.owner_of(compare)
                if index is None:
                    unowned.append(compare)
                elif not self._discharged(compare, clean, index):
                    violations.append(self.violation(path, compare))
            remaining = unowned
        # Comparisons no scope's CFG owns (decorator/default oddities)
        # flag syntactically, as v1 did.
        violations.extend(
            self.violation(path, compare) for compare in remaining
        )
        violations.sort(key=lambda v: (v.line, v.col))
        return violations

    @staticmethod
    def _offending_pairs(node: ast.Compare) -> List[tuple]:
        operands = [node.left, *node.comparators]
        pairs = []
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if _is_timeish(left) or _is_timeish(right):
                pairs.append((left, right))
        return pairs

    def _discharged(self, compare, clean, index) -> bool:
        return all(
            clean.clean(left, index) and clean.clean(right, index)
            for left, right in self._offending_pairs(compare)
        )


#: Environment factory/combinator methods whose results are waitables;
#: a generator yielding one of these is treated as a sim-process body.
_ENV_WAITABLE_METHODS = frozenset(
    {"all_of", "any_of", "event", "process", "timeout"}
)


def _mentions_env(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in ("env", "_env"):
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in (
            "env",
            "_env",
        ):
            return True
    return False


def _is_env_waitable_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _ENV_WAITABLE_METHODS
        and _mentions_env(node.func.value)
    )


_OBVIOUS_NON_WAITABLE = (
    ast.Constant,
    ast.Tuple,
    ast.List,
    ast.Dict,
    ast.Set,
    ast.JoinedStr,
    ast.BinOp,
    ast.BoolOp,
    ast.Compare,
    ast.UnaryOp,
)


@register
class ProcessProtocolRule(Rule):
    """Kernel protocol misuse inside generator process bodies."""

    rule_id = "process-protocol"
    summary = (
        "sim-process protocol misuse: processes must yield Waitables "
        "(Event/Timeout/Process/AllOf/AnyOf) and never reenter "
        "env.run()"
    )
    version = 1

    def check(self, tree, source, path):
        violations: List[Violation] = []
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self._check_function(node, path, violations)
        return violations

    def _check_function(
        self,
        function: ast.AST,
        path: str,
        violations: List[Violation],
    ) -> None:
        yields = [
            node
            for node in self._function_body_walk(function)
            if isinstance(node, ast.Yield)
        ]
        if not yields:
            return
        is_process = any(
            y.value is not None and _is_env_waitable_call(y.value)
            for y in yields
        )
        # env.run() from inside *any* generator is reentrant dispatch:
        # the kernel is single-threaded and run() is not recursive.
        for node in self._function_body_walk(function):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "run"
                and _mentions_env(node.func.value)
            ):
                violations.append(
                    self.violation(
                        path,
                        node,
                        "env.run() called from inside a generator: "
                        "the kernel dispatch loop is not reentrant",
                    )
                )
        if not is_process:
            return
        for y in yields:
            if y.value is None:
                violations.append(
                    self.violation(
                        path,
                        y,
                        "bare yield in a sim process: processes must "
                        "yield a Waitable, and None is not one",
                    )
                )
            elif isinstance(y.value, _OBVIOUS_NON_WAITABLE):
                violations.append(
                    self.violation(
                        path,
                        y,
                        "sim process yields a non-Waitable literal; "
                        "the kernel will kill the process with "
                        "SimulationError",
                    )
                )

    @staticmethod
    def _function_body_walk(function: ast.AST):
        """Walk a function body without entering nested functions."""
        stack = list(function.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))


@register
class FaultStreamMisuseRule(Rule):
    """Fault-subsystem draws from non-``fault-`` random streams.

    Built on the same draw extraction
    (:func:`~repro.lint.stream_draws.iter_stream_draws`) as the
    whole-program ``stream-registry`` rule; this one adds the fault
    subsystem's stricter discipline — inside ``repro/faults/`` the
    drawn name must *provably* start with ``fault-``, so a dynamic or
    unprovable name is flagged here even though the registry rule
    (which checks spelling, not isolation) gives it the benefit of the
    doubt.
    """

    rule_id = "fault-stream-misuse"
    summary = (
        "fault code must draw only from dedicated fault-* streams: a "
        "draw from a shared stream perturbs every failure-free "
        "sequence after it and breaks bit-identical no-fault runs"
    )
    version = 2
    include = ("repro/faults/",)

    def check(self, tree, source, path):
        violations: List[Violation] = []
        for draw in iter_stream_draws(tree):
            if draw.provably_prefixed("fault-"):
                continue
            violations.append(
                Violation(
                    rule_id=self.rule_id,
                    path=path,
                    line=draw.line,
                    col=draw.col,
                    message=self.summary,
                    severity=self.severity,
                )
            )
        return violations


def _mentions_terminal(node: ast.AST) -> bool:
    """Whether any identifier under ``node`` names the terminal pop."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            if "terminal" in sub.id.lower():
                return True
        elif isinstance(sub, ast.Attribute):
            if "terminal" in sub.attr.lower():
                return True
    return False


def _static_name_prefix(node: ast.AST) -> str:
    """Leading literal text of a process ``name=`` argument, if any."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(
            head.value, str
        ):
            return head.value
    return ""


@register
class ResidentTerminalProcessRule(Rule):
    """Per-terminal kernel Process spawns outside the aggregated source.

    Two heuristics, either of which flags an ``env.process(...)`` call:
    the call sits inside a ``for`` loop whose target or iterable names
    the terminal population (``for terminal in range(num_terminals)``),
    or the spawned process is explicitly named ``terminal-*``.  The
    bodies of :class:`~repro.core.workload.AggregatedTerminalSource`
    and its watcher shim are exempt — that is the one sanctioned owner
    of per-terminal machinery.
    """

    rule_id = "resident-terminal-process"
    summary = (
        "one kernel Process per terminal: resident terminal loops put "
        "O(terminals) generators on the scheduler and cap the "
        "simulated machine size; route arrivals through "
        "AggregatedTerminalSource instead"
    )
    version = 1
    include = ("repro/",)

    #: The sanctioned aggregation implementation (and its subscription
    #: shim) is the one place allowed to own per-terminal machinery.
    _EXEMPT_CLASSES = frozenset(
        {"AggregatedTerminalSource", "_TerminalWatcher"}
    )

    @staticmethod
    def _is_process_call(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "process"
        )

    def check(self, tree, source, path):
        exempt: Set[ast.AST] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name in self._EXEMPT_CLASSES
            ):
                exempt.update(ast.walk(node))
        violations: List[Violation] = []
        flagged: Set[ast.AST] = set()

        def flag(call: ast.Call) -> None:
            if call in exempt or call in flagged:
                return
            flagged.add(call)
            violations.append(self.violation(path, call))

        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and (
                _mentions_terminal(node.target)
                or _mentions_terminal(node.iter)
            ):
                for stmt in node.body:
                    for sub in ast.walk(stmt):
                        if self._is_process_call(sub):
                            flag(sub)
            elif self._is_process_call(node):
                for keyword in node.keywords:
                    if keyword.arg != "name":
                        continue
                    prefix = _static_name_prefix(keyword.value)
                    if prefix.startswith("terminal-"):
                        flag(node)
        return violations
