"""Checked-in finding inventory (``lint/baseline.json``).

A baseline lets a rule ship before the tree is clean under it: every
*inventoried* finding is reported but does not fail the run, while any
finding **not** in the inventory still does.  Entries are deliberately
coarse — ``(path suffix, rule id, count, reason)`` rather than line
numbers — so unrelated edits that shift lines don't churn the file,
while the count still catches regressions: the baseline waives at most
``count`` findings of that rule in that file, and a *stale* entry (one
that matches fewer findings than it waives) fails the run too, so the
inventory can only shrink, never silently rot.

Format (JSON, sorted)::

    {
      "format": 1,
      "entries": [
        {"path": "repro/...", "rule": "...", "count": 1,
         "reason": "one line of justification"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.violations import Violation

__all__ = ["Baseline", "BaselineEntry", "default_baseline_path"]

#: Bump when the baseline file layout changes.
BASELINE_FORMAT = 1


def default_baseline_path() -> Path:
    """The committed baseline shipped next to the linter itself."""
    return Path(__file__).parent / "baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One waiver: up to ``count`` findings of ``rule`` in ``path``."""

    path: str  # POSIX path suffix, matched on component boundaries
    rule: str
    count: int
    reason: str
    #: Static-evidence lines (``"kind via qualname"``) attached by the
    #: race-reconciliation pass; empty for ordinary lint waivers and
    #: omitted from the serialized form when empty.
    evidence: Tuple[str, ...] = ()

    def matches(self, violation: Violation) -> bool:
        if violation.rule_id != self.rule:
            return False
        return self.matches_path(violation.path)

    def matches_path(self, path: str) -> bool:
        return path == self.path or path.endswith("/" + self.path)

    def as_dict(self) -> dict:
        item = {
            "path": self.path,
            "rule": self.rule,
            "count": self.count,
            "reason": self.reason,
        }
        if self.evidence:
            item["evidence"] = list(self.evidence)
        return item


class Baseline:
    """A loaded baseline, ready to be applied to a violation list."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()):
        self.entries = list(entries)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(())

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Parse a baseline file; malformed files raise ``ValueError``
        (a corrupt waiver inventory must never silently waive
        everything or nothing)."""
        try:
            raw = json.loads(Path(path).read_text("utf-8"))
        except OSError as error:
            raise ValueError(f"cannot read baseline {path}: {error}")
        except json.JSONDecodeError as error:
            raise ValueError(f"baseline {path} is not JSON: {error}")
        if (
            not isinstance(raw, dict)
            or raw.get("format") != BASELINE_FORMAT
            or not isinstance(raw.get("entries"), list)
        ):
            raise ValueError(
                f"baseline {path}: expected "
                f'{{"format": {BASELINE_FORMAT}, "entries": [...]}}'
            )
        entries = []
        for item in raw["entries"]:
            try:
                entries.append(
                    BaselineEntry(
                        path=str(item["path"]),
                        rule=str(item["rule"]),
                        count=int(item["count"]),
                        reason=str(item.get("reason", "")),
                        evidence=tuple(
                            str(line)
                            for line in item.get("evidence", ())
                        ),
                    )
                )
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(
                    f"baseline {path}: bad entry {item!r} ({error})"
                )
        return cls(entries)

    def apply(
        self, violations: Sequence[Violation]
    ) -> Tuple[List[Violation], List[BaselineEntry]]:
        """``(violations with matches marked baselined, stale entries)``.

        Findings are consumed in report order; each entry waives its
        first ``count`` unsuppressed matches.  Entries left with
        unconsumed budget are *stale* — the code got cleaner than the
        inventory claims — and are returned so the caller can fail the
        run until the baseline is trimmed.
        """
        remaining: Dict[int, int] = {
            index: entry.count
            for index, entry in enumerate(self.entries)
        }
        result: List[Violation] = []
        for violation in violations:
            if violation.suppressed:
                result.append(violation)
                continue
            waived = False
            for index, entry in enumerate(self.entries):
                if remaining[index] > 0 and entry.matches(violation):
                    remaining[index] -= 1
                    result.append(violation.as_baselined())
                    waived = True
                    break
            if not waived:
                result.append(violation)
        stale = [
            entry
            for index, entry in enumerate(self.entries)
            if remaining[index] > 0
        ]
        return result, stale

    @classmethod
    def from_violations(
        cls,
        violations: Sequence[Violation],
        reason: str = "inventoried by --update-baseline",
    ) -> "Baseline":
        """A baseline inventorying every live finding given."""
        counts: Dict[Tuple[str, str], int] = {}
        for violation in violations:
            if not violation.counts:
                continue
            key = (violation.path, violation.rule_id)
            counts[key] = counts.get(key, 0) + 1
        entries = [
            BaselineEntry(
                path=path, rule=rule, count=count, reason=reason
            )
            for (path, rule), count in sorted(counts.items())
        ]
        return cls(entries)

    def write(self, path: Path) -> None:
        """Serialize (sorted, trailing newline) for stable diffs."""
        payload = {
            "format": BASELINE_FORMAT,
            "entries": [
                entry.as_dict()
                for entry in sorted(
                    self.entries,
                    key=lambda e: (e.path, e.rule),
                )
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            "utf-8",
        )

    def __len__(self) -> int:
        return len(self.entries)
