"""Predictive transaction router (extension; ROADMAP item 2).

A modern database machine does not run one concurrency control
algorithm — it runs a *fleet* and picks per transaction.  Following
Pavlo et al.'s predictive-modeling line, the host node classifies each
incoming transaction by its declared access specification (read-only
flag, read-set size, access-skew class, distribution degree) and
dispatches it to the algorithm its class has historically done best
under, with all algorithms running concurrently over the same machine.

Three modules, three concerns:

``repro.router.features``
    Pure, deterministic feature extraction: transaction -> class key.
``repro.router.classifier``
    Per-class epsilon-greedy reward tracking over the candidate
    algorithms (commit latency x abort ratio), seeded from dedicated
    ``router-*`` streams so runs stay bit-identical.
``repro.router.dispatch``
    :class:`~repro.router.dispatch.RoutedCC` — a composite
    :class:`~repro.cc.base.CCAlgorithm` registered as ``"router"``
    that owns one child algorithm instance per candidate and delegates
    every per-transaction call to the child the classifier chose.
"""

from repro.router.classifier import RoutingPolicy
from repro.router.dispatch import RoutedCC, RoutedNodeManager
from repro.router.features import FeatureExtractor

__all__ = [
    "FeatureExtractor",
    "RoutedCC",
    "RoutedNodeManager",
    "RoutingPolicy",
]
