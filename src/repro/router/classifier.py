"""Deterministic online classifier: per-class algorithm selection.

One epsilon-greedy bandit per routing class, with the candidate
algorithms as arms.  The reward signal combines the two costs the
paper's experiments trade off — response time and wasted work:

    cost(arm) = mean_commit_latency * (1 + abort_penalty * abort_ratio)

Arms with fewer than ``min_samples`` completed transactions are filled
first, in candidate order, so every candidate gets a reward estimate
before exploitation starts.  After that, each decision flips an
exploration coin from the dedicated ``router-explore`` stream (epsilon
rate); exploration picks uniformly among the candidates via
``router-choice``, exploitation takes the lowest-cost arm with ties
broken by candidate order.

Determinism discipline (the same rules the workload streams follow):

* All randomness comes from the two registered ``router-*`` streams —
  routing never perturbs workload, resource, or fault sequences.
* Degenerate cases consume **no** draw: a single candidate, an
  undersampled arm, or ``epsilon == 0`` all decide without touching a
  stream, so configurations that cannot explore are bit-identical to
  ones where the streams were never created.
* Decisions happen in the coordinator's deterministic event order and
  depend only on previously *completed* transactions, so the sequence
  of (class, arm) decisions is identical across kernel scheduler,
  fastlane, and ``--jobs`` settings.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.sim.streams import RandomStreams

__all__ = ["RoutingPolicy"]


class _ArmStats:
    __slots__ = ("commits", "aborts", "latency_sum")

    def __init__(self):
        self.commits = 0
        self.aborts = 0
        self.latency_sum = 0.0

    @property
    def samples(self) -> int:
        return self.commits + self.aborts


class RoutingPolicy:
    """Epsilon-greedy per-class choice among candidate algorithms."""

    def __init__(
        self,
        candidates: Sequence[str],
        epsilon: float,
        min_samples: int,
        abort_penalty: float,
        streams: RandomStreams,
    ):
        self.candidates = tuple(candidates)
        self.epsilon = epsilon
        self.min_samples = min_samples
        self.abort_penalty = abort_penalty
        self._streams = streams
        #: class key -> arm name -> statistics.
        self._stats: Dict[str, Dict[str, _ArmStats]] = {}
        # Stream handles, created lazily on the first real coin flip so
        # a policy that never explores leaves the streams uncreated.
        self._explore_draw = None
        self._choice_stream = None

    def _arms(self, class_key: str) -> Dict[str, _ArmStats]:
        arms = self._stats.get(class_key)
        if arms is None:
            arms = {name: _ArmStats() for name in self.candidates}
            self._stats[class_key] = arms
        return arms

    def _cost(self, stats: _ArmStats) -> float:
        mean_latency = stats.latency_sum / stats.commits
        abort_ratio = stats.aborts / stats.samples
        return mean_latency * (1.0 + self.abort_penalty * abort_ratio)

    def choose(self, class_key: str) -> str:
        """Pick the algorithm for one transaction of ``class_key``."""
        if len(self.candidates) == 1:
            return self.candidates[0]
        arms = self._arms(class_key)
        for name in self.candidates:
            if arms[name].samples < self.min_samples:
                return name
        if self.epsilon > 0.0:
            if self._explore_draw is None:
                self._explore_draw = self._streams.get(
                    "router-explore", owner="router"
                ).random
            if self._explore_draw() < self.epsilon:
                if self._choice_stream is None:
                    self._choice_stream = self._streams.get(
                        "router-choice", owner="router"
                    )
                index = self._choice_stream.randrange(
                    len(self.candidates)
                )
                return self.candidates[index]
        best = self.candidates[0]
        # An arm can be all-aborts (commits == 0) after the fill-in
        # phase under faults; treat it as infinitely costly.
        best_cost = None
        for name in self.candidates:
            stats = arms[name]
            cost = (
                self._cost(stats) if stats.commits > 0 else float("inf")
            )
            if best_cost is None or cost < best_cost:
                best = name
                best_cost = cost
        return best

    def record_commit(
        self, class_key: str, arm: str, response_time: float
    ) -> None:
        """Feed one commit's response time back into the arm."""
        stats = self._arms(class_key).get(arm)
        if stats is not None:
            stats.commits += 1
            stats.latency_sum += response_time

    def record_abort(self, class_key: str, arm: str) -> None:
        """Feed one aborted attempt back into the arm."""
        stats = self._arms(class_key).get(arm)
        if stats is not None:
            stats.aborts += 1

    def snapshot(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Per-class, per-arm statistics (test/metrics support)."""
        return {
            class_key: {
                name: {
                    "commits": stats.commits,
                    "aborts": stats.aborts,
                    "latency_sum": stats.latency_sum,
                }
                for name, stats in arms.items()
            }
            for class_key, arms in self._stats.items()
        }
