"""Feature extraction: transaction access spec -> routing class key.

The router classifies on *declared* information only — the immutable
:class:`~repro.core.transaction.AccessSpec` fixed at origination — so
classification is a pure function of the transaction, computable at
BEGIN, identical on every attempt, and free of any runtime state that
could differ across kernel scheduler or parallelism settings.

Four binary features make up the class key:

* ``ro``/``upd`` — declared read-only (no access updates anything).
* ``hot``/``cold`` — whether at least ``hot_access_threshold`` of the
  accesses fall in each partition's hot set (the lowest
  ``hot_page_fraction`` of page indices — the Zipf option's
  low-index-hot convention, see ``access_skew``).
* ``dist``/``local`` — more than one cohort (distributed execution).
* ``large``/``small`` — read set at least ``large_read_set`` pages.

The key is their dash-joined concatenation, e.g. ``upd-hot-local-small``
for the classic hot-key single-partition update.
"""

from __future__ import annotations

from repro.core.config import RouterConfig
from repro.core.transaction import Transaction

__all__ = ["FeatureExtractor"]


class FeatureExtractor:
    """Deterministic transaction classifier over declared features."""

    def __init__(self, pages_per_partition: int, config: RouterConfig):
        self.config = config
        #: Page indices below this bound count as "hot" (at least one
        #: page is always hot, so tiny partitions still classify).
        self.hot_limit = max(
            1, int(config.hot_page_fraction * pages_per_partition)
        )

    def is_read_only(self, transaction: Transaction) -> bool:
        """Declared read-only: no access in the spec updates a page."""
        return transaction.spec.num_updates == 0

    def classify(self, transaction: Transaction) -> str:
        """The routing class key for ``transaction``."""
        spec = transaction.spec
        total = 0
        hot = 0
        for cohort in spec.cohorts:
            for access in cohort.accesses:
                total += 1
                if access.page.page < self.hot_limit:
                    hot += 1
        is_hot = (
            total > 0
            and hot / total >= self.config.hot_access_threshold
        )
        return "-".join(
            (
                "ro" if spec.num_updates == 0 else "upd",
                "hot" if is_hot else "cold",
                "dist" if len(spec.cohorts) > 1 else "local",
                (
                    "large"
                    if spec.num_reads >= self.config.large_read_set
                    else "small"
                ),
            )
        )
