"""The dispatch layer: a composite CC algorithm registered as "router".

:class:`RoutedCC` owns one *child* :class:`~repro.cc.base.CCAlgorithm`
instance per algorithm the configuration names (the read-only choice
plus every update candidate), and each node runs a
:class:`RoutedNodeManager` holding that node's child managers side by
side — different transaction classes genuinely run under different
algorithms concurrently on the same machine, each child seeing only the
traffic routed to it.

Routing happens exactly once per transaction, at its first BEGIN
(inside ``assign_timestamps``, the first per-transaction call the
transaction manager makes): the feature extractor computes the class
key, declared read-only transactions go to the configured snapshot
algorithm, update classes go to whatever the
:class:`~repro.router.classifier.RoutingPolicy` picks.  The decision is
stored on the transaction (``routed_class``/``routed_algorithm``) and
kept across restarts, so every attempt — and every late 2PC control
message, guarded by the attempt filter — resolves to the same child.

Isolation note: children share nothing.  Each child manager keeps its
own lock table / timestamp table / version store, so a 2PL-routed
transaction cannot conflict with an OPT-routed one through CC state.
They still share everything *physical* — CPUs, disks, the network, and
the terminals — which is the contention the router experiment measures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cc.base import (
    CCAlgorithm,
    CCContext,
    CCResponse,
    NodeCCManager,
)
from repro.core.config import RouterConfig, SimulationConfig
from repro.core.database import PageId
from repro.core.transaction import Cohort, Timestamp, Transaction
from repro.router.classifier import RoutingPolicy
from repro.router.features import FeatureExtractor
from repro.sim.streams import RandomStreams

__all__ = ["RoutedCC", "RoutedNodeManager"]


class RoutedNodeManager(NodeCCManager):
    """Per-node fan-out to the children's node managers."""

    def __init__(
        self,
        node_id: int,
        context: CCContext,
        children: Dict[str, NodeCCManager],
    ):
        super().__init__(node_id, context)
        self.children = children

    def _child(self, cohort: Cohort) -> NodeCCManager:
        algorithm = cohort.transaction.routed_algorithm
        assert algorithm is not None, "cohort reached a node unrouted"
        return self.children[algorithm]

    def register_cohort(self, cohort: Cohort) -> None:
        """Register with the child the transaction was routed to."""
        self._child(cohort).register_cohort(cohort)

    def read_request(self, cohort: Cohort, page: PageId) -> CCResponse:
        """Delegate to the routed child."""
        return self._child(cohort).read_request(cohort, page)

    def write_request(self, cohort: Cohort, page: PageId) -> CCResponse:
        """Delegate to the routed child."""
        return self._child(cohort).write_request(cohort, page)

    def prepare(self, cohort: Cohort) -> bool:
        """Delegate to the routed child."""
        return self._child(cohort).prepare(cohort)

    def commit(self, cohort: Cohort) -> List[PageId]:
        """Delegate to the routed child."""
        return self._child(cohort).commit(cohort)

    def abort(self, cohort: Cohort) -> None:
        """Delegate to the routed child (idempotent like them)."""
        self._child(cohort).abort(cohort)

    def crash_reset(self) -> None:
        """Fail-stop: every child's volatile state dies with the node."""
        for child in self.children.values():
            child.crash_reset()

    def waits_for_edges(
        self,
    ) -> List[Tuple[Transaction, Transaction]]:
        """Union of the children's edges (for 2PL's global Snoop)."""
        edges: List[Tuple[Transaction, Transaction]] = []
        for child in self.children.values():
            edges.extend(child.waits_for_edges())
        return edges


class RoutedCC(CCAlgorithm):
    """Composite algorithm dispatching per-transaction to children."""

    name = "router"

    def __init__(self):
        self._children: Dict[str, CCAlgorithm] = {}
        self._config: Optional[RouterConfig] = None
        self._features: Optional[FeatureExtractor] = None
        self._policy: Optional[RoutingPolicy] = None

    def bind(
        self, config: SimulationConfig, streams: RandomStreams
    ) -> None:
        """Build children and the classifier from the simulation config.

        Imports the registry lazily: the registry imports this module
        to register ``"router"``, so a top-level import back would
        cycle.
        """
        from repro.cc.registry import make_algorithm

        router_config = config.router
        if router_config is None:
            router_config = RouterConfig()
        names: List[str] = []
        for name in (
            router_config.read_only_algorithm,
            *router_config.update_candidates,
        ):
            if name not in names:
                names.append(name)
        self._children = {
            name: make_algorithm(name) for name in names
        }
        for child in self._children.values():
            child.bind(config, streams)
        self._config = router_config
        self._features = FeatureExtractor(
            config.database.pages_per_partition, router_config
        )
        self._policy = RoutingPolicy(
            router_config.update_candidates,
            router_config.epsilon,
            router_config.min_samples,
            router_config.abort_penalty,
            streams,
        )

    @property
    def policy(self) -> RoutingPolicy:
        """The live routing policy (experiment/test support)."""
        assert self._policy is not None, "router used before bind()"
        return self._policy

    @property
    def children(self) -> Dict[str, CCAlgorithm]:
        """The child algorithms, keyed by registry name."""
        return self._children

    def make_node_manager(
        self, node_id: int, context: CCContext
    ) -> RoutedNodeManager:
        """One routed manager wrapping every child's manager."""
        assert self._children, "router used before bind()"
        return RoutedNodeManager(
            node_id,
            context,
            {
                name: child.make_node_manager(node_id, context)
                for name, child in self._children.items()
            },
        )

    def _route(self, transaction: Transaction) -> None:
        assert self._features is not None, "router used before bind()"
        transaction.routed_class = self._features.classify(transaction)
        if self._features.is_read_only(transaction):
            transaction.routed_algorithm = (
                self._config.read_only_algorithm
            )
        else:
            transaction.routed_algorithm = self._policy.choose(
                transaction.routed_class
            )

    def assign_timestamps(
        self, transaction: Transaction, now: float
    ) -> None:
        """Route on first BEGIN, then apply the child's policy."""
        if transaction.routed_algorithm is None:
            self._route(transaction)
        self._children[transaction.routed_algorithm].assign_timestamps(
            transaction, now
        )

    def assign_commit_timestamp(
        self, transaction: Transaction, now: float
    ) -> Timestamp:
        """Delegate to the routed child."""
        child = self._children[transaction.routed_algorithm]
        return child.assign_commit_timestamp(transaction, now)

    def start_global(self, simulation) -> None:
        """Start every child's global machinery (e.g. 2PL's Snoop)."""
        for child in self._children.values():
            child.start_global(simulation)

    def on_commit(
        self, transaction: Transaction, response_time: float, now: float
    ) -> None:
        """Reward feedback for update classes (read-only is fixed)."""
        if (
            transaction.routed_class is not None
            and transaction.spec.num_updates > 0
        ):
            self._policy.record_commit(
                transaction.routed_class,
                transaction.routed_algorithm,
                response_time,
            )

    def on_abort(
        self, transaction: Transaction, reason: str, now: float
    ) -> None:
        """Abort feedback for update classes."""
        if (
            transaction.routed_class is not None
            and transaction.spec.num_updates > 0
        ):
            self._policy.record_abort(
                transaction.routed_class, transaction.routed_algorithm
            )
