"""Module entry point: ``python -m repro.sanitizer``."""

import sys

from repro.sanitizer.cli import main

if __name__ == "__main__":
    sys.exit(main())
