"""Bridge simsan findings into the lint reporting machinery.

Runtime findings are ordinary :class:`~repro.lint.violations.Violation`
objects, so this module only has to (a) apply ``# simsan:
waive[check-id]`` inline comments by reading the anchored source line,
(b) apply the checked-in sanitizer baseline
(``src/repro/sanitizer/baseline.json``, same format as the lint
baseline), and (c) pack everything into a
:class:`~repro.lint.engine.LintReport` that the existing
text/JSON/SARIF reporters render unchanged.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.lint.baseline import Baseline
from repro.lint.engine import LintReport
from repro.lint.reporters import render_json, render_sarif, render_text
from repro.lint.violations import Violation
from repro.sanitizer.checks import CHECKS

__all__ = [
    "apply_waivers",
    "build_report",
    "default_baseline_path",
    "render",
]

_WAIVE_RE = re.compile(r"#\s*simsan:\s*waive\[([A-Za-z0-9_,\- ]+)\]")

#: Where anchored paths are resolved from: findings carry repo- or
#: src-relative POSIX paths (see :func:`repro.sanitizer.core.relative_path`).
_SRC_ROOT = Path(__file__).resolve().parents[2]
_REPO_ROOT = _SRC_ROOT.parent


def default_baseline_path() -> Path:
    """The committed sanitizer baseline shipped next to this module."""
    return Path(__file__).parent / "baseline.json"


def _resolve(path: str) -> Optional[Path]:
    if path.startswith("<"):
        return None
    for root in (Path.cwd(), _SRC_ROOT, _REPO_ROOT):
        candidate = root / path
        if candidate.is_file():
            return candidate
    return None


def _waived_lines(path: str, cache: Dict[str, Dict[int, Set[str]]]) -> Dict[int, Set[str]]:
    waivers = cache.get(path)
    if waivers is not None:
        return waivers
    waivers = {}
    resolved = _resolve(path)
    if resolved is not None:
        try:
            source = resolved.read_text("utf-8")
        except OSError:
            source = ""
        for line_number, line in enumerate(source.splitlines(), start=1):
            if "simsan" not in line:
                continue
            match = _WAIVE_RE.search(line)
            if match is None:
                continue
            ids = {
                fragment.strip()
                for fragment in match.group(1).split(",")
                if fragment.strip()
            }
            if ids:
                waivers[line_number] = ids
    cache[path] = waivers
    return waivers


def apply_waivers(findings: Sequence[Violation]) -> List[Violation]:
    """Mark findings whose anchored line carries a matching waiver."""
    cache: Dict[str, Dict[int, Set[str]]] = {}
    result: List[Violation] = []
    for violation in findings:
        waived = _waived_lines(violation.path, cache).get(violation.line, ())
        if violation.rule_id in waived:
            result.append(violation.as_suppressed())
        else:
            result.append(violation)
    return result


def build_report(
    findings: Sequence[Violation],
    runs: int = 0,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Waivers + baseline applied, packed as a :class:`LintReport`.

    ``runs`` lands in the report's ``files`` slot — the closest analogue
    the reporters have for "units examined" (the text summary reads
    ``... in N files``; for simsan that is N sanitized runs).
    """
    if baseline is None:
        path = default_baseline_path()
        baseline = Baseline.load(path) if path.is_file() else Baseline.empty()
    ordered = sorted(findings, key=lambda v: v.sort_key)
    ordered = apply_waivers(ordered)
    ordered, stale = baseline.apply(ordered)
    return LintReport(
        violations=ordered, files=runs, stale_baseline=stale
    )


def render(report: LintReport, fmt: str, show_suppressed: bool = False) -> str:
    """Render via the shared lint reporters with simsan check metadata."""
    if fmt == "json":
        return render_json(report)
    if fmt == "sarif":
        return render_sarif(report, rules=list(CHECKS), driver_name="simsan")
    return render_text(report, show_suppressed=show_suppressed)
