"""The runtime sanitizer: hook sink, checkers, and finding factory.

A :class:`Sanitizer` is attached to one :class:`~repro.sim.kernel.Environment`
(``Environment(sanitizer=...)``).  The kernel and the instrumented model
modules call tiny guarded hooks::

    san = self.env._san
    if san is not None:
        san.write(("lock", self))

so the clean path pays one attribute load and a predictable branch, and
the instrumented path funnels everything here.

Footprint model
---------------
Kernel-visible mutable state is named by small hashable *tokens* keyed
on the live owning object: ``("lock", manager)`` for a node's lock
table and wait-for edges, ``("mailbox", mailbox)``, ``("cpu", cpu)``
and ``("disk", disk)`` for resource queues, ``("net", src, dst)`` for a
directed network channel, ``("stream", name)`` for a named RNG
sequence.  During one timestamp the sanitizer remembers, per token, the
*most recent* event that touched it (an adjacent-witness model: each
access is compared against the previous access of the same token, which
is O(1) per hook and still witnesses every unordered conflicting pair
as a chain of adjacent conflicts).  Two accesses race when they come
from different same-timestamp events, at least one is a write, and
neither event is a same-timestamp scheduling ancestor of the other —
ancestry is the one tie-break the kernel *guarantees* (a child
scheduled via ``schedule_now`` always gets a larger seq than its
parent), so parent/child pairs are ordered by causality, not by the
tie-break policy.  Everything else at equal timestamps is ordered only
by the FIFO seq counter, which is exactly the order a different
tie-break policy would permute.

Findings are deduplicated by (token kind, first event's code site,
second event's code site), so a hot pair of callbacks produces one
finding per run no matter how many pages or timestamps it races on,
and messages carry qualified callback names — never seq numbers,
timestamps, or ``id()`` values — so reports are bit-stable across runs
and machines.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.lint.violations import Violation
from repro.sanitizer import checks
from repro.sim.kernel import Environment, Process, ScheduledCallback
from repro.sim.streams import is_registered, stream_owner

__all__ = ["Sanitizer", "relative_path"]

# _SanHandle lifecycle states.
_PENDING = 0
_CANCELLED = 1
_REAPED = 2

_REPO_SRC_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def relative_path(path: str) -> str:
    """Repo-relative rendering of a source path, for stable reports."""
    abspath = os.path.abspath(path)
    for root in (_REPO_SRC_ROOT, os.getcwd()):
        if abspath.startswith(root + os.sep):
            return abspath[len(root) + 1 :].replace(os.sep, "/")
    return path.replace(os.sep, "/")


def _code_of(callback: Any):
    """The code object behind a callback, or None for builtins."""
    func = getattr(callback, "__func__", callback)
    return getattr(func, "__code__", None)


def _label(callback: Any) -> str:
    """Stable human name for an event callback."""
    if callback is None:
        return "<no event>"
    name = getattr(callback, "__qualname__", None)
    if name is None:
        func = getattr(callback, "__func__", None)
        name = getattr(func, "__qualname__", None)
    if name is None:
        name = type(callback).__name__
    return name


def _code_key(callback: Any) -> Tuple[str, int]:
    code = _code_of(callback)
    if code is None:
        return (_label(callback), 0)
    return (code.co_filename, code.co_firstlineno)


def _generic_stream(name: str) -> str:
    """Collapse per-instance numbering (``disk-choice-3``,
    ``think-812``) to its pattern form so one logical hazard yields one
    finding regardless of node count or terminal id."""
    return re.sub(r"\d+", "{n}", name)


def _token_desc(token: tuple) -> str:
    kind = token[0]
    if kind == "stream":
        return f"random stream '{_generic_stream(token[1])}'"
    if kind == "net":
        # Endpoint ids are elided: the dedup key ignores them, so the
        # message must not depend on which pair happened to race first.
        return "network channel"
    names = {
        "lock": "lock table / wait-for edges",
        "mailbox": "mailbox",
        "cpu": "CPU queue",
        "disk": "disk queue",
    }
    return names.get(kind, kind)


class _SanHandle(ScheduledCallback):
    """A scheduled-callback handle with lifecycle tracking.

    Under the sanitizer, handles are never pooled, so object identity is
    stable for the whole run and ``cancel()`` can distinguish a live
    pending handle from one whose callback already dispatched — the
    exact confusion that, under pooling, silently cancels an unrelated
    recycled event.
    """

    __slots__ = ("san", "state")

    def __init__(self, time: float, seq: int, callback, args):
        super().__init__(time, seq, callback, args)
        self.state = _PENDING

    def cancel(self) -> None:
        self.san.note_cancel(self)


class _SanStream:
    """Per-draw instrumentation proxy around a ``random.Random`` stream.

    Call sites cache stream handles (and bound methods such as
    ``stream.expovariate``) at construction time, so wrapping the stream
    object once at :meth:`RandomStreams.get` time instruments every
    later draw, including draws through cached bound methods.
    """

    __slots__ = ("_san", "_token", "_raw")

    def __init__(self, san: "Sanitizer", name: str, raw):
        self._san = san
        self._token = ("stream", name)
        self._raw = raw

    def _draw(self):
        self._san.write(self._token)

    # The draw methods the model uses, delegated explicitly.
    def random(self):
        self._san.write(self._token)
        return self._raw.random()

    def uniform(self, a, b):
        self._san.write(self._token)
        return self._raw.uniform(a, b)

    def randint(self, a, b):
        self._san.write(self._token)
        return self._raw.randint(a, b)

    def expovariate(self, lambd):
        self._san.write(self._token)
        return self._raw.expovariate(lambd)

    def sample(self, population, k):
        self._san.write(self._token)
        return self._raw.sample(population, k)

    def choice(self, seq):
        self._san.write(self._token)
        return self._raw.choice(seq)

    def shuffle(self, x):
        self._san.write(self._token)
        return self._raw.shuffle(x)

    def gauss(self, mu, sigma):
        self._san.write(self._token)
        return self._raw.gauss(mu, sigma)

    def getrandbits(self, k):
        self._san.write(self._token)
        return self._raw.getrandbits(k)

    def __getattr__(self, name):
        # Non-draw attributes (seed, getstate, ...) pass through
        # unwrapped; unknown draw methods still get instrumented.
        attr = getattr(self._raw, name)
        if callable(attr):
            san = self._san
            token = self._token

            def wrapped(*args, **kwargs):
                san.write(token)
                return attr(*args, **kwargs)

            return wrapped
        return attr


class Sanitizer:
    """Collects hook events for one sanitized run and emits findings.

    Parameters
    ----------
    confirm:
        Whether :meth:`finish_run` may re-run the configuration under a
        perturbed tie-break order to classify race candidates.  Leave
        enabled for simulation-level runs; kernel-level fixtures (no
        ``SimulationConfig`` to re-run) are unaffected.
    """

    def __init__(self, confirm: bool = True):
        self.confirm = confirm
        self.env: Optional[Environment] = None
        self.events_observed = 0
        self.findings: List[Violation] = []
        self._finding_keys: set = set()
        # Same-timestamp state, cleared on every clock advance.
        self._parents: Dict[int, int] = {}
        self._last_access: Dict[tuple, Tuple[int, bool, Any]] = {}
        # Executing event.
        self._cur_seq: Optional[int] = None
        self._cur_cb: Any = None
        # Race candidates, materialized by finalize()/the confirmer.
        self._races: List[dict] = []
        self._race_keys: set = set()
        self._race_verdict: Optional[bool] = None  # True = outcome-changing
        self._race_detail = ""
        # Stream names whose registration has been validated.
        self._streams_checked: set = set()
        # Lifecycle / leak bookkeeping.
        self._cancelled_pending = 0
        self._processes: Dict[Process, None] = {}
        self._finalized: Optional[List[Violation]] = None
        # Hook-bearing runtime modules whose frames are skipped when
        # anchoring a finding: the interesting line is the model-level
        # call site where a waiver comment can meaningfully live.
        skip = {os.path.abspath(__file__)}
        for module_name in (
            "repro.sim.kernel",
            "repro.sim.resources",
            "repro.sim.streams",
            "repro.core.network",
            "repro.cc.locks",
        ):
            module = sys.modules.get(module_name)
            if module is not None and getattr(module, "__file__", None):
                skip.add(os.path.abspath(module.__file__))
        self._skip_files = skip

    # ------------------------------------------------------------------
    # Attachment / handle factory (called by the kernel)
    # ------------------------------------------------------------------

    def attach_env(self, env: Environment) -> None:
        self.env = env

    def new_handle(self, time: float, seq: int, callback, args) -> _SanHandle:
        handle = _SanHandle(time, seq, callback, args)
        handle.san = self
        env = self.env
        # Same-timestamp causality: a child scheduled *at the current
        # time* from inside an event is ordered after its parent by
        # construction, so parent/child conflicts are not races.
        if (
            self._cur_seq is not None
            and env is not None
            and time == env.now  # simlint: ignore[float-time-equality] — exact same-timestamp identity, not tolerance math
        ):
            self._parents[seq] = self._cur_seq
        return handle

    # ------------------------------------------------------------------
    # Event loop hooks
    # ------------------------------------------------------------------

    def advance_time(self, now: float) -> None:
        """The clock moved: same-timestamp state resets."""
        self._parents.clear()
        self._last_access.clear()

    def begin_event(self, handle: ScheduledCallback) -> None:
        self._cur_seq = handle.seq
        self._cur_cb = handle.callback
        self.events_observed += 1

    def end_event(self, handle: _SanHandle) -> None:
        handle.state = _REAPED
        self._cur_seq = None
        self._cur_cb = None

    def note_reaped(self, handle: _SanHandle) -> None:
        """A cancelled handle was popped (and discarded) by the loop."""
        if handle.state == _CANCELLED:
            self._cancelled_pending -= 1
        handle.state = _REAPED

    def note_process(self, process: Process) -> None:
        self._processes[process] = None

    # ------------------------------------------------------------------
    # handle-lifecycle checker
    # ------------------------------------------------------------------

    def note_cancel(self, handle: _SanHandle) -> None:
        state = handle.state
        if state == _PENDING:
            handle.state = _CANCELLED
            handle.cancelled = True
            self._cancelled_pending += 1
            return
        if state == _CANCELLED:
            path, line = self._call_site()
            self._add(
                checks.HANDLE_LIFECYCLE,
                path,
                line,
                "double cancel() on an already-cancelled handle — under "
                "pooling the second call can hit a recycled handle "
                "belonging to an unrelated event",
                severity="warning",
            )
            return
        # _REAPED: the callback already dispatched (or the cancelled
        # handle was already reaped and recycled).
        path, line = self._call_site()
        self._add(
            checks.HANDLE_LIFECYCLE,
            path,
            line,
            "cancel() on a stale handle whose callback already "
            "dispatched — under pooling this cancels whatever unrelated "
            "event now owns the recycled handle",
            severity="error",
        )

    # ------------------------------------------------------------------
    # same-time-race checker
    # ------------------------------------------------------------------

    def read(self, token: tuple) -> None:
        self._access(token, False)

    def write(self, token: tuple) -> None:
        self._access(token, True)

    def _access(self, token: tuple, is_write: bool) -> None:
        seq = self._cur_seq
        if seq is None:
            # Outside event dispatch (model construction, teardown):
            # ordering is program order, not scheduler order.
            return
        last = self._last_access.get(token)
        self._last_access[token] = (seq, is_write, self._cur_cb)
        if last is None:
            return
        last_seq, last_write, last_cb = last
        if last_seq == seq or not (is_write or last_write):
            return
        if self._is_ancestor(last_seq, seq):
            return
        self._note_race(token, last_cb, last_write, self._cur_cb, is_write)

    def _is_ancestor(self, ancestor_seq: int, seq: int) -> bool:
        parents = self._parents
        while True:
            parent = parents.get(seq)
            if parent is None:
                return False
            if parent == ancestor_seq:
                return True
            seq = parent

    def _note_race(self, token, first_cb, first_write, second_cb, second_write) -> None:
        kind = token[0]
        extra = _generic_stream(token[1]) if kind == "stream" else ""
        key = (kind, extra, _code_key(first_cb), _code_key(second_cb))
        if key in self._race_keys:
            return
        self._race_keys.add(key)
        path, line = self._call_site()
        mode = "write/write" if (first_write and second_write) else "read/write"
        self._races.append(
            {
                "path": path,
                "line": line,
                "message": (
                    f"same-timestamp {mode} conflict on "
                    f"{_token_desc(token)}: '{_label(first_cb)}' then "
                    f"'{_label(second_cb)}' — relative order decided "
                    "only by the scheduling sequence number"
                ),
            }
        )

    @property
    def race_candidates(self) -> int:
        return len(self._races)

    # ------------------------------------------------------------------
    # stream-discipline checker
    # ------------------------------------------------------------------

    def check_stream(self, name: str, owner: Optional[str]) -> None:
        """Validate one runtime stream lookup (called on every get)."""
        if name not in self._streams_checked:
            self._streams_checked.add(name)
            if not is_registered(name):
                path, line = self._call_site()
                self._add(
                    checks.STREAM_DISCIPLINE,
                    path,
                    line,
                    f"runtime draw from unregistered stream '{name}' — "
                    "an undeclared stream silently forks a fresh "
                    "sequence and breaks common-random-numbers "
                    "comparisons; declare it with register_stream",
                )
                return
        if owner is None:
            return
        declared = stream_owner(name)
        if declared and declared != owner:
            path, line = self._call_site()
            self._add(
                checks.STREAM_DISCIPLINE,
                path,
                line,
                f"stream '{name}' is owned by component '{declared}' "
                f"but was drawn by '{owner}' — cross-component draws "
                "entangle sequences that must stay independent",
            )

    def wrap_stream(self, name: str, raw) -> _SanStream:
        return _SanStream(self, name, raw)

    # ------------------------------------------------------------------
    # leak-audit checker
    # ------------------------------------------------------------------

    def _queues_drained(self, env: Environment) -> bool:
        if env._fast:
            return False
        if env._cal is not None:
            return env._cal.peek() is None
        return not env._heap

    def _audit_orphans(self, env: Environment) -> None:
        for process in self._processes:
            if not process._alive:
                continue
            generator = process._generator
            code = getattr(generator, "gi_code", None)
            if code is not None:
                path, line = relative_path(code.co_filename), code.co_firstlineno
            else:
                path, line = "<process>", 0
            self._add(
                checks.LEAK_AUDIT,
                path,
                line,
                f"orphaned process '{_label_process(process)}' is still "
                "alive but the event queues drained — it is waiting on "
                "an event nobody will ever succeed",
            )

    def _audit_couriers(self, network) -> None:
        inflight = getattr(network, "_inflight", None)
        if not inflight:
            return
        for courier in inflight:
            path, line = _courier_site(courier)
            self._add(
                checks.LEAK_AUDIT,
                path,
                line,
                f"undelivered courier '{getattr(courier, 'name', '?')}' "
                "still in flight after the run — its message will never "
                "reach its handler",
            )

    def _audit_cancelled(self) -> None:
        if self._cancelled_pending > 0:
            self._add(
                checks.LEAK_AUDIT,
                "<scheduler>",
                0,
                f"{self._cancelled_pending} cancelled handle(s) were "
                "never reaped from the scheduler — cancelled work is "
                "pinned in the queue past the end of the run",
            )

    def finish_env(self, env: Environment) -> None:
        """Kernel-level end-of-run audit (no simulation context)."""
        if self._queues_drained(env):
            self._audit_orphans(env)
        self._audit_cancelled()

    def finish_run(self, sim, result) -> None:
        """Simulation-level end-of-run audit plus the confirmer."""
        env = sim.env
        drained = self._queues_drained(env)
        if drained:
            self._audit_orphans(env)
            self._audit_couriers(sim.network)
        injector = getattr(sim, "fault_injector", None)
        if injector is not None:
            for kind, name, node, path, line in injector.iter_stranded():
                self._add(
                    checks.LEAK_AUDIT,
                    relative_path(path),
                    line,
                    f"{kind} '{name}' stranded on crashed node {node} "
                    "at simulation end",
                )
        if self._races and self.confirm:
            self._confirm_races(sim, result)

    # ------------------------------------------------------------------
    # Differential confirmer
    # ------------------------------------------------------------------

    def _confirm_races(self, sim, result) -> None:
        """Classify race candidates by perturbing the tie-break order.

        Re-runs the same configuration with ``tiebreak="reverse-batch"``
        (same-timestamp batches execute in *descending* seq order) and
        diffs the ``SimulationResult``.  The perturbed run is a
        finite-horizon deterministic simulation of the same config, so
        it terminates exactly like the primary run did; one extra run
        per sanitized config bounds the confirmer's cost.
        """
        from repro.core.simulation import Simulation

        try:
            perturbed = Simulation(
                sim.config, sanitizer=False, tiebreak="reverse-batch"
            ).run()
        except Exception as exc:  # noqa: BLE001 - any divergence is a verdict
            self._race_verdict = True
            self._race_detail = (
                f"perturbed tie-break run failed outright: {type(exc).__name__}: {exc}"
            )
            return
        diff = diff_results(result, perturbed)
        if diff:
            self._race_verdict = True
            self._race_detail = "perturbed tie-break changed " + diff
        else:
            self._race_verdict = False

    # ------------------------------------------------------------------
    # Finding assembly
    # ------------------------------------------------------------------

    def _call_site(self) -> Tuple[str, int]:
        frame = sys._getframe(2)
        skip = self._skip_files
        while frame is not None and frame.f_code.co_filename in skip:
            frame = frame.f_back
        if frame is None:
            return ("<unknown>", 0)
        return (relative_path(frame.f_code.co_filename), frame.f_lineno)

    def _add(self, check_id: str, path: str, line: int, message: str, severity: Optional[str] = None) -> None:
        if severity is None:
            severity = checks.get_check(check_id).severity
        key = (check_id, path, line, message)
        if key in self._finding_keys:
            return
        self._finding_keys.add(key)
        self.findings.append(
            Violation(
                rule_id=check_id,
                path=path,
                line=line,
                col=0,
                message=message,
                severity=severity,
            )
        )

    def finalize(self) -> List[Violation]:
        """All findings for this run, races classified, stably sorted."""
        if self._finalized is not None:
            return self._finalized
        findings = list(self.findings)
        if self._race_verdict is None:
            race_severity = checks.get_check(checks.SAME_TIME_RACE).severity
            suffix = " [unconfirmed]"
        elif self._race_verdict:
            race_severity = "error"
            # The changed-field list (self._race_detail) is run-specific
            # and must stay out of the message: findings dedup and
            # baseline-match on their text, which has to be stable
            # across grid points and seeds.
            suffix = (
                " [outcome-changing: a perturbed tie-break order "
                "produced a different SimulationResult]"
            )
        else:
            race_severity = "warning"
            suffix = " [benign-commutative: perturbed tie-break run produced an identical SimulationResult]"
        for race in self._races:
            findings.append(
                Violation(
                    rule_id=checks.SAME_TIME_RACE,
                    path=race["path"],
                    line=race["line"],
                    col=0,
                    message=race["message"] + suffix,
                    severity=race_severity,
                )
            )
        findings.sort(key=lambda v: v.sort_key)
        self._finalized = findings
        return findings


def _label_process(process: Process) -> str:
    name = getattr(process, "name", None)
    if name:
        return str(name)
    generator = process._generator
    code = getattr(generator, "gi_code", None)
    if code is not None:
        return code.co_qualname if hasattr(code, "co_qualname") else code.co_name
    return type(process).__name__


def _courier_site(courier) -> Tuple[str, int]:
    handler = getattr(courier, "handler", None)
    code = _code_of(handler) if handler is not None else None
    if code is not None:
        return (relative_path(code.co_filename), code.co_firstlineno)
    return ("<network>", 0)


def diff_results(primary, perturbed) -> str:
    """One-line summary of how two SimulationResults differ ('' if not)."""
    first = primary.as_dict()
    second = perturbed.as_dict()
    changed = []
    for field in sorted(set(first) | set(second)):
        if first.get(field) != second.get(field):
            changed.append(field)
    if not changed:
        return ""
    shown = ", ".join(changed[:4])
    if len(changed) > 4:
        shown += f", ... ({len(changed)} fields)"
    return shown
