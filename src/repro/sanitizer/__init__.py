"""simsan: a runtime determinism sanitizer for the simulation kernel.

simlint (:mod:`repro.lint`) guards the bit-reproducibility property
statically; simsan guards it *dynamically*.  An opt-in instrumented
execution mode — ``Environment(sanitizer=...)`` /
``Simulation(config, sanitizer=...)`` / ``$REPRO_SIMSAN=1`` — routes
cheap hook points in the kernel, both schedulers, the stream registry,
the resources, the network, and the fault injector into a
:class:`~repro.sanitizer.core.Sanitizer`, which runs four checkers:

``same-time-race``
    Two same-timestamp events with intersecting read/write footprints
    over kernel-visible mutable state (lock tables, mailboxes, CPU/disk
    queues, streams, couriers) whose relative order is decided only by
    the scheduling sequence number.  A differential confirmer re-runs
    the configuration under a perturbed tie-break order
    (``tiebreak="reverse-batch"``) and diffs the
    :class:`~repro.core.metrics.SimulationResult` to classify each flag
    as benign-commutative (warning) or outcome-changing (error).
``stream-discipline``
    Every runtime stream lookup is checked against the
    :func:`~repro.sim.streams.register_stream` registry and the drawing
    component's declared ownership — closing the dynamic-name hole the
    static ``stream-registry`` rule must exempt.
``handle-lifecycle``
    ``cancel()`` on a handle whose callback already ran (which under
    pooling would kill an unrelated recycled event), and double-cancel
    before reap, across both the heap and calendar schedulers.
``leak-audit``
    End-of-run audit generalizing ``faults.assert_no_leaks``: orphaned
    processes and undelivered couriers on drained runs, cohorts or
    couriers stranded on crashed nodes, and cancelled handles never
    reaped.

Findings are ordinary :class:`~repro.lint.violations.Violation`
objects: they flow through the existing text/JSON/SARIF reporters,
``# simsan: waive[check-id]`` inline comments, and a checked-in
baseline (``src/repro/sanitizer/baseline.json``).  Entry points:
``python -m repro.sanitizer`` and ``--sanitize`` on the experiments
runner.
"""

from repro.sanitizer.checks import CHECKS, get_check
from repro.sanitizer.core import Sanitizer
from repro.sanitizer.driver import run_sanitized
from repro.sanitizer.session import (
    activate,
    deactivate,
    sanitizing_active,
)

__all__ = [
    "CHECKS",
    "Sanitizer",
    "activate",
    "deactivate",
    "get_check",
    "run_sanitized",
    "sanitizing_active",
]
