"""``python -m repro.sanitizer`` — run experiments under simsan.

Runs the named experiments (default: the fig2/fig10 smoke anchors) with
the process-global sanitizer session active, then reports every finding
through the shared lint reporters.  The sweep executor bypasses its
memo and the persistent result cache while the session is live, so
every point is actually simulated under instrumentation.

Exit codes mirror simlint: 0 clean, 1 findings (live error-severity
violations or a stale baseline), 2 usage/config errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import Baseline
from repro.sanitizer import report as report_mod
from repro.sanitizer import session

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitizer",
        description=(
            "simsan: runtime determinism sanitizer — run experiments "
            "instrumented and report races, stream-discipline breaks, "
            "handle misuse, and leaks"
        ),
    )
    parser.add_argument(
        "ids",
        nargs="*",
        default=["fig2", "fig10"],
        help="experiment ids to sanitize (default: fig2 fig10)",
    )
    parser.add_argument(
        "--fidelity",
        choices=("smoke", "quick", "full"),
        default="smoke",
        help="run length preset (default: smoke)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=(
            "baseline of inventoried findings (default: the committed "
            "src/repro/sanitizer/baseline.json when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline, report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to inventory every current "
            "error-severity finding, then exit 0"
        ),
    )
    parser.add_argument(
        "--faulted-smoke",
        action="store_true",
        help=(
            "also sanitize one canonical crash/loss-faulted 2PL point "
            "(the faults-smoke CI configuration), so fault-injection "
            "hook paths and the stranded-work audit run under "
            "instrumentation in the same report"
        ),
    )
    parser.add_argument(
        "--no-confirm",
        action="store_true",
        help=(
            "skip the differential confirmer (race candidates stay "
            "unclassified warnings; roughly halves sanitized cost)"
        ),
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include waived/baselined findings in text output",
    )
    return parser


def _faulted_smoke_config():
    """One crash/loss-faulted 2PL point, mirroring the faults-smoke CI
    job: two crashes plus message loss inside a 15 s horizon, so the
    injector's crash/recovery paths, the 2PC timeout machinery, and
    the stranded-work audit all execute under instrumentation."""
    from repro.core.config import paper_default_config
    from repro.faults.schedule import FaultConfig

    faults = FaultConfig(
        node_mtbf=60.0,
        node_mttr=1.0,
        message_loss_probability=0.005,
        execution_timeout=12.0,
        prepare_timeout=1.5,
        decision_timeout=1.5,
        ack_timeout=1.5,
    )
    return paper_default_config(
        "2pl", think_time=8.0, placement_degree=2
    ).with_(duration=15.0, warmup=5.0, faults=faults)


def _resolve_baseline(options) -> Optional[Baseline]:
    if options.no_baseline or options.update_baseline:
        return Baseline.empty()
    if options.baseline:
        return Baseline.load(Path(options.baseline))
    return None  # build_report falls back to the committed baseline


def main(argv: Optional[List[str]] = None) -> int:
    """Run the sanitizer CLI; returns the process exit code."""
    from repro.experiments.fidelity import Fidelity
    from repro.experiments.registry import EXPERIMENTS, get_experiment

    options = _build_parser().parse_args(argv)
    try:
        baseline = _resolve_baseline(options)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    fidelity = {
        "smoke": Fidelity.smoke,
        "quick": Fidelity.quick,
        "full": Fidelity.full,
    }[options.fidelity]()

    ids = list(options.ids)
    if ids == ["all"]:
        ids = list(EXPERIMENTS)
    experiments = []
    for experiment_id in ids:
        try:
            experiments.append(get_experiment(experiment_id))
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2

    session.reset_findings()
    session.activate(confirm=not options.no_confirm)
    try:
        for experiment in experiments:
            print(
                f"simsan: sanitizing {experiment.id} "
                f"(fidelity={fidelity.name})",
                file=sys.stderr,
            )
            experiment.run(fidelity)
        if options.faulted_smoke:
            from repro.core.simulation import Simulation

            print(
                "simsan: sanitizing faulted smoke point "
                "(2pl, mtbf=60, loss=0.005)",
                file=sys.stderr,
            )
            Simulation(_faulted_smoke_config()).run()
        findings = session.session_findings()
        runs = session.session_runs()
    finally:
        session.deactivate()

    if options.update_baseline:
        target = Path(
            options.baseline
            if options.baseline
            else report_mod.default_baseline_path()
        )
        inventory = report_mod.build_report(
            findings, runs=runs, baseline=Baseline.empty()
        )
        updated = Baseline.from_violations(
            inventory.failures,
            reason="inventoried by --update-baseline; justify or fix",
        )
        updated.write(target)
        print(
            f"baseline: inventoried "
            f"{sum(e.count for e in updated.entries)} finding(s) in "
            f"{target}"
        )
        return 0

    report = report_mod.build_report(findings, runs=runs, baseline=baseline)
    print(
        report_mod.render(
            report, options.format, show_suppressed=options.show_suppressed
        )
    )
    return 0 if report.ok else 1
