"""Check descriptors for the runtime sanitizer.

Mirrors the shape the lint reporters expect from a rule: each check
exposes ``rule_id``, ``summary``, and a default ``severity``, so a
simsan report can be rendered by :func:`repro.lint.reporters.render_text`
/ ``render_json`` / ``render_sarif`` unchanged.  Individual findings may
carry a different severity than the check default (the differential
confirmer upgrades outcome-changing races to errors and downgrades
benign-commutative ones to warnings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

SAME_TIME_RACE = "same-time-race"
STREAM_DISCIPLINE = "stream-discipline"
HANDLE_LIFECYCLE = "handle-lifecycle"
LEAK_AUDIT = "leak-audit"


@dataclass(frozen=True)
class Check:
    """Descriptor for one runtime checker (reporter-compatible)."""

    rule_id: str
    summary: str
    severity: str


CHECKS: Tuple[Check, ...] = (
    Check(
        rule_id=SAME_TIME_RACE,
        summary=(
            "two same-timestamp events touched the same kernel-visible "
            "mutable state and their relative order is decided only by "
            "the scheduling sequence number"
        ),
        severity="warning",
    ),
    Check(
        rule_id=STREAM_DISCIPLINE,
        summary=(
            "a runtime stream draw bypassed the register_stream registry "
            "or crossed its declared component ownership"
        ),
        severity="error",
    ),
    Check(
        rule_id=HANDLE_LIFECYCLE,
        summary=(
            "a scheduled-callback handle was cancelled after dispatch or "
            "cancelled twice — under pooling this corrupts a recycled "
            "handle belonging to an unrelated event"
        ),
        severity="error",
    ),
    Check(
        rule_id=LEAK_AUDIT,
        summary=(
            "end-of-run audit: an orphaned process, undelivered courier, "
            "stranded cohort, or unreaped cancelled handle survived the "
            "simulation"
        ),
        severity="error",
    ),
)

_BY_ID: Dict[str, Check] = {check.rule_id: check for check in CHECKS}


def get_check(rule_id: str) -> Check:
    return _BY_ID[rule_id]


def is_check_id(rule_id: str) -> bool:
    return rule_id in _BY_ID
