"""Process-global sanitizer session.

The experiments layer runs simulations behind several indirections
(registry -> runner -> executor -> ``Simulation``), so the CLI entry
points can't thread a :class:`~repro.sanitizer.core.Sanitizer` instance
through by hand.  Instead they *activate* a session here;
``Simulation`` consults :func:`sanitizing_active` when no explicit
sanitizer argument was given, auto-creates one per run, and publishes
its findings back into this module.  ``$REPRO_SIMSAN=1`` activates the
session from the environment without touching any call site.

The result cache is keyed for clean runs only, so
:meth:`repro.experiments.executor.SweepExecutor` also consults
:func:`sanitizing_active` to bypass both its in-memory memo and the
disk cache (read *and* write) while a session is live — a cache hit
would silently skip instrumentation, and a sanitized run must never
populate entries a clean run could later trust.

This module stays import-light (stdlib only) because the executor and
its worker processes import it.
"""

from __future__ import annotations

import os
from typing import List

_TRUTHY = ("1", "true", "yes", "on")

_active = False
_confirm = True
_findings: List[object] = []
_runs = 0


def env_enabled() -> bool:
    """True when ``$REPRO_SIMSAN`` asks for sanitized execution."""
    return os.environ.get("REPRO_SIMSAN", "").strip().lower() in _TRUTHY


def sanitizing_active() -> bool:
    """True when sanitized execution is requested for this process."""
    return _active or env_enabled()


def confirm_enabled() -> bool:
    """Whether auto-created sanitizers run the differential confirmer."""
    if os.environ.get("REPRO_SIMSAN_CONFIRM", "").strip().lower() in ("0", "false", "no", "off"):
        return False
    return _confirm


def activate(confirm: bool = True) -> None:
    """Turn on sanitized execution for every subsequent ``Simulation``."""
    global _active, _confirm
    _active = True
    _confirm = confirm


def deactivate() -> None:
    global _active, _confirm
    _active = False
    _confirm = True


def record_run(findings) -> None:
    """Publish one sanitized run's findings into the session."""
    global _runs
    _runs += 1
    seen = {(v.rule_id, v.path, v.line, v.message) for v in _findings}
    for violation in findings:
        key = (violation.rule_id, violation.path, violation.line, violation.message)
        if key not in seen:
            seen.add(key)
            _findings.append(violation)


def session_findings() -> List[object]:
    return list(_findings)


def session_runs() -> int:
    return _runs


def reset_findings() -> None:
    global _runs
    _findings.clear()
    _runs = 0
