"""Convenience drivers for one-off sanitized runs.

The experiments pipeline activates a process-global session
(:mod:`repro.sanitizer.session`) instead; this module is for direct
callers — tests, CI invariant scripts, notebooks — that want one
configuration sanitized and the findings in hand.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.lint.violations import Violation
from repro.sanitizer.core import Sanitizer


def run_sanitized(config, confirm: bool = True) -> Tuple[object, List[Violation]]:
    """Run ``config`` under a fresh sanitizer.

    Returns ``(SimulationResult, findings)``.  The result is
    bit-identical to a clean run of the same config — the hooks only
    observe — which is what lets the differential confirmer diff the
    perturbed re-run against it.
    """
    from repro.core.simulation import Simulation

    sanitizer = Sanitizer(confirm=confirm)
    result = Simulation(config, sanitizer=sanitizer).run()
    return result, sanitizer.finalize()
