"""Deterministic fault injection for the distributed database machine.

The paper's model is failure-free: the network never drops a message,
nodes never crash, and two-phase commit always completes (PAPER.md §3).
This package adds the missing robustness dimension without perturbing
the verified failure-free results:

* :mod:`repro.faults.schedule` — fault *timelines* (node crash/recover
  events, message loss and delay decisions) drawn from dedicated
  ``fault-*`` named streams of :class:`repro.sim.streams.RandomStreams`
  or declared explicitly, so any faulty run is exactly reproducible
  and cacheable like a failure-free one.
* :mod:`repro.faults.injectors` — the runtime hooks that apply a
  schedule to a live simulation: crashing a node interrupts every
  resident cohort process, wipes the node's volatile CC state and
  discards in-flight messages; recovery brings the node back after
  the scheduled repair time.

With ``SimulationConfig.faults`` left at ``None`` nothing in here is
ever imported by the hot path and every simulation stays bit-identical
to the failure-free simulator.
"""

from repro.faults.schedule import FaultConfig, FaultEvent, FaultSchedule

__all__ = ["FaultConfig", "FaultEvent", "FaultSchedule"]
