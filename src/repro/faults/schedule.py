"""Deterministic fault schedules: what fails, when, for how long.

A :class:`FaultSchedule` is built once per simulation, before the
clock starts, from a frozen :class:`FaultConfig` plus the simulation's
:class:`~repro.sim.streams.RandomStreams`.  Every stochastic decision
is drawn from a dedicated ``fault-*`` named stream:

* ``fault-crash-{node}`` / ``fault-repair-{node}`` — per-node
  exponential time-to-failure and time-to-repair draws, materialised
  eagerly into a sorted crash/recover timeline up to the simulation
  horizon.
* ``fault-msg-loss`` — the Bernoulli coin for each candidate message.
* ``fault-msg-delay`` / ``fault-msg-delay-time`` — whether and by how
  much a message is delayed on the wire.

Because streams are independent by *name* (see ``repro.sim.streams``),
fault draws never perturb the workload or CC draw sequences: the same
seed produces the same transaction arrivals with and without faults,
which keeps common-random-numbers comparisons honest.  Drawing fault
decisions from any non-``fault-*`` stream is a determinism hazard and
is flagged by the ``fault-stream-misuse`` simlint rule.

Crash semantics are fail-stop with volatile-state loss: a crashed node
loses its in-memory CC state (lock tables, timestamp tables, pending
certifications) but not its committed data — recovery is modelled as
an instantaneous REDO from the log at the end of the repair interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.streams import RandomStreams

__all__ = ["FaultConfig", "FaultEvent", "FaultSchedule"]

#: The two timeline event kinds.
CRASH = "crash"
RECOVER = "recover"

#: Recover-before-crash at equal times, so an explicit zero-length
#: outage is a no-op rather than a stuck-down node.
_KIND_ORDER = {RECOVER: 0, CRASH: 1}


@dataclass(frozen=True)
class FaultEvent:
    """One explicit timeline entry: ``node`` crashes or recovers."""

    time: float
    kind: str  # CRASH or RECOVER
    node: int


@dataclass(frozen=True)
class FaultConfig:
    """Frozen description of every fault the simulation may inject.

    All fields default to "no fault", so ``FaultConfig()`` attaches
    the hardening machinery (timeouts, resend loops, leak checks)
    without scheduling any actual failure.  Hashable, so faulty
    configurations stay sweepable and result-cacheable.
    """

    # -- stochastic node crashes (per processing node) -----------------
    #: Mean time between failures; 0 disables drawn crashes.
    node_mtbf: float = 0.0
    #: Mean time to repair; required > 0 when node_mtbf > 0.
    node_mttr: float = 0.0
    #: Restrict drawn crashes to these nodes (None = every node).
    crashable_nodes: Optional[Tuple[int, ...]] = None

    # -- message faults ------------------------------------------------
    #: Probability an inter-node message is silently dropped.
    message_loss_probability: float = 0.0
    #: Probability an inter-node message is delayed on the wire.
    message_delay_probability: float = 0.0
    #: Mean of the exponential extra wire delay (seconds).
    mean_message_delay: float = 0.0

    # -- explicit timeline (merged with drawn events) ------------------
    events: Tuple[FaultEvent, ...] = ()

    # -- 2PC hardening knobs (seconds) ---------------------------------
    #: Coordinator abandons the execution phase after this long.
    execution_timeout: float = 60.0
    #: Coordinator presumes abort when votes take longer than this.
    prepare_timeout: float = 10.0
    #: Participant blocking-detection interval while awaiting the
    #: commit/abort decision after voting yes.
    decision_timeout: float = 10.0
    #: Coordinator resends the phase-two decision at this interval.
    ack_timeout: float = 10.0

    # -- terminal retry backoff for failure-induced aborts -------------
    #: First-retry mean delay (seconds).
    retry_backoff_base: float = 0.25
    #: Mean-delay growth factor per consecutive failure abort.
    retry_backoff_multiplier: float = 2.0
    #: Ceiling on the mean retry delay.
    retry_backoff_cap: float = 8.0

    def validate(self) -> None:
        """Raise ``ValueError`` on an unusable fault description."""
        if self.node_mtbf < 0.0:
            raise ValueError("node_mtbf must be >= 0")
        if self.node_mtbf > 0.0 and self.node_mttr <= 0.0:
            raise ValueError(
                "node_mttr must be > 0 when node_mtbf > 0 "
                "(a crashed node must eventually repair)"
            )
        for name in (
            "message_loss_probability", "message_delay_probability",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.message_delay_probability > 0.0 \
                and self.mean_message_delay <= 0.0:
            raise ValueError(
                "mean_message_delay must be > 0 when messages "
                "can be delayed"
            )
        for name in (
            "execution_timeout", "prepare_timeout",
            "decision_timeout", "ack_timeout",
        ):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be > 0")
        if self.retry_backoff_base < 0.0:
            raise ValueError("retry_backoff_base must be >= 0")
        if self.retry_backoff_multiplier < 1.0:
            raise ValueError("retry_backoff_multiplier must be >= 1")
        if self.retry_backoff_cap < self.retry_backoff_base:
            raise ValueError(
                "retry_backoff_cap must be >= retry_backoff_base"
            )
        if self.crashable_nodes is not None:
            for node in self.crashable_nodes:
                if node < 0:
                    raise ValueError(
                        "crashable_nodes entries must be processing "
                        f"node ids >= 0, got {node}"
                    )
        for event in self.events:
            if event.kind not in (CRASH, RECOVER):
                raise ValueError(
                    f"unknown fault event kind {event.kind!r}"
                )
            if event.time < 0.0:
                raise ValueError("fault event times must be >= 0")
            if event.node < 0:
                raise ValueError(
                    "fault events target processing node ids >= 0 "
                    "(the host node never crashes)"
                )


class FaultSchedule:
    """A materialised, fully deterministic fault timeline.

    The crash/recover timeline is drawn eagerly at construction (one
    alternating failure/repair walk per crashable node, merged with
    any explicit events and sorted), so replaying the same config and
    seed replays the identical fault history regardless of what the
    workload does.  Message-level decisions are drawn lazily, one per
    candidate message, from their own streams.
    """

    def __init__(
        self,
        config: FaultConfig,
        streams: RandomStreams,
        num_proc_nodes: int,
        horizon: float,
    ):
        config.validate()
        self.config = config
        self.horizon = horizon
        self._streams = streams
        self._loss_p = config.message_loss_probability
        self._delay_p = config.message_delay_probability
        self._delay_mean = config.mean_message_delay
        self.events: List[FaultEvent] = self._materialise(
            config, streams, num_proc_nodes, horizon
        )

    @staticmethod
    def _materialise(
        config: FaultConfig,
        streams: RandomStreams,
        num_proc_nodes: int,
        horizon: float,
    ) -> List[FaultEvent]:
        events = [
            event for event in config.events if event.time < horizon
        ]
        if config.node_mtbf > 0.0:
            nodes = range(num_proc_nodes)
            if config.crashable_nodes is not None:
                nodes = sorted(
                    node for node in set(config.crashable_nodes)
                    if node < num_proc_nodes
                )
            for node in nodes:
                clock = 0.0
                while True:
                    clock += streams.exponential(
                        f"fault-crash-{node}", config.node_mtbf,
                        owner="faults",
                    )
                    if clock >= horizon:
                        break
                    events.append(FaultEvent(clock, CRASH, node))
                    clock += streams.exponential(
                        f"fault-repair-{node}", config.node_mttr,
                        owner="faults",
                    )
                    if clock >= horizon:
                        break
                    events.append(FaultEvent(clock, RECOVER, node))
        events.sort(
            key=lambda e: (e.time, _KIND_ORDER[e.kind], e.node)
        )
        return events

    # ------------------------------------------------------------------
    # Per-message decisions
    # ------------------------------------------------------------------

    def drop_message(self) -> bool:
        """One Bernoulli loss decision for a candidate message."""
        return self._streams.bernoulli(
            "fault-msg-loss", self._loss_p, owner="faults"
        )

    def message_delay(self) -> float:
        """Extra wire delay for a candidate message (0.0 = none)."""
        if not self._streams.bernoulli(
            "fault-msg-delay", self._delay_p, owner="faults"
        ):
            return 0.0
        return self._streams.exponential(
            "fault-msg-delay-time", self._delay_mean, owner="faults"
        )
