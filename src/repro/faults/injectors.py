"""Runtime fault injection: applying a schedule to a live simulation.

The :class:`FaultInjector` owns the dynamic failure state of the
machine — which nodes are currently down, which cohort processes are
resident where, how much downtime each node has accumulated — and
applies the crash/recover timeline of a
:class:`~repro.faults.schedule.FaultSchedule`:

* **Crash** (fail-stop): the node's down flag is raised (so the
  network drops every subsequent message to or from it), every
  in-flight courier touching the node is discarded, every resident
  cohort process is interrupted in registration order (deterministic),
  and the node's concurrency control manager loses its volatile state
  via :meth:`~repro.cc.base.NodeCCManager.crash_reset`.
* **Recover**: the down flag clears and the outage interval is
  recorded.  Committed data survives (recovery is modelled as an
  instantaneous REDO from the log); the CC manager restarts cold.

Everything here is driven by pre-scheduled kernel callbacks and the
deterministic message coins of the schedule, so faulty runs replay
bit-identically.  The injector is only constructed when
``SimulationConfig.faults`` is set; failure-free simulations never
touch this module.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults.schedule import CRASH, FaultConfig, FaultSchedule
from repro.sim.kernel import SimulationError

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies a fault schedule to one wired simulation."""

    def __init__(
        self,
        env,
        config: FaultConfig,
        schedule: FaultSchedule,
        network,
        proc_nodes,
        metrics,
    ):
        self.env = env
        self.config = config
        self.schedule = schedule
        self.network = network
        self.proc_nodes = proc_nodes
        self.metrics = metrics
        self.num_nodes = len(proc_nodes)
        self.crashes = 0
        self.recoveries = 0
        self._down = [False] * self.num_nodes
        self._down_count = 0
        self._down_since: List[Optional[float]] = (
            [None] * self.num_nodes
        )
        #: Closed per-node outage intervals, in completion order.
        self._intervals: List[List[Tuple[float, float]]] = [
            [] for _ in range(self.num_nodes)
        ]
        #: Closed intervals during which >= 1 node was down.
        self._degraded_intervals: List[Tuple[float, float]] = []
        self._degraded_since: Optional[float] = None
        #: Per-node resident cohorts, insertion-ordered so a crash
        #: interrupts them in a deterministic order.
        self._resident: List[Dict[object, None]] = [
            {} for _ in range(self.num_nodes)
        ]
        network.attach_faults(self)

    def start(self) -> None:
        """Schedule the materialised crash/recover timeline."""
        now = self.env.now
        for event in self.schedule.events:
            if event.node >= self.num_nodes or event.time < now:
                continue
            self.env.schedule(event.time - now, self._apply, event)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def node_down(self, node: int) -> bool:
        """Whether ``node`` is currently crashed (host is never down)."""
        return 0 <= node < self.num_nodes and self._down[node]

    @property
    def degraded(self) -> bool:
        """Whether at least one node is currently down."""
        return self._down_count > 0

    # ------------------------------------------------------------------
    # Resident-cohort registry
    # ------------------------------------------------------------------

    def register_resident(self, cohort) -> None:
        """Track a cohort now running at its node."""
        self._resident[cohort.node][cohort] = None

    def forget_resident(self, cohort) -> None:
        """Stop tracking a cohort whose process has finished."""
        self._resident[cohort.node].pop(cohort, None)

    # ------------------------------------------------------------------
    # Timeline application
    # ------------------------------------------------------------------

    def _apply(self, event) -> None:
        if event.kind == CRASH:
            self._crash(event.node)
        else:
            self._recover(event.node)

    def _crash(self, node: int) -> None:
        if self._down[node]:
            return  # overlapping explicit/drawn outages merge
        now = self.env.now
        self._down[node] = True
        self._down_since[node] = now
        if self._down_count == 0:
            self._degraded_since = now
        self._down_count += 1
        self.crashes += 1
        # Messages already on the wire to or from the node are lost;
        # the down flag handles everything posted from here on.
        self.network.kill_inflight(node)
        residents = list(self._resident[node])
        self._resident[node].clear()
        for cohort in residents:
            cohort.crashed = True
            process = cohort.process
            if process is not None and process.alive:
                process.interrupt("node-crash")
        # Volatile CC state (lock tables, timestamp tables, pending
        # certifications) does not survive fail-stop.
        self.proc_nodes[node].cc_manager.crash_reset()

    def _recover(self, node: int) -> None:
        if not self._down[node]:
            return
        now = self.env.now
        self._down[node] = False
        started = self._down_since[node]
        self._down_since[node] = None
        self._intervals[node].append((started, now))
        self._down_count -= 1
        if self._down_count == 0:
            self._degraded_intervals.append(
                (self._degraded_since, now)
            )
            self._degraded_since = None
        self.recoveries += 1

    # ------------------------------------------------------------------
    # Availability accounting
    # ------------------------------------------------------------------

    @staticmethod
    def _overlap(
        intervals, open_since: Optional[float],
        start: float, end: float,
    ) -> float:
        total = 0.0
        for left, right in intervals:
            total += max(0.0, min(right, end) - max(left, start))
        if open_since is not None:
            total += max(0.0, end - max(open_since, start))
        return total

    def downtime_in_window(
        self, start: float, end: float
    ) -> List[float]:
        """Per-node downtime overlapping ``[start, end]``."""
        return [
            self._overlap(
                self._intervals[node], self._down_since[node],
                start, end,
            )
            for node in range(self.num_nodes)
        ]

    def degraded_time_in_window(
        self, start: float, end: float
    ) -> float:
        """Time in ``[start, end]`` with at least one node down."""
        return self._overlap(
            self._degraded_intervals, self._degraded_since, start, end
        )

    # ------------------------------------------------------------------
    # End-of-run invariants
    # ------------------------------------------------------------------

    def iter_stranded(self):
        """Yield ``(kind, name, node, path, line)`` for work stranded
        on a currently-down node: alive resident cohort processes and
        in-flight couriers touching a dead endpoint.

        The path/line anchor is the code that would have kept running
        — the cohort's generator function for processes, the delivery
        handler for couriers — so both the leak exception's caller and
        the sanitizer's leak audit can point a report at model code
        rather than at this module.
        """
        for node in range(self.num_nodes):
            if not self._down[node]:
                continue
            for cohort in self._resident[node]:
                process = cohort.process
                if process is not None and process.alive:
                    code = getattr(
                        process._generator, "gi_code", None
                    )
                    if code is not None:
                        path = code.co_filename
                        line = code.co_firstlineno
                    else:
                        path, line = "<process>", 0
                    yield (
                        "process", process.name, node, path, line
                    )
        inflight = self.network._inflight
        if inflight:
            for courier in inflight:
                if self.node_down(courier.source):
                    node = courier.source
                elif self.node_down(courier.destination):
                    node = courier.destination
                else:
                    continue
                handler = getattr(courier, "handler", None)
                func = getattr(handler, "__func__", handler)
                code = getattr(func, "__code__", None)
                if code is not None:
                    path = code.co_filename
                    line = code.co_firstlineno
                else:
                    path, line = "<network>", 0
                yield ("courier", courier.name, node, path, line)

    def assert_no_leaks(self) -> None:
        """No process or message may be stranded on a dead node.

        A crash interrupts every resident cohort and discards the
        node's in-flight messages, and the down flag keeps new work
        away until recovery; if anything alive still references a
        currently-down node at simulation end, that machinery failed
        and the process would have blocked forever.
        """
        stranded = [
            name for _kind, name, _node, _path, _line
            in self.iter_stranded()
        ]
        if stranded:
            raise SimulationError(
                "stranded on crashed nodes at simulation end: "
                + ", ".join(stranded)
            )
