"""Structured event tracing for transaction lifecycles.

Attach a :class:`Tracer` to a :class:`~repro.core.simulation.Simulation`
to capture a timestamped record of everything that happens to each
transaction: origination, cohort loads, blocks and wakeups, commit
protocol phases, aborts with reasons, restart delays.  Intended for
debugging concurrency control behaviour and for the test suite's
protocol assertions; the default simulation runs with no tracer and
pays nothing.

Example::

    tracer = Tracer(capacity=50_000)
    result = Simulation(config, tracer=tracer).run()
    for event in tracer.for_transaction(tid=7):
        print(event)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Any, Deque, Iterator, List, Optional

__all__ = ["EventKind", "TraceEvent", "Tracer"]


class EventKind(Enum):
    """The transaction lifecycle events the tracer records."""

    ORIGINATED = "originated"
    ATTEMPT_STARTED = "attempt_started"
    COHORT_LOADED = "cohort_loaded"
    COHORT_STARTED = "cohort_started"
    BLOCKED = "blocked"
    UNBLOCKED = "unblocked"
    COHORT_DONE = "cohort_done"
    PREPARE_SENT = "prepare_sent"
    VOTED = "voted"
    COMMITTED = "committed"
    ABORT_REQUESTED = "abort_requested"
    ABORTED = "aborted"
    RESTART_SCHEDULED = "restart_scheduled"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped lifecycle event."""

    time: float
    kind: EventKind
    tid: int
    attempt: int
    node: Optional[int] = None
    detail: Any = None

    def __str__(self) -> str:
        location = "" if self.node is None else f"@{self.node}"
        extra = "" if self.detail is None else f" {self.detail}"
        return (
            f"[{self.time:10.4f}] txn {self.tid}.{self.attempt}"
            f"{location} {self.kind.value}{extra}"
        )


class Tracer:
    """Bounded in-memory trace buffer.

    ``capacity`` bounds memory: the oldest events are dropped first
    (a full-fidelity run generates millions of events).  ``kinds``
    optionally restricts recording to a subset of event kinds.
    """

    def __init__(
        self,
        capacity: int = 100_000,
        kinds: Optional[set] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.kinds = kinds
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.recorded = 0

    def emit(
        self,
        time: float,
        kind: EventKind,
        tid: int,
        attempt: int,
        node: Optional[int] = None,
        detail: Any = None,
    ) -> None:
        """Record one event (dropping the oldest if at capacity)."""
        if self.kinds is not None and kind not in self.kinds:
            return
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(
            TraceEvent(time, kind, tid, attempt, node, detail)
        )
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """All buffered events, oldest first."""
        return list(self._events)

    def for_transaction(self, tid: int) -> List[TraceEvent]:
        """Buffered events of one transaction, oldest first."""
        return [event for event in self._events if event.tid == tid]

    def of_kind(self, kind: EventKind) -> List[TraceEvent]:
        """Buffered events of one kind, oldest first."""
        return [
            event for event in self._events if event.kind is kind
        ]

    def count(self, kind: EventKind) -> int:
        """Number of buffered events of one kind."""
        return sum(
            1 for event in self._events if event.kind is kind
        )

    def clear(self) -> None:
        """Drop all buffered events (counters keep accumulating)."""
        self._events.clear()

    def format(self, limit: Optional[int] = None) -> str:
        """Human-readable dump of the newest ``limit`` events."""
        events = self.events
        if limit is not None:
            events = events[-limit:]
        return "\n".join(str(event) for event in events)
