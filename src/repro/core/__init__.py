"""Distributed database machine model (paper §3).

This subpackage assembles the paper's simulation model: the database and
its placement (:mod:`repro.core.database`), the workload source and its
terminals (:mod:`repro.core.workload`), transactions with coordinator and
cohorts (:mod:`repro.core.transaction`,
:mod:`repro.core.transaction_manager`), per-node resource managers
(:mod:`repro.core.resource_manager`), the network manager
(:mod:`repro.core.network`), metrics (:mod:`repro.core.metrics`), and the
top-level :class:`~repro.core.simulation.Simulation` driver.
"""

from repro.core.audit import Auditor
from repro.core.config import (
    DatabaseConfig,
    ExecutionPattern,
    PlacementKind,
    ResourceConfig,
    SimulationConfig,
    TransactionClassConfig,
    WorkloadConfig,
)
from repro.core.database import Database, PageId
from repro.core.metrics import SimulationResult
from repro.core.simulation import Simulation, run_simulation
from repro.core.tracing import EventKind, Tracer

__all__ = [
    "Auditor",
    "Database",
    "DatabaseConfig",
    "EventKind",
    "ExecutionPattern",
    "PageId",
    "PlacementKind",
    "ResourceConfig",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "Tracer",
    "TransactionClassConfig",
    "WorkloadConfig",
    "run_simulation",
]
