"""The workload source (paper §3.2, Table 2).

The source generates the access specification for each new transaction.
The paper's workload: 128 terminals attached to the host, divided into
groups of 16, terminals in each group generating transactions that
access a common relation.  A transaction touches *every* partition of
its relation (FileCount = partitions per relation, FileProb uniform),
reading ``NumPages`` pages per partition on average — the actual count
drawn uniformly from [mean/2, 3*mean/2] (4..12 for the default 8,
footnote 12) — and updating each read page with WriteProb.

Crucially, *"the nature of transaction access streams is independent of
data placement and machine size"* (footnote 8): the same pages are drawn
regardless of where partitions live, and only the grouping of accesses
into cohorts changes with placement.  The source therefore draws page
accesses per partition first and groups them by node afterwards.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.config import TransactionClassConfig, WorkloadConfig
from repro.core.database import Database, PageId
from repro.core.transaction import AccessSpec, CohortSpec, PageAccess
from repro.sim.streams import RandomStreams

__all__ = ["RetryBackoff", "Source"]


class RetryBackoff:
    """Terminal-level exponential backoff for failure-induced aborts.

    When a transaction dies to an injected failure (a ``fault-``
    prefixed abort reason) the terminal retries after a jittered
    exponential delay whose mean doubles — by ``multiplier`` — with
    each consecutive failure, capped at ``cap``.  The jitter is drawn
    from the dedicated ``fault-retry-backoff`` stream, so backoff
    never perturbs the failure-free draw sequences.  Constructed only
    when fault injection is active.
    """

    def __init__(self, stream, base: float, multiplier: float,
                 cap: float):
        self._draw = stream.expovariate
        self.base = base
        self.multiplier = multiplier
        self.cap = cap

    def delay(self, consecutive_failures: int) -> float:
        """Jittered delay after the N-th consecutive failure abort."""
        exponent = max(0, consecutive_failures - 1)
        mean = min(self.cap, self.base * self.multiplier ** exponent)
        if mean <= 0.0:
            return 0.0
        return self._draw(1.0 / mean)


class Source:
    """Generates per-transaction access specifications for terminals."""

    def __init__(
        self,
        config: WorkloadConfig,
        database: Database,
        streams: RandomStreams,
    ):
        self.config = config
        self.database = database
        self.streams = streams
        self._class_of_terminal = self._assign_classes()
        # Hot-path stream handles: the named-stream lookups below are
        # made once here instead of per draw.  Streams are seeded by
        # name, so grabbing them eagerly changes no draw sequence.
        self._page_count_stream = streams.get("page-count")
        self._page_choice_stream = streams.get("page-choice")
        self._write_coin_stream = streams.get("write-coin")
        self._inst_draw = streams.get("inst-per-page").expovariate
        self._think_draws = [
            streams.get(f"think-{terminal}").expovariate
            for terminal in range(config.num_terminals)
        ]
        self._inv_think = (
            1.0 / config.think_time if config.think_time > 0.0 else 0.0
        )

    def _assign_classes(self) -> List[TransactionClassConfig]:
        """Split terminals between classes by ClassFrac (deterministic)."""
        assignment: List[TransactionClassConfig] = []
        remaining = self.config.num_terminals
        for index, cls in enumerate(self.config.classes):
            if index == len(self.config.classes) - 1:
                quota = remaining
            else:
                quota = round(cls.terminal_fraction
                              * self.config.num_terminals)
                quota = min(quota, remaining)
            assignment.extend([cls] * quota)
            remaining -= quota
        # Rounding may leave terminals unassigned; give them to the
        # largest class so every terminal generates work.
        while len(assignment) < self.config.num_terminals:
            assignment.append(self.config.classes[0])
        return assignment[: self.config.num_terminals]

    def class_of(self, terminal: int) -> TransactionClassConfig:
        """The transaction class terminal ``terminal`` generates."""
        return self._class_of_terminal[terminal]

    def relation_of(self, terminal: int) -> int:
        """The relation this terminal's group accesses.

        Terminals are split into ``num_relations`` equal groups in
        terminal order (groups of 16 for the Table 4 defaults).
        """
        num_relations = self.database.num_relations
        return terminal * num_relations // self.config.num_terminals

    def generate(self, terminal: int) -> AccessSpec:
        """Draw the access specification for a new transaction."""
        cls = self.class_of(terminal)
        relation = self.relation_of(terminal)
        partitions = self._choose_partitions(cls, relation)
        page_accesses: List[PageAccess] = []
        for partition in partitions:
            page_accesses.extend(
                self._draw_partition_accesses(cls, relation, partition)
            )
        placed = self._place_accesses(page_accesses)
        cohorts = self._group_into_cohorts(placed)
        return AccessSpec(relation=relation, cohorts=tuple(cohorts))

    def _place_accesses(
        self, accesses: Sequence[PageAccess]
    ) -> List[tuple]:
        """Assign each access to node(s): read-one / write-all.

        Without replication every access goes to the page's single
        node.  With copies > 1 the read happens at one randomly chosen
        copy; an update additionally produces an install-only write
        access at every other copy site.
        """
        placed: List[tuple] = []
        for access in accesses:
            copy_nodes = self.database.nodes_of_page(access.page)
            if len(copy_nodes) == 1:
                placed.append((copy_nodes[0], access))
                continue
            read_index = self.streams.uniform_int(
                "copy-choice", 0, len(copy_nodes) - 1
            )
            placed.append((copy_nodes[read_index], access))
            if access.is_update:
                for index, node in enumerate(copy_nodes):
                    if index == read_index:
                        continue
                    placed.append(
                        (
                            node,
                            PageAccess(
                                page=access.page,
                                is_update=True,
                                install_only=True,
                            ),
                        )
                    )
        return placed

    def _choose_partitions(
        self, cls: TransactionClassConfig, relation: int
    ) -> Sequence[int]:
        """FileCount/FileProb: which partitions the transaction touches."""
        total = self.database.config.partitions_per_relation
        count = min(cls.file_count, total)
        if count == total:
            return range(total)
        chosen = self.streams.sample_without_replacement(
            "file-choice", total, count
        )
        return sorted(chosen)

    def _draw_partition_accesses(
        self, cls: TransactionClassConfig, relation: int, partition: int
    ) -> List[PageAccess]:
        """Draw the page reads (and update flags) for one partition."""
        num_pages = self._page_count_stream.randint(
            cls.min_pages_per_file, cls.max_pages_per_file
        )
        pages_per_partition = self.database.pages_per_partition
        num_pages = min(num_pages, pages_per_partition)
        page_indices = self._page_choice_stream.sample(
            range(pages_per_partition), num_pages
        )
        write_probability = cls.write_probability
        coin = self._write_coin_stream.random
        accesses = []
        for index in page_indices:
            page = PageId(relation, partition, index)
            # Mirrors RandomStreams.bernoulli: degenerate probabilities
            # consume no draw.
            if write_probability <= 0.0:
                is_update = False
            elif write_probability >= 1.0:
                is_update = True
            else:
                is_update = coin() < write_probability
            accesses.append(PageAccess(page=page, is_update=is_update))
        return accesses

    def _group_into_cohorts(
        self, placed: Sequence[tuple]
    ) -> List[CohortSpec]:
        """Group (node, access) pairs into one cohort per node."""
        by_node: dict[int, List[PageAccess]] = {}
        for node, access in placed:
            by_node.setdefault(node, []).append(access)
        return [
            CohortSpec(node=node, accesses=tuple(node_accesses))
            for node, node_accesses in sorted(by_node.items())
        ]

    def think_time(self, terminal: int) -> float:
        """Draw an exponential think time (0 when the mean is 0)."""
        if self.config.think_time <= 0.0:
            return 0.0
        return self._think_draws[terminal](self._inv_think)

    def page_processing_instructions(
        self, cls: TransactionClassConfig
    ) -> float:
        """Exponential per-page instruction count (mean InstPerPage)."""
        mean = cls.inst_per_page
        if mean <= 0.0:
            return 0.0
        return self._inst_draw(1.0 / mean)
