"""The workload source (paper §3.2, Table 2).

The source generates the access specification for each new transaction.
The paper's workload: 128 terminals attached to the host, divided into
groups of 16, terminals in each group generating transactions that
access a common relation.  A transaction touches *every* partition of
its relation (FileCount = partitions per relation, FileProb uniform),
reading ``NumPages`` pages per partition on average — the actual count
drawn uniformly from [mean/2, 3*mean/2] (4..12 for the default 8,
footnote 12) — and updating each read page with WriteProb.

Crucially, *"the nature of transaction access streams is independent of
data placement and machine size"* (footnote 8): the same pages are drawn
regardless of where partitions live, and only the grouping of accesses
into cohorts changes with placement.  The source therefore draws page
accesses per partition first and groups them by node afterwards.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple

from repro.core.config import TransactionClassConfig, WorkloadConfig
from repro.core.database import Database, PageId
from repro.core.tracing import EventKind
from repro.core.transaction import AccessSpec, CohortSpec, PageAccess, \
    Transaction
from repro.sim.streams import RandomStreams

__all__ = [
    "AggregatedTerminalSource",
    "RetryBackoff",
    "Source",
    "aggregated_terminals_default",
]


def aggregated_terminals_default() -> bool:
    """Aggregated arrivals are on unless ``REPRO_WORKLOAD_AGG=0``.

    The toggle selects between :class:`AggregatedTerminalSource` (one
    batched arrival source for the host's terminal population) and the
    original resident one-Process-per-terminal loop in
    :class:`~repro.core.transaction_manager.TransactionManager`.  Both
    are bit-identical — the determinism suite proves it — so this is a
    memory/speed choice, not a model choice.
    """
    return os.environ.get("REPRO_WORKLOAD_AGG", "1") != "0"


class RetryBackoff:
    """Terminal-level exponential backoff for failure-induced aborts.

    When a transaction dies to an injected failure (a ``fault-``
    prefixed abort reason) the terminal retries after a jittered
    exponential delay whose mean doubles — by ``multiplier`` — with
    each consecutive failure, capped at ``cap``.  The jitter is drawn
    from the dedicated ``fault-retry-backoff`` stream, so backoff
    never perturbs the failure-free draw sequences.  Constructed only
    when fault injection is active.
    """

    def __init__(self, stream, base: float, multiplier: float,
                 cap: float):
        self._draw = stream.expovariate
        self.base = base
        self.multiplier = multiplier
        self.cap = cap

    def delay(self, consecutive_failures: int) -> float:
        """Jittered delay after the N-th consecutive failure abort."""
        exponent = max(0, consecutive_failures - 1)
        mean = min(self.cap, self.base * self.multiplier ** exponent)
        if mean <= 0.0:
            return 0.0
        return self._draw(1.0 / mean)


class Source:
    """Generates per-transaction access specifications for terminals."""

    def __init__(
        self,
        config: WorkloadConfig,
        database: Database,
        streams: RandomStreams,
    ):
        self.config = config
        self.database = database
        self.streams = streams
        self._class_bounds = self._assign_class_bounds()
        # Hot-path stream handles: the named-stream lookups below are
        # made once here instead of per draw.  Streams are seeded by
        # name, so grabbing them eagerly changes no draw sequence.
        self._page_count_stream = streams.get(
            "page-count", owner="workload"
        )
        self._page_choice_stream = streams.get(
            "page-choice", owner="workload"
        )
        self._write_coin_stream = streams.get(
            "write-coin", owner="workload"
        )
        self._inst_draw = streams.get(
            "inst-per-page", owner="workload"
        ).expovariate
        # Zipf-skewed page choice (access_skew > 0): cumulative-weight
        # tables per (theta, population) and the dedicated draw stream,
        # both created on first skewed draw so uniform workloads touch
        # neither — the default path stays bit-identical to the paper.
        self._skew_tables: Dict[Tuple[float, int], List[float]] = {}
        self._skew_draw = None
        # Per-terminal think-stream handles, created on first draw.  At
        # 10^5+ terminals, materialising every stream up front costs
        # O(terminals) startup work for terminals that may never think;
        # laziness changes no draw sequence (streams are seeded by
        # name, not by creation order).
        self._think_draws: Dict[int, object] = {}
        self._inv_think = (
            1.0 / config.think_time if config.think_time > 0.0 else 0.0
        )

    def _assign_class_bounds(self) -> List[int]:
        """Split terminals between classes by ClassFrac (deterministic).

        Returns cumulative terminal-count boundaries — one per class —
        so :meth:`class_of` is a bisect over O(num_classes) ints
        instead of an indexed O(num_terminals) materialised list.
        Quotas follow the paper's rule: each class gets
        ``round(ClassFrac * terminals)`` capped by what remains, and
        the last class absorbs the remainder so every terminal
        generates work.
        """
        bounds: List[int] = []
        assigned = 0
        remaining = self.config.num_terminals
        for index, cls in enumerate(self.config.classes):
            if index == len(self.config.classes) - 1:
                quota = remaining
            else:
                quota = round(cls.terminal_fraction
                              * self.config.num_terminals)
                quota = min(quota, remaining)
            assigned += quota
            remaining -= quota
            bounds.append(assigned)
        return bounds

    def class_of(self, terminal: int) -> TransactionClassConfig:
        """The transaction class terminal ``terminal`` generates."""
        return self.config.classes[
            bisect_right(self._class_bounds, terminal)
        ]

    def relation_of(self, terminal: int) -> int:
        """The relation this terminal's group accesses.

        Terminals are split into ``num_relations`` equal groups in
        terminal order (groups of 16 for the Table 4 defaults).
        """
        num_relations = self.database.num_relations
        return terminal * num_relations // self.config.num_terminals

    def generate(self, terminal: int) -> AccessSpec:
        """Draw the access specification for a new transaction."""
        cls = self.class_of(terminal)
        relation = self.relation_of(terminal)
        partitions = self._choose_partitions(cls, relation)
        page_accesses: List[PageAccess] = []
        for partition in partitions:
            page_accesses.extend(
                self._draw_partition_accesses(cls, relation, partition)
            )
        placed = self._place_accesses(page_accesses)
        cohorts = self._group_into_cohorts(placed)
        return AccessSpec(relation=relation, cohorts=tuple(cohorts))

    def _place_accesses(
        self, accesses: Sequence[PageAccess]
    ) -> List[tuple]:
        """Assign each access to node(s): read-one / write-all.

        Without replication every access goes to the page's single
        node.  With copies > 1 the read happens at one randomly chosen
        copy; an update additionally produces an install-only write
        access at every other copy site.
        """
        placed: List[tuple] = []
        for access in accesses:
            copy_nodes = self.database.nodes_of_page(access.page)
            if len(copy_nodes) == 1:
                placed.append((copy_nodes[0], access))
                continue
            read_index = self.streams.uniform_int(
                "copy-choice", 0, len(copy_nodes) - 1,
                owner="workload",
            )
            placed.append((copy_nodes[read_index], access))
            if access.is_update:
                for index, node in enumerate(copy_nodes):
                    if index == read_index:
                        continue
                    placed.append(
                        (
                            node,
                            PageAccess(
                                page=access.page,
                                is_update=True,
                                install_only=True,
                            ),
                        )
                    )
        return placed

    def _choose_partitions(
        self, cls: TransactionClassConfig, relation: int
    ) -> Sequence[int]:
        """FileCount/FileProb: which partitions the transaction touches."""
        total = self.database.config.partitions_per_relation
        count = min(cls.file_count, total)
        if count == total:
            return range(total)
        chosen = self.streams.sample_without_replacement(
            "file-choice", total, count, owner="workload"
        )
        return sorted(chosen)

    def _draw_partition_accesses(
        self, cls: TransactionClassConfig, relation: int, partition: int
    ) -> List[PageAccess]:
        """Draw the page reads (and update flags) for one partition."""
        num_pages = self._page_count_stream.randint(
            cls.min_pages_per_file, cls.max_pages_per_file
        )
        pages_per_partition = self.database.pages_per_partition
        num_pages = min(num_pages, pages_per_partition)
        if cls.access_skew > 0.0:
            page_indices = self._draw_skewed_indices(
                cls.access_skew, pages_per_partition, num_pages
            )
        else:
            page_indices = self._page_choice_stream.sample(
                range(pages_per_partition), num_pages
            )
        write_probability = cls.write_probability
        coin = self._write_coin_stream.random
        accesses = []
        for index in page_indices:
            page = PageId(relation, partition, index)
            # Mirrors RandomStreams.bernoulli: degenerate probabilities
            # consume no draw.
            if write_probability <= 0.0:
                is_update = False
            elif write_probability >= 1.0:
                is_update = True
            else:
                is_update = coin() < write_probability
            accesses.append(PageAccess(page=page, is_update=is_update))
        return accesses

    def _zipf_cumulative(
        self, theta: float, population: int
    ) -> List[float]:
        """Cumulative (unnormalized) Zipf(theta) weights over ranks.

        Rank r (page index r, zero-based) has weight 1/(r+1)^theta, so
        low page indices are the hot keys.  Tables are memoized per
        (theta, population) — one O(population) pass per distinct
        class/partition-size pairing.
        """
        table = self._skew_tables.get((theta, population))
        if table is None:
            table = []
            total = 0.0
            for rank in range(population):
                total += 1.0 / float(rank + 1) ** theta
                table.append(total)
            self._skew_tables[(theta, population)] = table
        return table

    def _draw_skewed_indices(
        self, theta: float, population: int, count: int
    ) -> List[int]:
        """``count`` distinct Zipf(theta)-distributed page indices.

        Inverse-CDF draws from the dedicated ``page-skew`` stream with
        rejection of duplicates, so the result mirrors the uniform
        path's sample-without-replacement contract.  Every draw comes
        from ``page-skew`` only: skewed classes never consume
        ``page-choice`` draws, and uniform classes never consume
        ``page-skew`` draws.
        """
        if count >= population:
            return list(range(population))
        if self._skew_draw is None:
            self._skew_draw = self.streams.get(
                "page-skew", owner="workload"
            ).random
        table = self._zipf_cumulative(theta, population)
        total = table[-1]
        draw = self._skew_draw
        chosen: List[int] = []
        seen = set()
        while len(chosen) < count:
            index = bisect_right(table, draw() * total)
            if index >= population:
                index = population - 1
            if index in seen:
                continue
            seen.add(index)
            chosen.append(index)
        return chosen

    def _group_into_cohorts(
        self, placed: Sequence[tuple]
    ) -> List[CohortSpec]:
        """Group (node, access) pairs into one cohort per node."""
        by_node: dict[int, List[PageAccess]] = {}
        for node, access in placed:
            by_node.setdefault(node, []).append(access)
        return [
            CohortSpec(node=node, accesses=tuple(node_accesses))
            for node, node_accesses in sorted(by_node.items())
        ]

    def think_time(self, terminal: int) -> float:
        """Draw an exponential think time (0 when the mean is 0)."""
        if self.config.think_time <= 0.0:
            return 0.0
        draw = self._think_draws.get(terminal)
        if draw is None:
            draw = self.streams.get(
                f"think-{terminal}", owner="workload"
            ).expovariate
            self._think_draws[terminal] = draw
        return draw(self._inv_think)

    def page_processing_instructions(
        self, cls: TransactionClassConfig
    ) -> float:
        """Exponential per-page instruction count (mean InstPerPage)."""
        mean = cls.inst_per_page
        if mean <= 0.0:
            return 0.0
        return self._inst_draw(1.0 / mean)


class _TerminalWatcher:
    """Process-protocol shim subscribing a terminal to its transaction.

    Replaces the resident terminal Process's ``yield txn_process`` in
    aggregated mode: implements just enough of the process protocol —
    ``_alive``/``_waiting_on`` for the deferred-delivery check,
    ``_resume`` for normal completion, and the ``_generator.throw`` /
    ``_step`` pair for the exception path of
    :meth:`Process._notify_step` — to be notified when the transaction
    process finishes.  A resident terminal would die with the same
    unobserved exception the transaction re-raised; the shim mirrors
    that by recording a crash under the same ``terminal-N`` name.
    """

    __slots__ = ("owner", "terminal", "name", "_alive", "_waiting_on")

    def __init__(self, owner: "AggregatedTerminalSource",
                 terminal: int, process) -> None:
        self.owner = owner
        self.terminal = terminal
        self.name = f"terminal-{terminal}"
        self._alive = True
        self._waiting_on = process
        process._subscribe(self)

    @property
    def _generator(self) -> "_TerminalWatcher":
        return self

    def throw(self, exception: BaseException) -> None:
        raise exception  # pragma: no cover - marker, never driven

    def _resume(self, value) -> None:
        self._alive = False
        self._waiting_on = None
        self.owner._transaction_finished(self.terminal)

    def _step(self, advance, argument) -> None:
        # Only reached when the transaction process died with an
        # exception (Process._notify_step calls _step(throw, exc)).
        self._alive = False
        self._waiting_on = None
        self.owner.env._record_crash(self, argument)


class AggregatedTerminalSource:
    """Batched arrival source: the host's terminals without Processes.

    The resident implementation keeps one generator Process alive per
    terminal, cycling think → generate → run → think; every idle
    terminal therefore holds a suspended generator frame, a Process
    object, and a pooled Timeout on top of its pending think event.  At
    the paper's 128 terminals that is noise; at the ROADMAP's 10⁵–10⁶
    it dominates memory and startup time.

    This source keeps only a scheduled arrival handle per idle terminal
    (a single pooled ``ScheduledCallback``) and drives the whole
    population with plain callbacks.  It is *bit-identical* to the
    resident loop, by construction:

    * Per-terminal think times come from the same ``think-{terminal}``
      streams, drawn at the same dispatch points: the resident loop
      draws inside the process-notification step after a transaction
      finishes (and inside the terminal's start step at t=0); this
      source draws inside the watcher-resume step (and inside its boot
      step at t=0).  Same global order, same streams, same sequences.
    * Shared-stream draws (``page-count``, ``page-choice``,
      ``write-coin``, ``file-choice``…) happen in ``generate`` at the
      arrival instant, inside the arrival callback — exactly where the
      resident terminal's resumed generator made them.
    * Kernel sequence numbers are consumed one-for-one: boot consumes
      one ``schedule_now`` per terminal exactly as ``Process.__init__``
      did; each think consumes one ``schedule``; each arrival consumes
      one ``schedule_now`` (transaction-process start); each completion
      consumes one ``schedule_now`` (watcher notification).  The global
      ``(time, seq)`` schedule — and therefore every simulation result
      — is unchanged.

    Terminals all attach to the host node in this model (paper §3.2),
    so one source per simulation is one source per (host) node.
    ``REPRO_WORKLOAD_AGG=0`` reverts to the resident loop.
    """

    def __init__(self, env, source: Source, manager) -> None:
        self.env = env
        self.source = source
        #: The owning TransactionManager (transaction execution, metrics
        #: and tracing stay there; only arrival generation moves here).
        self.manager = manager

    def start(self) -> None:
        """Boot every terminal (one zero-delay callback each).

        Mirrors the resident path, where ``Process.__init__`` schedules
        one start step per terminal at the current time.
        """
        env = self.env
        boot = self._boot
        for terminal in range(self.source.config.num_terminals):
            env.schedule_now(boot, terminal)

    def _boot(self, terminal: int) -> None:
        think = self.source.think_time(terminal)
        if think > 0.0:
            self.env.schedule(think, self._arrive, terminal)
        else:
            self._arrive(terminal)

    def _arrive(self, terminal: int) -> None:
        """The terminal submits: draw the spec, start the transaction."""
        manager = self.manager
        source = self.source
        spec = source.generate(terminal)
        transaction = Transaction(
            terminal,
            source.class_of(terminal),
            spec,
            self.env.now,
        )
        manager.active_transactions += 1
        if manager._tracing:
            manager._trace(EventKind.ORIGINATED, transaction)
        process = self.env.process(
            manager._run_transaction(transaction),
            name=f"txn-{transaction.tid}",
        )
        _TerminalWatcher(self, terminal, process)

    def _transaction_finished(self, terminal: int) -> None:
        self.manager.active_transactions -= 1
        think = self.source.think_time(terminal)
        if think > 0.0:
            self.env.schedule(think, self._arrive, terminal)
        else:
            self._arrive(terminal)
