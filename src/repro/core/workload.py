"""The workload source (paper §3.2, Table 2).

The source generates the access specification for each new transaction.
The paper's workload: 128 terminals attached to the host, divided into
groups of 16, terminals in each group generating transactions that
access a common relation.  A transaction touches *every* partition of
its relation (FileCount = partitions per relation, FileProb uniform),
reading ``NumPages`` pages per partition on average — the actual count
drawn uniformly from [mean/2, 3*mean/2] (4..12 for the default 8,
footnote 12) — and updating each read page with WriteProb.

Crucially, *"the nature of transaction access streams is independent of
data placement and machine size"* (footnote 8): the same pages are drawn
regardless of where partitions live, and only the grouping of accesses
into cohorts changes with placement.  The source therefore draws page
accesses per partition first and groups them by node afterwards.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.config import TransactionClassConfig, WorkloadConfig
from repro.core.database import Database, PageId
from repro.core.transaction import AccessSpec, CohortSpec, PageAccess
from repro.sim.streams import RandomStreams

__all__ = ["Source"]


class Source:
    """Generates per-transaction access specifications for terminals."""

    def __init__(
        self,
        config: WorkloadConfig,
        database: Database,
        streams: RandomStreams,
    ):
        self.config = config
        self.database = database
        self.streams = streams
        self._class_of_terminal = self._assign_classes()

    def _assign_classes(self) -> List[TransactionClassConfig]:
        """Split terminals between classes by ClassFrac (deterministic)."""
        assignment: List[TransactionClassConfig] = []
        remaining = self.config.num_terminals
        for index, cls in enumerate(self.config.classes):
            if index == len(self.config.classes) - 1:
                quota = remaining
            else:
                quota = round(cls.terminal_fraction
                              * self.config.num_terminals)
                quota = min(quota, remaining)
            assignment.extend([cls] * quota)
            remaining -= quota
        # Rounding may leave terminals unassigned; give them to the
        # largest class so every terminal generates work.
        while len(assignment) < self.config.num_terminals:
            assignment.append(self.config.classes[0])
        return assignment[: self.config.num_terminals]

    def class_of(self, terminal: int) -> TransactionClassConfig:
        """The transaction class terminal ``terminal`` generates."""
        return self._class_of_terminal[terminal]

    def relation_of(self, terminal: int) -> int:
        """The relation this terminal's group accesses.

        Terminals are split into ``num_relations`` equal groups in
        terminal order (groups of 16 for the Table 4 defaults).
        """
        num_relations = self.database.num_relations
        return terminal * num_relations // self.config.num_terminals

    def generate(self, terminal: int) -> AccessSpec:
        """Draw the access specification for a new transaction."""
        cls = self.class_of(terminal)
        relation = self.relation_of(terminal)
        partitions = self._choose_partitions(cls, relation)
        page_accesses: List[PageAccess] = []
        for partition in partitions:
            page_accesses.extend(
                self._draw_partition_accesses(cls, relation, partition)
            )
        placed = self._place_accesses(page_accesses)
        cohorts = self._group_into_cohorts(placed)
        return AccessSpec(relation=relation, cohorts=tuple(cohorts))

    def _place_accesses(
        self, accesses: Sequence[PageAccess]
    ) -> List[tuple]:
        """Assign each access to node(s): read-one / write-all.

        Without replication every access goes to the page's single
        node.  With copies > 1 the read happens at one randomly chosen
        copy; an update additionally produces an install-only write
        access at every other copy site.
        """
        placed: List[tuple] = []
        for access in accesses:
            copy_nodes = self.database.nodes_of_page(access.page)
            if len(copy_nodes) == 1:
                placed.append((copy_nodes[0], access))
                continue
            read_index = self.streams.uniform_int(
                "copy-choice", 0, len(copy_nodes) - 1
            )
            placed.append((copy_nodes[read_index], access))
            if access.is_update:
                for index, node in enumerate(copy_nodes):
                    if index == read_index:
                        continue
                    placed.append(
                        (
                            node,
                            PageAccess(
                                page=access.page,
                                is_update=True,
                                install_only=True,
                            ),
                        )
                    )
        return placed

    def _choose_partitions(
        self, cls: TransactionClassConfig, relation: int
    ) -> Sequence[int]:
        """FileCount/FileProb: which partitions the transaction touches."""
        total = self.database.config.partitions_per_relation
        count = min(cls.file_count, total)
        if count == total:
            return range(total)
        chosen = self.streams.sample_without_replacement(
            "file-choice", total, count
        )
        return sorted(chosen)

    def _draw_partition_accesses(
        self, cls: TransactionClassConfig, relation: int, partition: int
    ) -> List[PageAccess]:
        """Draw the page reads (and update flags) for one partition."""
        num_pages = self.streams.uniform_int(
            "page-count", cls.min_pages_per_file, cls.max_pages_per_file
        )
        num_pages = min(num_pages, self.database.pages_per_partition)
        page_indices = self.streams.sample_without_replacement(
            "page-choice", self.database.pages_per_partition, num_pages
        )
        accesses = []
        for index in page_indices:
            page = PageId(relation, partition, index)
            is_update = self.streams.bernoulli(
                "write-coin", cls.write_probability
            )
            accesses.append(PageAccess(page=page, is_update=is_update))
        return accesses

    def _group_into_cohorts(
        self, placed: Sequence[tuple]
    ) -> List[CohortSpec]:
        """Group (node, access) pairs into one cohort per node."""
        by_node: dict[int, List[PageAccess]] = {}
        for node, access in placed:
            by_node.setdefault(node, []).append(access)
        return [
            CohortSpec(node=node, accesses=tuple(node_accesses))
            for node, node_accesses in sorted(by_node.items())
        ]

    def think_time(self, terminal: int) -> float:
        """Draw an exponential think time (0 when the mean is 0)."""
        return self.streams.exponential(
            f"think-{terminal}", self.config.think_time
        )

    def page_processing_instructions(
        self, cls: TransactionClassConfig
    ) -> float:
        """Exponential per-page instruction count (mean InstPerPage)."""
        return self.streams.exponential("inst-per-page", cls.inst_per_page)
