"""The transaction manager (paper §2.1, §3.3).

Models the execution of distributed transactions:

* A **terminal** loops: think (exponential), originate a transaction,
  wait for its successful completion.
* The **coordinator** runs at the host node.  Per attempt it pays a
  process-startup CPU cost, sends "load cohort" messages to the
  processing nodes, waits for cohorts (all at once when parallel, one
  after another when sequential), then drives a centralized two-phase
  commit: prepare messages out, votes back, commit messages out, acks
  back.  The same protocol is used for all concurrency control
  algorithms.
* A **cohort** runs at its processing node.  It pays a startup cost,
  then performs its accesses: each read is a concurrency control
  request, a disk I/O, and a burst of CPU; each update adds a write
  request and another CPU burst, with the disk write-back happening
  asynchronously after commit (``InstPerUpdate`` CPU to initiate).

Aborts travel as messages: whoever decides a transaction must die
(wound, deadlock victim, timestamp rejection, failed certification)
notifies the coordinator at the host, which broadcasts abort messages to
all loaded cohorts and awaits their acknowledgements.  Cohorts keep
holding locks — and keep burning resources — until the abort message
reaches their node, which is what makes aborts genuinely expensive under
8-way parallelism, as the paper stresses.  After aborting, the
coordinator waits one (exponentially distributed) average observed
response time before rerunning the same transaction, as in [Agra87a].
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cc.base import CCAlgorithm, NodeCCManager, RequestResult
from repro.core.config import SimulationConfig
from repro.core.database import PageId
from repro.core.metrics import MetricsCollector
from repro.core.network import HOST_NODE, NetworkManager
from repro.core.node import Node
from repro.core.tracing import EventKind
from repro.core.transaction import (
    Cohort,
    Transaction,
    TransactionState,
)
from repro.core.workload import AggregatedTerminalSource, RetryBackoff, \
    Source, aggregated_terminals_default
from repro.sim.kernel import Environment, Interrupt, Mailbox
from repro.sim.stats import Tally
from repro.sim.streams import RandomStreams

__all__ = ["TransactionManager"]

#: Control message verbs delivered to cohort mailboxes.
_PREPARE = "prepare"
_COMMIT = "commit"


class TransactionManager:
    """Drives terminals, coordinators, and cohorts."""

    def __init__(
        self,
        env: Environment,
        config: SimulationConfig,
        host: Node,
        proc_nodes: List[Node],
        network: NetworkManager,
        cc_algorithm: CCAlgorithm,
        metrics: MetricsCollector,
        streams: RandomStreams,
        source: Source,
        auditor=None,
        tracer=None,
        fault_injector=None,
    ):
        self.env = env
        self.config = config
        self.host = host
        self.proc_nodes = proc_nodes
        self.network = network
        self.cc_algorithm = cc_algorithm
        self.metrics = metrics
        self.streams = streams
        self.source = source
        #: Optional serializability auditor (see repro.core.audit).
        self.auditor = auditor
        #: Optional lifecycle tracer (see repro.core.tracing).
        self.tracer = tracer
        #: Hoisted tracer flag checked at the hot call sites so that
        #: untraced runs (the normal case) skip the _trace call entirely.
        self._tracing = tracer is not None
        #: Running average of observed response times; drives the
        #: restart delay.  Deliberately never reset at warmup — it is a
        #: control variable of the model, not a reported metric.
        self._observed_response = Tally()
        self.active_transactions = 0
        # Per-access constants hoisted off the config object chains.
        self._inst_per_startup = config.resources.inst_per_startup
        self._inst_per_cc_request = config.inst_per_cc_request
        self._inst_per_update = config.resources.inst_per_update
        #: Fault injector (``None`` keeps every 2PC wait exactly the
        #: failure-free protocol; see ``repro.faults``).
        self.faults = fault_injector
        if fault_injector is not None:
            fault_config = fault_injector.config
            self._execution_timeout = fault_config.execution_timeout
            self._prepare_timeout = fault_config.prepare_timeout
            self._decision_timeout = fault_config.decision_timeout
            self._ack_timeout = fault_config.ack_timeout
            self._retry_backoff = RetryBackoff(
                streams.get(
                    "fault-retry-backoff",
                    owner="transaction-manager",
                ),
                fault_config.retry_backoff_base,
                fault_config.retry_backoff_multiplier,
                fault_config.retry_backoff_cap,
            )
        else:
            self._retry_backoff = None

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Launch the terminal population.

        Default: one :class:`AggregatedTerminalSource` drives every
        terminal with plain callbacks (memory stays O(in-flight
        transactions)).  ``REPRO_WORKLOAD_AGG=0`` reverts to the
        original resident loop — one generator Process per terminal —
        which the determinism suite keeps bit-identical to the
        aggregated source.
        """
        if aggregated_terminals_default():
            self._arrival_source = AggregatedTerminalSource(
                self.env, self.source, self
            )
            self._arrival_source.start()
            return
        self._arrival_source = None
        # The verification fallback is the one sanctioned resident
        # spawn site.
        for terminal in range(self.config.workload.num_terminals):
            self.env.process(  # simlint: ignore[resident-terminal-process]
                self._terminal_loop(terminal),
                name=f"terminal-{terminal}",
            )

    def _trace(
        self,
        kind,
        transaction: Transaction,
        node: Optional[int] = None,
        detail=None,
    ) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                self.env.now,
                kind,
                transaction.tid,
                transaction.attempt,
                node,
                detail,
            )

    def _terminal_loop(self, terminal: int):
        while True:
            think = self.source.think_time(terminal)
            if think > 0.0:
                yield self.env.timeout(think)
            spec = self.source.generate(terminal)
            transaction = Transaction(
                terminal,
                self.source.class_of(terminal),
                spec,
                self.env.now,
            )
            self.active_transactions += 1
            if self._tracing:
                self._trace(EventKind.ORIGINATED, transaction)
            yield self.env.process(
                self._run_transaction(transaction),
                name=f"txn-{transaction.tid}",
            )
            self.active_transactions -= 1

    # ------------------------------------------------------------------
    # Coordinator
    # ------------------------------------------------------------------

    def _run_transaction(self, transaction: Transaction):
        """Run one transaction to successful completion (with restarts)."""
        while True:
            self.cc_algorithm.assign_timestamps(
                transaction, self.env.now
            )
            transaction.begin_attempt()
            if self._tracing:
                self._trace(EventKind.ATTEMPT_STARTED, transaction)
            committed = yield self.env.process(
                self._attempt(transaction),
                name=f"coord-{transaction.tid}.{transaction.attempt}",
            )
            if committed:
                response = self.env.now - transaction.origination_time
                self.metrics.record_commit(response)
                if self.faults is not None and self.faults.degraded:
                    self.metrics.record_degraded_commit()
                if transaction.routed_class is not None:
                    self.metrics.record_class_commit(
                        transaction.routed_class,
                        transaction.routed_algorithm,
                        response,
                    )
                self.cc_algorithm.on_commit(
                    transaction, response, self.env.now
                )
                self._observed_response.record(response)
                if self.auditor is not None:
                    self.auditor.on_committed(transaction)
                self._trace(
                    EventKind.COMMITTED, transaction, detail=response
                )
                return
            transaction.num_aborts += 1
            self.metrics.record_abort(transaction.abort_reason)
            if transaction.routed_class is not None:
                self.metrics.record_class_abort(
                    transaction.routed_class
                )
            self.cc_algorithm.on_abort(
                transaction, transaction.abort_reason, self.env.now
            )
            if self.auditor is not None:
                self.auditor.on_aborted(transaction)
            self._trace(
                EventKind.ABORTED,
                transaction,
                detail=transaction.abort_reason,
            )
            if (
                self._retry_backoff is not None
                and transaction.abort_reason is not None
                and transaction.abort_reason.startswith("fault-")
            ):
                # Failure-induced abort: exponential backoff instead
                # of the observed-response-time restart delay, so a
                # down node is not hammered by immediate retries.
                transaction.fault_retries += 1
                delay = self._retry_backoff.delay(
                    transaction.fault_retries
                )
            else:
                transaction.fault_retries = 0
                delay = self._restart_delay()
            self._trace(
                EventKind.RESTART_SCHEDULED, transaction, detail=delay
            )
            if delay > 0.0:
                yield self.env.timeout(delay)

    def _restart_delay(self) -> float:
        """Exponential delay, mean = observed average response time."""
        if self._observed_response.count:
            mean = self._observed_response.mean
        else:
            mean = self.config.workload.initial_restart_delay
        return self.streams.exponential(
            "restart-delay", mean, owner="transaction-manager"
        )

    def _attempt(self, transaction: Transaction):
        """One execution attempt; returns True on commit."""
        env = self.env
        transaction.abort_event = env.event()
        # Coordinator process startup at the host.
        yield from self.host.resources.execute(self._inst_per_startup)
        cohorts = transaction.cohorts
        for cohort in cohorts:
            cohort.done_event = env.event()
            cohort.vote_event = env.event()
            cohort.commit_ack_event = env.event()
            cohort.abort_ack_event = env.event()
            cohort.mailbox = Mailbox(env)
        # ----- execution phase -----
        if transaction.parallel:
            for cohort in cohorts:
                self._post_load(cohort)
            all_done = env.all_of(
                [cohort.done_event for cohort in cohorts]
            )
            if self.faults is None:
                yield env.any_of([all_done, transaction.abort_event])
            else:
                yield from self._await_with_timeout(
                    transaction, all_done, self._execution_timeout,
                    "fault-execution-timeout", record_blocked=False,
                )
        else:
            for cohort in cohorts:
                self._post_load(cohort)
                if self.faults is None:
                    yield env.any_of(
                        [cohort.done_event, transaction.abort_event]
                    )
                else:
                    yield from self._await_with_timeout(
                        transaction, cohort.done_event,
                        self._execution_timeout,
                        "fault-execution-timeout",
                        record_blocked=False,
                    )
                if transaction.abort_pending:
                    break
        if transaction.abort_pending:
            yield from self._abort_protocol(transaction)
            return False
        # ----- two-phase commit: phase one -----
        transaction.state = TransactionState.PREPARING
        self.cc_algorithm.assign_commit_timestamp(
            transaction, env.now
        )
        for cohort in cohorts:
            if self._tracing:
                self._trace(
                    EventKind.PREPARE_SENT, transaction, cohort.node
                )
            self._post_control(cohort, _PREPARE)
        all_votes = env.all_of(
            [cohort.vote_event for cohort in cohorts]
        )
        if self.faults is None:
            yield env.any_of([all_votes, transaction.abort_event])
        else:
            # Presumed abort: a vote lost to the network or a crashed
            # participant resolves to abort after prepare_timeout.
            yield from self._await_with_timeout(
                transaction, all_votes, self._prepare_timeout,
                "fault-prepare-timeout", record_blocked=True,
            )
        if transaction.abort_pending:
            yield from self._abort_protocol(transaction)
            return False
        if not all(
            cohort.vote_event.fired and cohort.vote_event.value
            for cohort in cohorts
        ):
            transaction.mark_abort("certification-failed")
            yield from self._abort_protocol(transaction)
            return False
        # ----- phase two: the decision is final -----
        transaction.state = TransactionState.COMMITTING
        for cohort in cohorts:
            self._post_control(cohort, _COMMIT)
        if self.faults is None:
            yield env.all_of(
                [cohort.commit_ack_event for cohort in cohorts]
            )
        else:
            yield from self._drive_decision(cohorts, commit=True)
        transaction.state = TransactionState.COMMITTED
        return True

    # ------------------------------------------------------------------
    # Fault-mode coordinator waits (never entered failure-free)
    # ------------------------------------------------------------------

    def _await_with_timeout(
        self, transaction, target, timeout, reason, record_blocked
    ):
        """Wait for ``target`` or the abort event, presuming abort when
        neither fires within ``timeout`` (lost message, crashed node).
        """
        env = self.env
        started = env.now
        index, _value = yield env.any_of(
            [target, transaction.abort_event, env.timeout(timeout)]
        )
        if index == 2 and not transaction.abort_pending:
            if record_blocked:
                self.metrics.record_blocked_2pc(env.now - started)
            transaction.mark_abort(reason)

    def _drive_decision(self, cohorts, commit):
        """Resend the final phase-two decision until every cohort acks.

        The decision is irrevocable, so the coordinator never gives
        up: each ``ack_timeout`` expiry re-posts the decision to the
        still-silent cohorts (their node may be down; the message is
        dropped and retried until recovery).  Terminates because every
        outage ends and resident crash state converts resends into
        recovery acknowledgements.
        """
        env = self.env

        def _ack(cohort):
            if commit:
                return cohort.commit_ack_event
            return cohort.abort_ack_event

        pending = [c for c in cohorts if not _ack(c).fired]
        started = env.now
        waited = False
        while pending:
            index, _value = yield env.any_of([
                env.all_of([_ack(c) for c in pending]),
                env.timeout(self._ack_timeout),
            ])
            if index == 0:
                break
            waited = True
            pending = [c for c in pending if not _ack(c).fired]
            for cohort in pending:
                if commit:
                    self._post_control(cohort, _COMMIT)
                else:
                    self.network.post(
                        HOST_NODE, cohort.node,
                        self._deliver_abort, cohort,
                    )
        if waited:
            # One span per stalled decision, not per resend round.
            self.metrics.record_blocked_2pc(env.now - started)

    # ------------------------------------------------------------------
    # Messages from coordinator to cohorts
    # ------------------------------------------------------------------

    def _post_load(self, cohort: Cohort) -> None:
        cohort.load_posted = True
        if self._tracing:
            self._trace(
                EventKind.COHORT_LOADED, cohort.transaction, cohort.node
            )
        self.network.post(
            HOST_NODE, cohort.node, self._deliver_load, cohort
        )

    def _deliver_load(self, cohort: Cohort) -> None:
        transaction = cohort.transaction
        if cohort.attempt != transaction.attempt:
            # Delayed past a restart (fault mode): a stale cohort must
            # not start and leak locks into the new attempt.
            return
        if transaction.abort_pending:
            # An abort raced ahead; the pending ABORT message (queued
            # behind this one) will clean up and acknowledge.
            return
        cohort.started = True
        if self._tracing:
            self._trace(
                EventKind.COHORT_STARTED, transaction, cohort.node
            )
        cohort.process = self.env.process(
            self._cohort_body(cohort),
            name=(
                f"cohort-{transaction.tid}.{transaction.attempt}"
                f"@{cohort.node}"
            ),
        )
        if self.faults is not None:
            self.faults.register_resident(cohort)

    def _post_control(self, cohort: Cohort, verb: str) -> None:
        self.network.post(
            HOST_NODE, cohort.node, self._deliver_control,
            (cohort, verb),
        )

    def _deliver_control(
        self, payload: Tuple[Cohort, str]
    ) -> None:
        cohort, verb = payload
        if cohort.attempt != cohort.transaction.attempt:
            return  # stale: delayed past a restart (fault mode)
        if (
            verb == _COMMIT
            and cohort.crashed
            and not cohort.commit_ack_event.fired
        ):
            # The node crashed after this cohort voted yes; the commit
            # decision is final, so the recovery manager REDOes from
            # the log and acknowledges on the cohort's behalf.
            self.network.post(
                cohort.node, HOST_NODE, self._deliver_commit_ack,
                cohort,
            )
            return
        if cohort.mailbox is not None:
            cohort.mailbox.put(verb)

    # ------------------------------------------------------------------
    # Messages from cohorts to coordinator
    # ------------------------------------------------------------------

    # The ``fired`` guards below make delivery idempotent: fault-mode
    # resends and recovery acknowledgements can produce duplicates.
    # Failure-free runs deliver each exactly once.

    @staticmethod
    def _deliver_done(cohort: Cohort) -> None:
        if not cohort.done_event.fired:
            cohort.done_event.succeed()

    @staticmethod
    def _deliver_vote(payload: Tuple[Cohort, bool]) -> None:
        cohort, vote = payload
        if not cohort.vote_event.fired:
            cohort.vote_event.succeed(vote)

    @staticmethod
    def _deliver_commit_ack(cohort: Cohort) -> None:
        if not cohort.commit_ack_event.fired:
            cohort.commit_ack_event.succeed()

    # ------------------------------------------------------------------
    # Abort path
    # ------------------------------------------------------------------

    def request_abort(
        self, transaction: Transaction, reason: str, from_node: int
    ) -> None:
        """CC entry point: ask the coordinator to abort ``transaction``.

        The request travels as a message from ``from_node`` to the host
        (unless it originates at the host itself); state checks repeat
        at delivery time, so wounds that arrive after the victim entered
        its second commit phase are correctly non-fatal.
        """
        if transaction.abort_pending or not transaction.abortable:
            return
        payload = (transaction, reason, transaction.attempt)
        self.network.post(
            from_node, HOST_NODE, self._deliver_abort_request, payload
        )

    def _deliver_abort_request(
        self, payload: Tuple[Transaction, str, int]
    ) -> None:
        transaction, reason, attempt = payload
        if transaction.attempt != attempt:
            return  # stale: the transaction already restarted
        if transaction.abort_pending or not transaction.abortable:
            return
        transaction.mark_abort(reason)
        self._trace(
            EventKind.ABORT_REQUESTED, transaction, detail=reason
        )
        if (
            transaction.abort_event is not None
            and not transaction.abort_event.fired
        ):
            transaction.abort_event.succeed()

    def _abort_protocol(self, transaction: Transaction):
        """Broadcast aborts to loaded cohorts; await acknowledgements."""
        transaction.state = TransactionState.ABORTING
        posted = [
            cohort
            for cohort in transaction.cohorts
            if cohort.load_posted
        ]
        for cohort in posted:
            self.network.post(
                HOST_NODE, cohort.node, self._deliver_abort, cohort
            )
        if posted:
            if self.faults is None:
                yield self.env.all_of(
                    [cohort.abort_ack_event for cohort in posted]
                )
            else:
                yield from self._drive_decision(posted, commit=False)
        transaction.state = TransactionState.ABORTED

    def _deliver_abort(self, cohort: Cohort) -> None:
        if cohort.attempt != cohort.transaction.attempt:
            # Stale (fault mode): the transaction already restarted and
            # the new attempt owns any locks under this transaction.
            return
        if cohort.process is not None and cohort.process.alive:
            cohort.process.interrupt("abort")
        manager = self._cc_manager(cohort.node)
        manager.abort(cohort)
        self.network.post(
            cohort.node, HOST_NODE, self._deliver_abort_ack, cohort
        )

    @staticmethod
    def _deliver_abort_ack(cohort: Cohort) -> None:
        if not cohort.abort_ack_event.fired:
            cohort.abort_ack_event.succeed()

    # ------------------------------------------------------------------
    # Cohorts
    # ------------------------------------------------------------------

    def _cc_manager(self, node: int) -> NodeCCManager:
        manager = self.proc_nodes[node].cc_manager
        assert manager is not None, "processing node lacks CC manager"
        return manager

    def _cohort_body(self, cohort: Cohort):
        transaction = cohort.transaction
        node = self.proc_nodes[cohort.node]
        resources = node.resources
        manager = self._cc_manager(cohort.node)
        try:
            # Cohort process startup at the processing node.
            yield from resources.execute(self._inst_per_startup)
            manager.register_cohort(cohort)
            for access in cohort.spec.accesses:
                if access.install_only:
                    # Write-all leg of a replicated update: write
                    # permission plus processing, no read, no disk
                    # read (the content comes from the reading copy).
                    granted = yield from self._cc_access(
                        cohort, manager, resources, access.page,
                        write=True,
                    )
                    if not granted:
                        self._report_local_reject(cohort)
                        return
                    yield from resources.execute(
                        self.source.page_processing_instructions(
                            transaction.class_config
                        )
                    )
                    continue
                granted = yield from self._cc_access(
                    cohort, manager, resources, access.page,
                    write=False,
                )
                if not granted:
                    self._report_local_reject(cohort)
                    return
                yield from resources.disk_read()
                yield from resources.execute(
                    self.source.page_processing_instructions(
                        transaction.class_config
                    )
                )
                if access.is_update:
                    granted = yield from self._cc_access(
                        cohort, manager, resources, access.page,
                        write=True,
                    )
                    if not granted:
                        self._report_local_reject(cohort)
                        return
                    yield from resources.execute(
                        self.source.page_processing_instructions(
                            transaction.class_config
                        )
                    )
            cohort.finished_work = True
            if self._tracing:
                self._trace(
                    EventKind.COHORT_DONE, transaction, cohort.node
                )
            self.network.post(
                cohort.node, HOST_NODE, self._deliver_done, cohort
            )
            # ----- two-phase commit, participant side -----
            # The PREPARE wait needs no monitoring even in fault mode:
            # until it votes the cohort is recoverable (a lost PREPARE
            # ends in the coordinator's prepare-timeout abort, whose
            # message interrupts this process), and most of the wait is
            # sibling cohorts still executing — not 2PC blocking.
            verb = yield cohort.mailbox.get()
            assert verb == _PREPARE, f"unexpected control {verb!r}"
            vote = manager.prepare(cohort)
            if self._tracing:
                self._trace(
                    EventKind.VOTED, transaction, cohort.node, vote
                )
            self.network.post(
                cohort.node, HOST_NODE, self._deliver_vote,
                (cohort, vote),
            )
            # Having voted yes, the cohort is in the 2PC window of
            # vulnerability: it cannot unilaterally decide, so a lost
            # decision leaves it genuinely blocked (until a resend
            # lands) — the span the availability metrics report.
            if self.faults is None:
                verb = yield cohort.mailbox.get()
            else:
                verb = yield from self._monitored_get(cohort)
            assert verb == _COMMIT, f"unexpected control {verb!r}"
            installed = manager.commit(cohort)
            if self.auditor is not None:
                self.auditor.on_installed(cohort, installed)
            yield from self._write_back(resources, installed)
            self.network.post(
                cohort.node, HOST_NODE, self._deliver_commit_ack,
                cohort,
            )
        except Interrupt:
            # Aborted by the coordinator (or the node crashed): CC
            # cleanup happened — or will — via the abort message or
            # the crash reset.
            return
        finally:
            if self.faults is not None:
                self.faults.forget_resident(cohort)

    def _monitored_get(self, cohort: Cohort):
        """Mailbox get with participant-side blocking detection.

        A participant that voted yes cannot unilaterally abort; when
        the decision message is lost it sits blocked on 2PC.  Each
        ``decision_timeout`` expiry re-arms the wait, and the total
        blocked span is recorded once delivery (or an interrupt) ends
        it.  Fault mode only.
        """
        env = self.env
        get_event = cohort.mailbox.get()
        started = env.now
        waited = False
        while True:
            index, value = yield env.any_of(
                [get_event, env.timeout(self._decision_timeout)]
            )
            if index == 0:
                if waited:
                    self.metrics.record_blocked_2pc(env.now - started)
                return value
            waited = True

    def _write_back(
        self, resources, pages: List[PageId]
    ):
        """Initiate the asynchronous post-commit disk writes."""
        for _page in pages:
            yield from resources.execute(self._inst_per_update)
            resources.initiate_async_write()

    def _cc_access(
        self,
        cohort: Cohort,
        manager: NodeCCManager,
        resources,
        page: PageId,
        write: bool,
    ):
        """One concurrency control request; returns True when granted."""
        if self._inst_per_cc_request > 0.0:
            yield from resources.execute(self._inst_per_cc_request)
        if write:
            response = manager.write_request(cohort, page)
        else:
            response = manager.read_request(cohort, page)
        if response.result is RequestResult.GRANTED:
            if not write and self.auditor is not None:
                self.auditor.on_read_granted(cohort, page)
            return True
        if response.result is RequestResult.REJECTED:
            return False
        assert response.event is not None
        blocked_at = self.env.now
        if self._tracing:
            self._trace(
                EventKind.BLOCKED,
                cohort.transaction,
                cohort.node,
                page,
            )
        outcome = yield response.event
        self.metrics.record_blocking(self.env.now - blocked_at)
        if cohort.transaction.routed_class is not None:
            self.metrics.record_class_blocking(
                cohort.transaction.routed_class
            )
        if self._tracing:
            self._trace(
                EventKind.UNBLOCKED,
                cohort.transaction,
                cohort.node,
                outcome,
            )
        granted = outcome is RequestResult.GRANTED
        if granted and not write and self.auditor is not None:
            self.auditor.on_read_granted(cohort, page)
        return granted

    def _report_local_reject(self, cohort: Cohort) -> None:
        """A cohort's own request was rejected: tell the coordinator."""
        transaction = cohort.transaction
        payload = (
            transaction,
            "timestamp-reject",
            transaction.attempt,
        )
        self.network.post(
            cohort.node,
            HOST_NODE,
            self._deliver_abort_request,
            payload,
        )
