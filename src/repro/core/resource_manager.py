"""Per-node resource manager (paper §3.4, Table 3).

Wraps one CPU and ``NumDisks`` disks, offering the services the
transaction and concurrency control managers consume:

* :meth:`execute` — processor-sharing CPU work, interruptible: when the
  waiting process is aborted mid-service the residual work is cancelled
  so the CPU is not burned on a dead cohort.
* :meth:`disk_read` — a synchronous page read on a randomly chosen disk
  (the paper assumes files are balanced over a node's disks, so each
  request picks a disk uniformly at random).  Queued reads are
  cancelled on interrupt; an in-service transfer completes (a seek
  cannot be abandoned) but the waiter stops waiting for it.
* :meth:`initiate_async_write` — the post-commit write-back: charges
  ``InstPerUpdate`` CPU and queues a high-priority disk write that
  nobody waits for.
"""

from __future__ import annotations

import random
from typing import List

from repro.sim.kernel import Environment, Interrupt
from repro.sim.resources import CPU, Disk, DiskRequestKind

__all__ = ["ResourceManager"]


class ResourceManager:
    """CPU and disk services for one node."""

    def __init__(
        self,
        env: Environment,
        node_id: int,
        cpu_mips: float,
        num_disks: int,
        min_disk_time: float,
        max_disk_time: float,
        disk_stream: random.Random,
        disk_choice_stream: random.Random,
        inst_per_update: float,
    ):
        self.env = env
        self.node_id = node_id
        self.cpu = CPU(env, cpu_mips, name=f"cpu[{node_id}]")
        self.disks: List[Disk] = [
            Disk(
                env,
                min_disk_time,
                max_disk_time,
                disk_stream,
                name=f"disk[{node_id}.{index}]",
            )
            for index in range(num_disks)
        ]
        self._disk_choice = disk_choice_stream
        self.inst_per_update = inst_per_update

    # ------------------------------------------------------------------
    # CPU
    # ------------------------------------------------------------------

    def execute(self, instructions: float):
        """Generator: perform PS CPU work; cancel residual on interrupt."""
        if instructions <= 0.0:
            return
        event = self.cpu.execute(instructions)
        try:
            yield event
        except Interrupt:
            self.cpu.cancel(event)
            raise

    # ------------------------------------------------------------------
    # Disks
    # ------------------------------------------------------------------

    def _pick_disk(self) -> Disk:
        return self.disks[self._disk_choice.randrange(len(self.disks))]

    def disk_read(self):
        """Generator: read one page from a random disk (blocking)."""
        disk = self._pick_disk()
        event = disk.access(DiskRequestKind.READ)
        try:
            yield event
        except Interrupt:
            disk.cancel(event)
            raise

    def initiate_async_write(self) -> None:
        """Queue a post-commit page write-back that nobody waits on."""
        self._pick_disk().access(DiskRequestKind.WRITE)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def cpu_utilization(self, now: float) -> float:
        """Time-average CPU busy fraction since the last stats reset."""
        return self.cpu.busy_time.mean(now)

    def disk_utilization(self, now: float) -> float:
        """Time-average busy fraction over this node's disks."""
        if not self.disks:
            return 0.0
        return sum(
            disk.busy_time.mean(now) for disk in self.disks
        ) / len(self.disks)

    def reset_statistics(self, now: float) -> None:
        """Restart utilization windows (end of warmup)."""
        self.cpu.busy_time.reset(now)
        self.cpu.message_busy_time.reset(now)
        for disk in self.disks:
            disk.busy_time.reset(now)

    def __repr__(self) -> str:
        return (
            f"<ResourceManager node={self.node_id}"
            f" mips={self.cpu.mips} disks={len(self.disks)}>"
        )
