"""The network manager (paper §3.5).

The network is modeled as a switch: wire time is negligible (the paper's
fast-local-network assumption), but the CPU cost of message protocol
processing — ``InstPerMsg`` instructions — is charged at *both* the
sending and the receiving node, in the high-priority FIFO message class
of each CPU.

Delivery is asynchronous: :meth:`NetworkManager.post` returns
immediately and the payload handler runs once both CPU charges have been
served.  Messages between the same (source, destination) pair are
delivered in posting order, because both CPUs serve their message class
FIFO.

Each in-flight message is tracked by a :class:`_Courier` — a tiny
two-stage state machine that subscribes to the CPU completion events
directly.  Earlier versions spawned a kernel :class:`Process` (a full
generator) per message; with tens of thousands of messages per simulated
second that allocation showed up at the top of every profile.

Fault injection (``repro.faults``) hooks in through
:meth:`NetworkManager.attach_faults`: with an injector attached, every
inter-node message first passes the fault filter (drop when either
endpoint is down or the loss coin says so, optionally delay), and
in-flight couriers touching a crashing node are discarded.  Without an
injector the filter is a single ``is None`` check and the failure-free
delivery schedule is untouched.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.sim.kernel import Environment, Waitable
from repro.sim.resources import CPU
from repro.sim.stats import Counter

__all__ = ["HOST_NODE", "NetworkManager"]

#: Node id of the (single) host node; processing nodes are 0..N-1.
HOST_NODE = -1


class _Courier(Waitable):
    """In-flight message: charge source CPU, charge destination, deliver.

    Implements the slice of the process protocol that deferred event
    delivery relies on (``_alive``/``_waiting_on``/``_resume``), in the
    exact step order of the generator-based courier it replaced: the
    source-CPU charge is submitted on the courier's first scheduler
    step, not at post time, so the CPU's message FIFO sees the same
    arrival order relative to other same-instant work.
    """

    __slots__ = (
        "net",
        "source",
        "destination",
        "handler",
        "payload",
        "on_drop",
        "_stage",
        "_alive",
        "_waiting_on",
    )

    def __init__(
        self,
        net: "NetworkManager",
        source: int,
        destination: int,
        handler: Callable[[Any], None],
        payload: Any,
        on_drop: Optional[Callable[[Any], None]] = None,
    ):
        self.net = net
        self.source = source
        self.destination = destination
        self.handler = handler
        self.payload = payload
        self.on_drop = on_drop
        self._stage = 0
        self._alive = True
        self._waiting_on = None
        if net._inflight is not None:
            net._inflight[self] = None
        net.env.schedule_now(self._start)

    @property
    def name(self) -> str:
        """Crash-report identity: sending→receiving node and the
        message class (the handler that would have run on delivery)."""
        handler = getattr(
            self.handler, "__qualname__", None
        ) or repr(self.handler)
        return f"msg-{self.source}->{self.destination}:{handler}"

    def _charge(self, node: int) -> None:
        event = self.net._cpus[node].execute_message(
            self.net.inst_per_msg
        )
        self._waiting_on = event
        event._subscribe(self)

    def _start(self) -> None:
        if not self._alive:  # killed before the first scheduler step
            return
        self._charge(self.source)

    def _resume(self, _value: Any) -> None:
        self._waiting_on = None
        if self._stage == 0:
            self._stage = 1
            self._charge(self.destination)
            return
        self._alive = False
        inflight = self.net._inflight
        if inflight is not None:
            inflight.pop(self, None)
        try:
            self.handler(self.payload)
        except BaseException as exc:  # noqa: BLE001 - surfaced like a crash
            self.net.env._record_crash(self, exc)

    def kill(self) -> None:
        """Discard this message mid-flight; it is never delivered."""
        self._alive = False
        event = self._waiting_on
        if event is not None:
            event._unsubscribe(self)
            self._waiting_on = None


class NetworkManager:
    """Routes messages between nodes, charging per-end CPU costs."""

    def __init__(
        self,
        env: Environment,
        cpus: Dict[int, CPU],
        inst_per_msg: float,
    ):
        self.env = env
        self._cpus = cpus
        self.inst_per_msg = inst_per_msg
        self.messages_sent = Counter()
        self.messages_dropped = Counter()
        # Fault hooks: None until an injector attaches (failure-free
        # runs never pay for courier tracking).  The sanitizer's leak
        # audit needs the same in-flight tracking, so sanitized runs
        # enable it even without an injector.
        self._faults = None
        self._inflight: Optional[Dict[_Courier, None]] = None
        if env._san is not None:
            self._inflight = {}

    def attach_faults(self, injector) -> None:
        """Route every message through ``injector``'s fault filter and
        start tracking in-flight couriers so crashes can discard them."""
        self._faults = injector
        self._inflight = {}

    def post(
        self,
        source: int,
        destination: int,
        handler: Callable[[Any], None],
        payload: Any = None,
        on_drop: Optional[Callable[[Any], None]] = None,
    ) -> None:
        """Send a message; ``handler(payload)`` runs on delivery.

        Intra-node hand-offs are free and delivered on the next
        scheduler step (still asynchronous, so callers never reenter).

        ``on_drop(payload)`` runs (asynchronously) instead if fault
        injection discards the message; without an injector attached
        messages are never dropped and the hook is inert.

        Protocol contract: both hooks are invoked with exactly one
        positional argument (the payload), never more, never fewer —
        a bound method, local function, or lambda must accept that
        shape.  The ``message-handler-protocol`` lint rule checks
        every statically resolvable ``post(...)`` call site against
        this contract, so arity drift is caught at review time rather
        than as a mid-simulation ``TypeError``.
        """
        san = self.env._san
        if san is not None:
            san.write(("net", source, destination))
        if source == destination:
            self.env.schedule_now(handler, payload)
            return
        if self._faults is not None and self._intercept(
            source, destination, handler, payload, on_drop
        ):
            return
        self._transmit(source, destination, handler, payload, on_drop)

    def _transmit(
        self,
        source: int,
        destination: int,
        handler: Callable[[Any], None],
        payload: Any,
        on_drop: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.messages_sent.increment()
        if self.inst_per_msg <= 0.0:
            # No CPU cost: deliver on the next step, preserving order.
            self.env.schedule_now(handler, payload)
            return
        _Courier(self, source, destination, handler, payload, on_drop)

    # ------------------------------------------------------------------
    # Fault filter (active only with an injector attached)
    # ------------------------------------------------------------------

    def _intercept(
        self, source, destination, handler, payload, on_drop
    ) -> bool:
        """Apply the fault filter; True when the message was consumed
        (dropped, or rescheduled after a wire delay)."""
        faults = self._faults
        if faults.node_down(source) or faults.node_down(destination):
            self._drop(payload, on_drop)
            return True
        schedule = faults.schedule
        if schedule.drop_message():
            self._drop(payload, on_drop)
            return True
        delay = schedule.message_delay()
        if delay > 0.0:
            self.env.schedule(
                delay, self._deliver_delayed,
                source, destination, handler, payload, on_drop,
            )
            return True
        return False

    def _deliver_delayed(
        self, source, destination, handler, payload, on_drop
    ) -> None:
        # Either endpoint may have crashed while the message sat on
        # the wire; the loss/delay coins are never re-flipped.
        faults = self._faults
        if faults.node_down(source) or faults.node_down(destination):
            self._drop(payload, on_drop)
            return
        self._transmit(source, destination, handler, payload, on_drop)

    def _drop(self, payload, on_drop) -> None:
        self.messages_dropped.increment()
        if on_drop is not None:
            self.env.schedule_now(on_drop, payload)

    def kill_inflight(self, node: int) -> None:
        """Discard every in-flight courier to or from ``node``."""
        if not self._inflight:
            return
        doomed = [
            courier for courier in self._inflight
            if courier.source == node or courier.destination == node
        ]
        for courier in doomed:
            del self._inflight[courier]
            courier.kill()
            self._drop(courier.payload, courier.on_drop)

    def __repr__(self) -> str:
        return (
            f"<NetworkManager nodes={len(self._cpus)}"
            f" sent={self.messages_sent.count}>"
        )
