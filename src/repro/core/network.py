"""The network manager (paper §3.5).

The network is modeled as a switch: wire time is negligible (the paper's
fast-local-network assumption), but the CPU cost of message protocol
processing — ``InstPerMsg`` instructions — is charged at *both* the
sending and the receiving node, in the high-priority FIFO message class
of each CPU.

Delivery is asynchronous: :meth:`NetworkManager.post` returns
immediately and the payload handler runs once both CPU charges have been
served.  Messages between the same (source, destination) pair are
delivered in posting order, because both CPUs serve their message class
FIFO.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.sim.kernel import Environment
from repro.sim.resources import CPU
from repro.sim.stats import Counter

__all__ = ["HOST_NODE", "NetworkManager"]

#: Node id of the (single) host node; processing nodes are 0..N-1.
HOST_NODE = -1


class NetworkManager:
    """Routes messages between nodes, charging per-end CPU costs."""

    def __init__(
        self,
        env: Environment,
        cpus: Dict[int, CPU],
        inst_per_msg: float,
    ):
        self.env = env
        self._cpus = cpus
        self.inst_per_msg = inst_per_msg
        self.messages_sent = Counter()

    def post(
        self,
        source: int,
        destination: int,
        handler: Callable[[Any], None],
        payload: Any = None,
    ) -> None:
        """Send a message; ``handler(payload)`` runs on delivery.

        Intra-node hand-offs are free and delivered on the next
        scheduler step (still asynchronous, so callers never reenter).
        """
        if source == destination:
            self.env.schedule(0.0, lambda: handler(payload))
            return
        self.messages_sent.increment()
        if self.inst_per_msg <= 0.0:
            # No CPU cost: deliver on the next step, preserving order.
            self.env.schedule(0.0, lambda: handler(payload))
            return
        self.env.process(
            self._courier(source, destination, handler, payload),
            name=f"msg-{source}->{destination}",
        )

    def _courier(
        self,
        source: int,
        destination: int,
        handler: Callable[[Any], None],
        payload: Any,
    ):
        yield self._cpus[source].execute_message(self.inst_per_msg)
        yield self._cpus[destination].execute_message(self.inst_per_msg)
        handler(payload)

    def __repr__(self) -> str:
        return (
            f"<NetworkManager nodes={len(self._cpus)}"
            f" sent={self.messages_sent.count}>"
        )
