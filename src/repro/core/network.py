"""The network manager (paper §3.5).

The network is modeled as a switch: wire time is negligible (the paper's
fast-local-network assumption), but the CPU cost of message protocol
processing — ``InstPerMsg`` instructions — is charged at *both* the
sending and the receiving node, in the high-priority FIFO message class
of each CPU.

Delivery is asynchronous: :meth:`NetworkManager.post` returns
immediately and the payload handler runs once both CPU charges have been
served.  Messages between the same (source, destination) pair are
delivered in posting order, because both CPUs serve their message class
FIFO.

Each in-flight message is tracked by a :class:`_Courier` — a tiny
two-stage state machine that subscribes to the CPU completion events
directly.  Earlier versions spawned a kernel :class:`Process` (a full
generator) per message; with tens of thousands of messages per simulated
second that allocation showed up at the top of every profile.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.sim.kernel import Environment, Waitable
from repro.sim.resources import CPU
from repro.sim.stats import Counter

__all__ = ["HOST_NODE", "NetworkManager"]

#: Node id of the (single) host node; processing nodes are 0..N-1.
HOST_NODE = -1


class _Courier(Waitable):
    """In-flight message: charge source CPU, charge destination, deliver.

    Implements the slice of the process protocol that deferred event
    delivery relies on (``_alive``/``_waiting_on``/``_resume``), in the
    exact step order of the generator-based courier it replaced: the
    source-CPU charge is submitted on the courier's first scheduler
    step, not at post time, so the CPU's message FIFO sees the same
    arrival order relative to other same-instant work.
    """

    __slots__ = (
        "net",
        "source",
        "destination",
        "handler",
        "payload",
        "_stage",
        "_alive",
        "_waiting_on",
    )

    def __init__(
        self,
        net: "NetworkManager",
        source: int,
        destination: int,
        handler: Callable[[Any], None],
        payload: Any,
    ):
        self.net = net
        self.source = source
        self.destination = destination
        self.handler = handler
        self.payload = payload
        self._stage = 0
        self._alive = True
        self._waiting_on = None
        net.env.schedule_now(self._start)

    @property
    def name(self) -> str:  # only built for crash reports
        return f"msg-{self.source}->{self.destination}"

    def _charge(self, node: int) -> None:
        event = self.net._cpus[node].execute_message(
            self.net.inst_per_msg
        )
        self._waiting_on = event
        event._subscribe(self)

    def _start(self) -> None:
        self._charge(self.source)

    def _resume(self, _value: Any) -> None:
        self._waiting_on = None
        if self._stage == 0:
            self._stage = 1
            self._charge(self.destination)
            return
        self._alive = False
        try:
            self.handler(self.payload)
        except BaseException as exc:  # noqa: BLE001 - surfaced like a crash
            self.net.env._record_crash(self, exc)


class NetworkManager:
    """Routes messages between nodes, charging per-end CPU costs."""

    def __init__(
        self,
        env: Environment,
        cpus: Dict[int, CPU],
        inst_per_msg: float,
    ):
        self.env = env
        self._cpus = cpus
        self.inst_per_msg = inst_per_msg
        self.messages_sent = Counter()

    def post(
        self,
        source: int,
        destination: int,
        handler: Callable[[Any], None],
        payload: Any = None,
    ) -> None:
        """Send a message; ``handler(payload)`` runs on delivery.

        Intra-node hand-offs are free and delivered on the next
        scheduler step (still asynchronous, so callers never reenter).
        """
        if source == destination:
            self.env.schedule_now(handler, payload)
            return
        self.messages_sent.increment()
        if self.inst_per_msg <= 0.0:
            # No CPU cost: deliver on the next step, preserving order.
            self.env.schedule_now(handler, payload)
            return
        _Courier(self, source, destination, handler, payload)

    def __repr__(self) -> str:
        return (
            f"<NetworkManager nodes={len(self._cpus)}"
            f" sent={self.messages_sent.count}>"
        )
