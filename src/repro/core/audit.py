"""Serializability auditing (test/verification support).

An :class:`Auditor` attached to a simulation observes the *history* the
concurrency control algorithm produced: which version of each page every
committed transaction read, and the order in which committed writes were
installed.  From that it builds the version-order serialization graph

* ``w_k -> w_{k+1}``   (install order per page),
* ``w_k -> r``          for every reader of version ``k``,
* ``r -> w_{k+1}``      readers precede the next writer,

whose acyclicity is (view-)serializability of the committed projection.
The Thomas write rule is handled naturally because discarded writes are
never installed and so never appear in the version chain.

The auditor costs a dictionary update per access, so it is off by
default; the integration test suite turns it on to verify that all four
algorithms produce serializable executions under load.

With replication, each physical copy is its own item: versions are
keyed by ``(page, node)``.  Acyclicity of the union graph over all
copies is then one-copy serializability of the committed projection
under the read-one/write-all discipline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.database import PageId
from repro.core.transaction import Cohort, Transaction

__all__ = ["Auditor"]

#: A committed transaction is identified by (tid, attempt).
TxnKey = Tuple[int, int]

#: A physical item is one copy of a page: (PageId, node).
Item = Tuple[PageId, int]


class Auditor:
    """Records committed reads/installs and checks serializability."""

    def __init__(self):
        #: Current version of each item: the key of the last
        #: installer, or None for the initial version.
        self._current_version: Dict[Item, Optional[TxnKey]] = {}
        #: Install order per item (committed writers only).
        self.install_order: Dict[Item, List[TxnKey]] = {}
        #: version read per (attempt, item); buffered until commit.
        self._attempt_reads: Dict[
            TxnKey, List[Tuple[Item, Optional[TxnKey]]]
        ] = {}
        #: Reads of committed transactions.
        self.committed_reads: Dict[
            TxnKey, List[Tuple[Item, Optional[TxnKey]]]
        ] = {}
        self.committed: List[TxnKey] = []

    @staticmethod
    def _key(transaction: Transaction) -> TxnKey:
        return (transaction.tid, transaction.attempt)

    # ------------------------------------------------------------------
    # Hooks called by the transaction manager
    # ------------------------------------------------------------------

    def on_read_granted(self, cohort: Cohort, page: PageId) -> None:
        """A cohort's read was granted: record the version it sees.

        Items are physical copies, so the version is looked up for the
        copy at the cohort's node.
        """
        key = self._key(cohort.transaction)
        item = (page, cohort.node)
        version = self._current_version.get(item)
        self._attempt_reads.setdefault(key, []).append((item, version))

    def on_installed(
        self, cohort: Cohort, pages: List[PageId]
    ) -> None:
        """A committing cohort installed updates on ``pages``."""
        key = self._key(cohort.transaction)
        for page in pages:
            item = (page, cohort.node)
            self._current_version[item] = key
            self.install_order.setdefault(item, []).append(key)

    def on_committed(self, transaction: Transaction) -> None:
        """The transaction committed: promote its buffered reads."""
        key = self._key(transaction)
        self.committed.append(key)
        self.committed_reads[key] = self._attempt_reads.pop(key, [])

    def on_aborted(self, transaction: Transaction) -> None:
        """The attempt aborted: drop its buffered reads."""
        self._attempt_reads.pop(
            self._key(transaction), None
        )

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def serialization_edges(self) -> Set[Tuple[TxnKey, TxnKey]]:
        """Version-order serialization edges over committed txns."""
        committed = set(self.committed)
        edges: Set[Tuple[TxnKey, TxnKey]] = set()
        successor: Dict[Tuple[Item, Optional[TxnKey]], TxnKey] = {}
        # Both loops accumulate into sets keyed independently of the
        # visit order, so insertion-order iteration cannot leak into
        # the returned edge set.
        for item, writers in self.install_order.items():  # simlint: ignore[unordered-dict-iteration]
            previous: Optional[TxnKey] = None
            for writer in writers:
                if previous is not None:
                    edges.add((previous, writer))
                successor[(item, previous)] = writer
                previous = writer
        for reader, reads in self.committed_reads.items():  # simlint: ignore[unordered-dict-iteration]
            for item, version in reads:
                if version is not None and version in committed:
                    if version != reader:
                        edges.add((version, reader))
                next_writer = successor.get((item, version))
                if next_writer is not None and next_writer != reader:
                    edges.add((reader, next_writer))
        return edges

    def find_cycle(self) -> Optional[List[TxnKey]]:
        """A cycle in the serialization graph, or None if serializable.

        Iterative DFS — histories can contain tens of thousands of
        committed transactions, far beyond the recursion limit.
        """
        adjacency: Dict[TxnKey, List[TxnKey]] = {}
        for source, target in self.serialization_edges():
            adjacency.setdefault(source, []).append(target)
        visited: Set[TxnKey] = set()
        for start in list(adjacency):
            if start in visited:
                continue
            stack: List[Tuple[TxnKey, int]] = [(start, 0)]
            path: List[TxnKey] = [start]
            on_path: Set[TxnKey] = {start}
            visited.add(start)
            while stack:
                node, edge_index = stack[-1]
                neighbors = adjacency.get(node, [])
                if edge_index >= len(neighbors):
                    stack.pop()
                    path.pop()
                    on_path.discard(node)
                    continue
                stack[-1] = (node, edge_index + 1)
                neighbor = neighbors[edge_index]
                if neighbor in on_path:
                    return path[path.index(neighbor):]
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                on_path.add(neighbor)
                path.append(neighbor)
                stack.append((neighbor, 0))
        return None

    def is_serializable(self) -> bool:
        """Whether the committed projection is serializable."""
        return self.find_cycle() is None
