"""The database model (paper §3.1, Table 1).

The database is a collection of *files*, each file representing one
horizontal partition of a relation.  Files are modeled at the page
level; a page is identified by ``(relation, partition, page_index)``.
The placement maps every partition to a processing node; rotation by
relation index keeps the node loads balanced for every degree of
partitioning, mirroring the placements spelled out in §4.2-§4.4:

* degree 1 ("1-way", COLOCATED): all partitions of relation *i* live at
  node *i mod N* — transactions on that relation run with one cohort.
* degree *d* (DECLUSTERED): relation *i*'s partitions are split into *d*
  equal groups stored on *d* consecutive nodes starting at node
  *i mod N* — transactions run with *d* parallel cohorts.

For the default 8 relations x 8 partitions on 8 nodes, every node hosts
exactly 8 partitions for every degree, so aggregate load is identical
across placements and only the *parallelism* changes — exactly the
controlled comparison the paper performs.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.config import DatabaseConfig, PlacementKind

__all__ = ["Database", "PageId", "PageVersionStore", "PartitionId"]


@dataclass(frozen=True, order=True)
class PartitionId:
    """Identifies one file (= one partition of one relation)."""

    relation: int
    partition: int


@dataclass(frozen=True, order=True)
class PageId:
    """Identifies one page within a partition."""

    relation: int
    partition: int
    page: int

    @property
    def partition_id(self) -> PartitionId:
        """The partition this page belongs to."""
        return PartitionId(self.relation, self.partition)


class PageVersionStore:
    """Per-page chains of committed version timestamps (MVCC extension).

    The paper's database is versionless — a page simply *is* its latest
    committed state.  Multi-version concurrency control needs one more
    piece of bookkeeping at each node: for every page, the commit
    timestamps of its installed versions, in ascending order, so a
    snapshot read at timestamp *s* resolves to the newest version
    ≤ *s* and a write-write validation can ask whether anything
    committed after *s*.  Only timestamps are stored — page *contents*
    are not modeled, matching the rest of the database layer.

    Chains are bounded at ``max_versions`` entries; installing beyond
    that drops the oldest.  Snapshots in this simulator live for at
    most one transaction attempt, far shorter than the horizon eight
    versions cover, so pruning never invalidates a live reader.
    """

    def __init__(self, max_versions: int = 8):
        self.max_versions = max_versions
        self._chains: Dict[PageId, List[Tuple[float, int]]] = {}

    def install(self, page: PageId, stamp: Tuple[float, int]) -> None:
        """Append a committed version (commits may arrive out of order)."""
        chain = self._chains.get(page)
        if chain is None:
            self._chains[page] = [stamp]
            return
        insort(chain, stamp)
        if len(chain) > self.max_versions:
            del chain[0]

    def latest(self, page: PageId) -> Tuple[float, int]:
        """Newest committed version timestamp (zero stamp if none)."""
        chain = self._chains.get(page)
        if not chain:
            return (-1.0, -1)
        return chain[-1]

    def versions(self, page: PageId) -> Tuple[Tuple[float, int], ...]:
        """All retained version timestamps, ascending."""
        return tuple(self._chains.get(page, ()))

    def clear(self) -> None:
        """Wipe every chain (fail-stop crash of the hosting node)."""
        self._chains = {}

    def __len__(self) -> int:
        return len(self._chains)


class Database:
    """Materialized placement of partitions onto processing nodes.

    With replication (``copies`` > 1) every partition has one *primary*
    copy placed as described above, and each further copy shifted by
    ``N // copies`` nodes so that copies land on distinct nodes and the
    per-node load stays balanced.  ``node_of``/``node_of_page`` return
    the primary; ``nodes_of_partition`` lists all copy sites.
    """

    def __init__(self, config: DatabaseConfig, num_proc_nodes: int):
        config.validate(num_proc_nodes)
        self.config = config
        self.num_proc_nodes = num_proc_nodes
        self._partition_nodes: Dict[PartitionId, Tuple[int, ...]] = {}
        self._node_partitions: List[List[PartitionId]] = [
            [] for _ in range(num_proc_nodes)
        ]
        self._place_partitions()

    def _copy_stride(self) -> int:
        return max(1, self.num_proc_nodes // self.config.copies)

    def _place_partitions(self) -> None:
        cfg = self.config
        if cfg.placement is PlacementKind.COLOCATED:
            degree = 1
        else:
            degree = cfg.placement_degree
        group_size = cfg.partitions_per_relation // degree
        stride = self._copy_stride()
        for relation in range(cfg.num_relations):
            home = relation % self.num_proc_nodes
            for partition in range(cfg.partitions_per_relation):
                offset = partition // group_size
                primary = (home + offset) % self.num_proc_nodes
                nodes = tuple(
                    (primary + copy * stride) % self.num_proc_nodes
                    for copy in range(cfg.copies)
                )
                if len(set(nodes)) != len(nodes):
                    raise ValueError(
                        f"copy placement collides: {cfg.copies} "
                        f"copies on {self.num_proc_nodes} nodes"
                    )
                pid = PartitionId(relation, partition)
                self._partition_nodes[pid] = nodes
                for node in nodes:
                    self._node_partitions[node].append(pid)

    def node_of(self, partition: PartitionId) -> int:
        """FileLocations: the *primary* node storing ``partition``."""
        return self._partition_nodes[partition][0]

    def nodes_of_partition(
        self, partition: PartitionId
    ) -> Tuple[int, ...]:
        """All copy sites of ``partition`` (primary first)."""
        return self._partition_nodes[partition]

    def node_of_page(self, page: PageId) -> int:
        """The primary node storing ``page``."""
        return self._partition_nodes[page.partition_id][0]

    def nodes_of_page(self, page: PageId) -> Tuple[int, ...]:
        """All copy sites of ``page`` (primary first)."""
        return self._partition_nodes[page.partition_id]

    def partitions_at(self, node: int) -> Tuple[PartitionId, ...]:
        """All partitions stored at ``node``."""
        return tuple(self._node_partitions[node])

    def partitions_of(self, relation: int) -> Tuple[PartitionId, ...]:
        """All partitions of ``relation``, in partition order."""
        return tuple(
            PartitionId(relation, p)
            for p in range(self.config.partitions_per_relation)
        )

    def nodes_of_relation(self, relation: int) -> Tuple[int, ...]:
        """Distinct nodes holding any partition of ``relation``."""
        seen: list[int] = []
        for partition in self.partitions_of(relation):
            node = self._partition_nodes[partition][0]
            if node not in seen:
                seen.append(node)
        return tuple(seen)

    @property
    def num_relations(self) -> int:
        """Number of relations in the database."""
        return self.config.num_relations

    @property
    def pages_per_partition(self) -> int:
        """FileSize: pages in each partition."""
        return self.config.pages_per_partition

    def effective_degree(self, relation: int) -> int:
        """Actual number of nodes ``relation`` spans (parallelism)."""
        return len(self.nodes_of_relation(relation))

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"<Database {cfg.num_relations}x{cfg.partitions_per_relation}"
            f" files, {cfg.pages_per_partition} pages/file,"
            f" {self.num_proc_nodes} nodes,"
            f" {cfg.placement.value}/{cfg.placement_degree}>"
        )
