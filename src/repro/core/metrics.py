"""Metrics collection and the simulation result record (paper §4.1).

The paper's four main metrics are transaction response time (from
origination until *successful* completion, restarts included),
throughput (completion rate), and the response-time and throughput
speedups derived from them across configurations.  Auxiliary metrics:
CPU and disk utilizations, the average blocking time (for the locking
algorithms), and the *abort ratio* — transaction aborts divided by
transaction commits.

All statistics honour the warmup boundary: the simulation driver calls
:meth:`MetricsCollector.reset` when warmup ends, so results cover
steady state only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.stats import (
    BatchMeans,
    Counter,
    StreamingHistogram,
    Tally,
)

__all__ = ["MetricsCollector", "SimulationResult"]


class MetricsCollector:
    """Accumulates transaction-level statistics during a run."""

    def __init__(self, batch_size: int = 25):
        self.response_times = Tally()
        self.response_batches = BatchMeans(batch_size=batch_size)
        # Streaming percentile estimates: O(1) per commit, O(bins)
        # memory, no sort at report time.  The range covers the paper's
        # configurations (1-node saturation reaches ~100 s response
        # times); rarer longer observations clamp to the top edge
        # rather than disappearing.
        self.response_histogram = StreamingHistogram(
            low=0.0, high=300.0, num_bins=3000
        )
        self.commits = Counter()
        self.aborts = Counter()
        #: Abort counts broken down by reason (wound, local-deadlock,
        #: global-deadlock, timestamp-reject, certification-failed).
        self.abort_reasons: Dict[str, int] = {}
        self.blocking_times = Tally()
        self.restarts_in_progress = Counter()
        #: Time spent blocked on a 2PC decision (coordinator resend
        #: waits and participant blocking detection; fault mode only).
        self.blocked_2pc_times = Tally()
        #: Commits recorded while at least one node was down.
        self.degraded_commits = Counter()
        #: Per routing-class statistics (router runs only; empty and
        #: cost-free otherwise).  Keyed by the router's class key.
        self.class_commits: Dict[str, int] = {}
        self.class_aborts: Dict[str, int] = {}
        self.class_response: Dict[str, Tally] = {}
        self.class_lock_waits: Dict[str, int] = {}
        #: class key -> {algorithm name -> commits routed there}.
        self.class_algorithms: Dict[str, Dict[str, int]] = {}
        self._measure_start = 0.0

    def record_commit(self, response_time: float) -> None:
        """One transaction completed successfully."""
        self.commits.increment()
        self.response_times.record(response_time)
        self.response_batches.record(response_time)
        self.response_histogram.record(response_time)

    def record_abort(self, reason: Optional[str] = None) -> None:
        """One transaction attempt aborted (it will restart)."""
        self.aborts.increment()
        key = reason or "unknown"
        self.abort_reasons[key] = self.abort_reasons.get(key, 0) + 1

    def record_blocking(self, duration: float) -> None:
        """One concurrency control wait ended after ``duration``."""
        self.blocking_times.record(duration)

    def record_blocked_2pc(self, duration: float) -> None:
        """One blocked-on-2PC span ended after ``duration``."""
        self.blocked_2pc_times.record(duration)

    def record_degraded_commit(self) -> None:
        """One commit completed while the machine was degraded."""
        self.degraded_commits.increment()

    def record_class_commit(
        self, class_key: str, algorithm: str, response_time: float
    ) -> None:
        """One routed transaction of ``class_key`` committed."""
        self.class_commits[class_key] = (
            self.class_commits.get(class_key, 0) + 1
        )
        tally = self.class_response.get(class_key)
        if tally is None:
            tally = self.class_response[class_key] = Tally()
        tally.record(response_time)
        arms = self.class_algorithms.setdefault(class_key, {})
        arms[algorithm] = arms.get(algorithm, 0) + 1

    def record_class_abort(self, class_key: str) -> None:
        """One routed attempt of ``class_key`` aborted."""
        self.class_aborts[class_key] = (
            self.class_aborts.get(class_key, 0) + 1
        )

    def record_class_blocking(self, class_key: str) -> None:
        """One routed cohort of ``class_key`` finished a lock wait."""
        self.class_lock_waits[class_key] = (
            self.class_lock_waits.get(class_key, 0) + 1
        )

    def reset(self, now: float) -> None:
        """Discard warmup observations."""
        self.response_times.reset()
        self.response_batches.reset()
        self.response_histogram.reset()
        self.commits.reset()
        self.aborts.reset()
        self.abort_reasons.clear()
        self.blocking_times.reset()
        self.blocked_2pc_times.reset()
        self.degraded_commits.reset()
        self.class_commits.clear()
        self.class_aborts.clear()
        self.class_response.clear()
        self.class_lock_waits.clear()
        self.class_algorithms.clear()
        self._measure_start = now

    def throughput(self, now: float) -> float:
        """Commits per second over the measurement window."""
        elapsed = now - self._measure_start
        if elapsed <= 0.0:
            return 0.0
        return self.commits.count / elapsed

    @property
    def abort_ratio(self) -> float:
        """Aborts per commit (the paper's abort ratio)."""
        if self.commits.count == 0:
            return 0.0
        return self.aborts.count / self.commits.count

    @property
    def failure_abort_ratio(self) -> float:
        """Fraction of all aborts caused by injected failures.

        Failure-induced abort reasons carry a ``fault-`` prefix
        (execution/prepare timeouts); everything else is ordinary
        data contention.
        """
        if self.aborts.count == 0:
            return 0.0
        failure_aborts = sum(
            count
            for reason, count in self.abort_reasons.items()
            if reason.startswith("fault-")
        )
        return failure_aborts / self.aborts.count


@dataclass
class SimulationResult:
    """Everything a single simulation run reports."""

    label: str
    cc_algorithm: str
    think_time: float
    num_proc_nodes: int
    placement_degree: int
    pages_per_partition: int
    seed: int
    measured_duration: float
    commits: int
    aborts: int
    throughput: float
    mean_response_time: float
    response_time_ci: Optional[float]
    abort_ratio: float
    mean_blocking_time: float
    blocking_count: int
    avg_node_cpu_utilization: float
    avg_disk_utilization: float
    host_cpu_utilization: float
    messages_sent: int
    per_node_cpu_utilization: List[float] = field(default_factory=list)
    per_node_disk_utilization: List[float] = field(default_factory=list)
    abort_reasons: Dict[str, int] = field(default_factory=dict)
    #: Streaming response-time percentiles (histogram estimates).
    response_time_p50: float = 0.0
    response_time_p90: float = 0.0
    response_time_p99: float = 0.0
    #: Availability metrics (extension; all zero without fault
    #: injection so failure-free cache entries stay loadable).
    faults_enabled: bool = False
    node_crashes: int = 0
    commits_despite_faults: int = 0
    #: Commit rate over the degraded portion of the window only.
    availability_throughput: float = 0.0
    #: Fraction of aborts caused by injected failures.
    failure_abort_ratio: float = 0.0
    mean_blocked_2pc_time: float = 0.0
    blocked_2pc_count: int = 0
    messages_dropped: int = 0
    per_node_downtime: List[float] = field(default_factory=list)
    #: Per-class router metrics (extension; all empty outside router
    #: runs so pre-router cache entries stay loadable).  Deliberately
    #: not part of :meth:`as_dict` — the tabular report and the
    #: cross-run determinism comparisons stay algorithm-agnostic; the
    #: router experiment and tests read these fields directly.
    router_enabled: bool = False
    router_class_commits: Dict[str, int] = field(default_factory=dict)
    router_class_aborts: Dict[str, int] = field(default_factory=dict)
    router_class_mean_response: Dict[str, float] = field(
        default_factory=dict
    )
    router_class_lock_waits: Dict[str, int] = field(
        default_factory=dict
    )
    #: class key -> {algorithm -> commits the router sent there}.
    router_class_algorithms: Dict[str, Dict[str, int]] = field(
        default_factory=dict
    )

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary for tabular reporting."""
        return {
            "label": self.label,
            "cc": self.cc_algorithm,
            "think_time": self.think_time,
            "nodes": self.num_proc_nodes,
            "degree": self.placement_degree,
            "file_size": self.pages_per_partition,
            "seed": self.seed,
            "duration": self.measured_duration,
            "commits": self.commits,
            "aborts": self.aborts,
            "throughput": self.throughput,
            "response_time": self.mean_response_time,
            "response_ci": self.response_time_ci,
            "response_p50": self.response_time_p50,
            "response_p90": self.response_time_p90,
            "response_p99": self.response_time_p99,
            "abort_ratio": self.abort_ratio,
            "blocking_time": self.mean_blocking_time,
            "cpu_util": self.avg_node_cpu_utilization,
            "disk_util": self.avg_disk_utilization,
            "host_cpu_util": self.host_cpu_utilization,
            "messages": self.messages_sent,
            "faults": self.faults_enabled,
            "node_crashes": self.node_crashes,
            "degraded_commits": self.commits_despite_faults,
            "availability_tput": self.availability_throughput,
            "failure_abort_ratio": self.failure_abort_ratio,
            "blocked_2pc_time": self.mean_blocked_2pc_time,
            "blocked_2pc_count": self.blocked_2pc_count,
            "messages_dropped": self.messages_dropped,
        }

    def __str__(self) -> str:
        return (
            f"{self.label}: tput={self.throughput:.3f}/s "
            f"rt={self.mean_response_time:.3f}s "
            f"abort_ratio={self.abort_ratio:.3f} "
            f"disk={self.avg_disk_utilization:.2f} "
            f"cpu={self.avg_node_cpu_utilization:.2f}"
        )
