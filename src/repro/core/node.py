"""Node assembly: a resource manager plus (for processing nodes) a
concurrency control manager (paper §3, Figure 1).

The host node runs transaction coordinators and the terminals; it has a
fast CPU but stores no data, so it carries no CC manager.  Each
processing node stores partitions and runs cohorts against its local CC
manager.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import NodeCCManager
from repro.core.resource_manager import ResourceManager

__all__ = ["Node"]


class Node:
    """One machine node: resources plus optional CC manager."""

    def __init__(
        self,
        node_id: int,
        resources: ResourceManager,
        cc_manager: Optional[NodeCCManager] = None,
    ):
        self.node_id = node_id
        self.resources = resources
        self.cc_manager = cc_manager

    @property
    def is_host(self) -> bool:
        """Whether this is the host (coordinator/terminal) node."""
        return self.cc_manager is None

    def __repr__(self) -> str:
        kind = "host" if self.is_host else "proc"
        return f"<Node {self.node_id} ({kind})>"
