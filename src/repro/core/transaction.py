"""Transaction, cohort, and access-specification records (paper §2.1, §3.3).

A transaction is created at a terminal with a fixed *access
specification*: which partitions of its relation it touches, which pages
it reads in each, and which of those it updates.  The specification is
immutable across restarts — the paper models an aborted transaction
re-running the same work.

At run time each attempt instantiates a coordinator (implicit in the
transaction-manager process) plus one :class:`Cohort` per processing
node holding data the transaction accesses.  Timestamps are
``(time, sequence)`` pairs, unique and totally ordered; "older" means
smaller.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from itertools import count
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.core.config import ExecutionPattern, TransactionClassConfig
from repro.core.database import PageId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Event, Process

__all__ = [
    "AccessSpec",
    "Cohort",
    "CohortSpec",
    "PageAccess",
    "Timestamp",
    "Transaction",
    "TransactionState",
    "make_timestamp",
]

#: A globally unique, totally ordered timestamp.
Timestamp = Tuple[float, int]

_timestamp_sequence = count()


def make_timestamp(now: float) -> Timestamp:
    """Mint a fresh timestamp at simulated time ``now``."""
    return (now, next(_timestamp_sequence))


class TransactionState(Enum):
    """Lifecycle of one transaction *attempt*."""

    PENDING = "pending"
    RUNNING = "running"
    PREPARING = "preparing"  # first phase of two-phase commit
    COMMITTING = "committing"  # second phase: wounds no longer fatal
    ABORTING = "aborting"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(frozen=True)
class PageAccess:
    """One page touched by a cohort; updated pages are read first.

    ``install_only`` marks the write-all legs of a replicated update
    (extension): the cohort writes this node's copy without reading it
    first — a concurrency control write request and a processing burst,
    but no read request and no disk read.
    """

    page: PageId
    is_update: bool
    install_only: bool = False


@dataclass(frozen=True)
class CohortSpec:
    """The work one cohort performs at one processing node."""

    node: int
    accesses: Tuple[PageAccess, ...]

    @property
    def num_reads(self) -> int:
        """Accesses that read (install-only legs do not)."""
        return sum(
            1 for access in self.accesses if not access.install_only
        )

    @property
    def num_updates(self) -> int:
        """Accesses that perform a write (including install legs)."""
        return sum(1 for access in self.accesses if access.is_update)


@dataclass(frozen=True)
class AccessSpec:
    """Everything a transaction will access, fixed at origination."""

    relation: int
    cohorts: Tuple[CohortSpec, ...]

    @property
    def num_reads(self) -> int:
        """Total pages read across all cohorts."""
        return sum(cohort.num_reads for cohort in self.cohorts)

    @property
    def num_updates(self) -> int:
        """Total pages updated across all cohorts."""
        return sum(cohort.num_updates for cohort in self.cohorts)

    @property
    def nodes(self) -> Tuple[int, ...]:
        """Processing nodes touched, in cohort order."""
        return tuple(cohort.node for cohort in self.cohorts)


class Cohort:
    """Run-time state of one cohort during one attempt."""

    __slots__ = (
        "transaction",
        "spec",
        "index",
        "attempt",
        "process",
        "load_posted",
        "started",
        "finished_work",
        "crashed",
        "done_event",
        "vote_event",
        "commit_ack_event",
        "abort_ack_event",
        "mailbox",
        "cc_state",
    )

    def __init__(self, transaction: "Transaction", spec: CohortSpec,
                 index: int):
        self.transaction = transaction
        self.spec = spec
        self.index = index
        #: The transaction attempt this cohort belongs to; fault-mode
        #: delivery guards drop messages addressed to a stale attempt.
        self.attempt = transaction.attempt
        self.process: Optional["Process"] = None
        self.load_posted = False
        self.started = False
        self.finished_work = False
        #: Set when the cohort's node crashed while it was resident.
        self.crashed = False
        self.done_event: Optional["Event"] = None
        self.vote_event: Optional["Event"] = None
        self.commit_ack_event: Optional["Event"] = None
        self.abort_ack_event: Optional["Event"] = None
        self.mailbox: Any = None
        #: Scratch area owned by the node's concurrency control manager.
        self.cc_state: Any = None

    @property
    def node(self) -> int:
        """The processing node this cohort runs at."""
        return self.spec.node

    @property
    def updated_pages(self) -> List[PageId]:
        """Pages this cohort updates (written back after commit)."""
        return [a.page for a in self.spec.accesses if a.is_update]

    def __repr__(self) -> str:
        return (
            f"<Cohort txn={self.transaction.tid} node={self.node}"
            f" accesses={len(self.spec.accesses)}>"
        )


class Transaction:
    """A transaction across all of its attempts."""

    __slots__ = (
        "tid",
        "terminal",
        "class_config",
        "spec",
        "origination_time",
        "startup_timestamp",
        "timestamp",
        "commit_timestamp",
        "state",
        "attempt",
        "cohorts",
        "abort_event",
        "abort_pending",
        "abort_reason",
        "num_aborts",
        "fault_retries",
        "routed_class",
        "routed_algorithm",
    )

    _tid_sequence = count()

    def __init__(
        self,
        terminal: int,
        class_config: TransactionClassConfig,
        spec: AccessSpec,
        origination_time: float,
    ):
        self.tid = next(Transaction._tid_sequence)
        self.terminal = terminal
        self.class_config = class_config
        self.spec = spec
        self.origination_time = origination_time
        #: Initial startup timestamp: never changes across restarts.
        #: Used by 2PL victim selection and kept by wound-wait.
        self.startup_timestamp: Optional[Timestamp] = None
        #: The timestamp the CC algorithm currently orders this
        #: transaction by (BTO renews it on restart).
        self.timestamp: Optional[Timestamp] = None
        #: OPT certification timestamp, assigned when 2PC starts.
        self.commit_timestamp: Optional[Timestamp] = None
        self.state = TransactionState.PENDING
        self.attempt = 0
        self.cohorts: List[Cohort] = []
        self.abort_event: Optional["Event"] = None
        self.abort_pending = False
        self.abort_reason: Optional[str] = None
        self.num_aborts = 0
        #: Consecutive failure-induced aborts, driving the terminal's
        #: exponential retry backoff (fault mode only).
        self.fault_retries = 0
        #: Router classification, fixed at first BEGIN and kept across
        #: restarts so every attempt runs under the same algorithm
        #: (None when no router is active).
        self.routed_class: Optional[str] = None
        self.routed_algorithm: Optional[str] = None

    @property
    def parallel(self) -> bool:
        """Whether cohorts run in parallel (vs one after another)."""
        return (
            self.class_config.execution_pattern
            is ExecutionPattern.PARALLEL
        )

    def begin_attempt(self) -> None:
        """Reset per-attempt state and build fresh cohort records."""
        self.attempt += 1
        self.state = TransactionState.RUNNING
        self.abort_pending = False
        self.abort_reason = None
        self.commit_timestamp = None
        self.cohorts = [
            Cohort(self, spec, index)
            for index, spec in enumerate(self.spec.cohorts)
        ]

    def mark_abort(self, reason: str) -> None:
        """Record that this attempt must abort (idempotent)."""
        if not self.abort_pending:
            self.abort_pending = True
            self.abort_reason = reason

    @property
    def in_second_commit_phase(self) -> bool:
        """True once the commit decision is final (wounds ignored)."""
        return self.state in (
            TransactionState.COMMITTING,
            TransactionState.COMMITTED,
        )

    @property
    def abortable(self) -> bool:
        """Whether an external abort request can still take effect."""
        return self.state in (
            TransactionState.RUNNING,
            TransactionState.PREPARING,
        )

    def __repr__(self) -> str:
        return (
            f"<Txn {self.tid} attempt={self.attempt}"
            f" state={self.state.value}>"
        )
