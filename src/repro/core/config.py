"""Configuration dataclasses mirroring the paper's Tables 1–4.

Defaults reproduce Table 4 exactly:

* 1 host node (10 MIPS) and 8 processing nodes (1 MIPS each),
* 64 files = 8 relations x 8 partitions, 300 pages per partition,
* 128 terminals attached to the host, in 8 groups of 16 with each group
  bound to one relation,
* transactions read an average of 8 pages per partition (uniform 4..12),
  updating each read page with probability 1/4,
* 8K instructions per page processed, 2K per initiated disk write,
* 2K instructions per process startup, 1K per message end,
  negligible CC request cost,
* 2 disks per node with access times uniform in [10 ms, 30 ms],
* global deadlock detection ("Snoop") interval of 1 second.

Times are in seconds, CPU rates in MIPS, CPU costs in instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional, Sequence, Tuple

from repro.faults.schedule import FaultConfig

__all__ = [
    "DatabaseConfig",
    "ExecutionPattern",
    "PlacementKind",
    "ResourceConfig",
    "RouterConfig",
    "SimulationConfig",
    "TransactionClassConfig",
    "WorkloadConfig",
]


class ExecutionPattern(Enum):
    """ExecPattern: how a multi-cohort transaction runs (§3.3).

    Sequential cohorts model Non-Stop SQL style remote procedure calls;
    parallel cohorts model Gamma/Bubba/Teradata style parallel queries.
    """

    SEQUENTIAL = "sequential"
    PARALLEL = "parallel"


class PlacementKind(Enum):
    """How relations' partitions are mapped to processing nodes (§4.2-4.3).

    ``DECLUSTERED`` spreads each relation's partitions over ``degree``
    nodes (the paper's 2/4/8-way partitioning, with the relation's home
    node rotated so load stays balanced).  ``COLOCATED`` stores all of a
    relation's partitions at a single node (the paper's 1-way placement,
    relation i at node i mod N).
    """

    DECLUSTERED = "declustered"
    COLOCATED = "colocated"


@dataclass(frozen=True)
class ResourceConfig:
    """Table 3: resource manager parameters (shared by all nodes)."""

    host_cpu_mips: float = 10.0
    node_cpu_mips: float = 1.0
    disks_per_node: int = 2
    min_disk_time: float = 0.010
    max_disk_time: float = 0.030
    inst_per_update: float = 2_000.0
    inst_per_startup: float = 2_000.0
    inst_per_msg: float = 1_000.0

    def validate(self) -> None:
        """Raise ValueError on out-of-range settings."""
        if self.host_cpu_mips <= 0 or self.node_cpu_mips <= 0:
            raise ValueError("CPU rates must be positive")
        if self.disks_per_node < 1:
            raise ValueError("each node needs at least one disk")
        if not 0 <= self.min_disk_time <= self.max_disk_time:
            raise ValueError("disk time range invalid")
        for name in ("inst_per_update", "inst_per_startup", "inst_per_msg"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class DatabaseConfig:
    """Table 1: database model parameters.

    ``placement_degree`` is the paper's degree of partitioning: how many
    nodes each relation is spread across.  Degree 1 with
    ``PlacementKind.COLOCATED`` gives the paper's "1-way" placement.
    """

    num_relations: int = 8
    partitions_per_relation: int = 8
    pages_per_partition: int = 300
    placement: PlacementKind = PlacementKind.DECLUSTERED
    placement_degree: int = 8
    #: Replication factor (extension; the paper's §3.1 model supports
    #: replicated files but its experiments use copies=1).  With k > 1
    #: copies, every partition lives at k distinct nodes; transactions
    #: read one copy and write all copies (read-one/write-all).
    copies: int = 1

    def validate(self, num_proc_nodes: int) -> None:
        """Raise ValueError if the placement cannot be realized."""
        if self.num_relations < 1 or self.partitions_per_relation < 1:
            raise ValueError("relations and partitions must be positive")
        if self.pages_per_partition < 1:
            raise ValueError("pages_per_partition must be positive")
        if self.copies < 1:
            raise ValueError("copies must be positive")
        if self.copies > num_proc_nodes:
            raise ValueError(
                f"cannot store {self.copies} copies on "
                f"{num_proc_nodes} nodes"
            )
        if self.placement is PlacementKind.DECLUSTERED:
            if self.placement_degree < 1:
                raise ValueError("placement_degree must be positive")
            if self.placement_degree > num_proc_nodes:
                raise ValueError(
                    f"cannot spread a relation over "
                    f"{self.placement_degree} of {num_proc_nodes} nodes"
                )
            if self.partitions_per_relation % self.placement_degree:
                raise ValueError(
                    "placement_degree must divide partitions_per_relation"
                )

    @property
    def num_files(self) -> int:
        """NumFiles: total partitions in the database."""
        return self.num_relations * self.partitions_per_relation

    @property
    def total_pages(self) -> int:
        """Total database size in pages."""
        return self.num_files * self.pages_per_partition


@dataclass(frozen=True)
class TransactionClassConfig:
    """Table 2 per-class parameters.

    A transaction of this class touches ``file_count`` partitions of its
    terminal's relation (the paper's workload touches all 8), reading an
    average of ``pages_per_file`` pages from each — actual counts drawn
    uniformly from [pages_per_file/2, 3*pages_per_file/2], i.e. 4..12 for
    the default 8 (footnote 12 of the paper) — and updating each read
    page with probability ``write_probability``.

    The default write probability is 1/8, not Table 4's 1/4.  The paper
    contradicts itself: Table 4 and §4.1 say pages are updated with
    probability 1/4, but the very same paragraph states transactions
    "involve an average of 64 reads, and they do an average of 8
    writes" — which is 64 x 1/8.  We follow the 8-writes reading
    because it also reproduces the paper's qualitative results (abort
    ratios ordered OPT > WW > BTO > 2PL, and 2PL gaining the most from
    parallelism); with 1/4 the deadlock/abort rates roughly quadruple
    and those orderings invert.  EXPERIMENTS.md shows both settings.
    """

    name: str = "default"
    terminal_fraction: float = 1.0
    execution_pattern: ExecutionPattern = ExecutionPattern.PARALLEL
    file_count: int = 8
    pages_per_file: int = 8
    write_probability: float = 0.125
    inst_per_page: float = 8_000.0
    #: Zipf skew parameter (theta) for page selection within a
    #: partition (extension; ROADMAP item 3).  0.0 keeps the paper's
    #: uniform draw — bit-identical to the original path, consuming no
    #: extra stream draws.  Positive values draw page indices from a
    #: Zipf(theta) distribution over the partition's pages via the
    #: dedicated ``page-skew`` stream, making low page indices hot.
    access_skew: float = 0.0

    def validate(self) -> None:
        """Raise ValueError on out-of-range settings."""
        if not 0.0 < self.terminal_fraction <= 1.0:
            raise ValueError("terminal_fraction must be in (0, 1]")
        if self.file_count < 1 or self.pages_per_file < 1:
            raise ValueError("file_count and pages_per_file positive")
        if not 0.0 <= self.write_probability <= 1.0:
            raise ValueError("write_probability must be in [0, 1]")
        if self.inst_per_page < 0:
            raise ValueError("inst_per_page must be non-negative")
        if self.access_skew < 0.0:
            raise ValueError("access_skew must be non-negative")

    @property
    def min_pages_per_file(self) -> int:
        """Lower bound of the uniform page-count draw (half the mean)."""
        return max(1, self.pages_per_file // 2)

    @property
    def max_pages_per_file(self) -> int:
        """Upper bound of the uniform page-count draw (1.5x the mean).

        Footnote 12 pins the range for the default workload to [4, 12]
        ("they actually access between 4 and 12 pages per partition"),
        which the expected-speedup arithmetic 64/12 = 5.33 relies on.
        """
        return (3 * self.pages_per_file) // 2


@dataclass(frozen=True)
class RouterConfig:
    """Predictive transaction router settings (extension; see
    :mod:`repro.router`).

    Used when ``cc_algorithm`` is ``"router"``: the host classifies
    each incoming transaction by its declared access specification and
    dispatches it to one of several concurrently running concurrency
    control algorithms.  Declared read-only transactions always run
    under ``read_only_algorithm`` (MVCC snapshot reads by default);
    update classes are assigned by a deterministic epsilon-greedy
    reward tracker choosing among ``update_candidates``.
    """

    #: Algorithm for declared read-only transactions.
    read_only_algorithm: str = "mvcc"
    #: Candidate algorithms the classifier arbitrates for update
    #: classes (per-class reward tracking of commit latency and abort
    #: ratio picks among them).  MVCC is itself a candidate: under
    #: light contention snapshot writers are the cheapest arm, and the
    #: bandit only steers hot classes away from first-committer-wins
    #: aborts when contention makes them expensive.
    update_candidates: Tuple[str, ...] = ("2pl", "bto", "opt", "mvcc")
    #: Exploration rate of the epsilon-greedy classifier; draws come
    #: from the dedicated ``router-explore``/``router-choice`` streams.
    epsilon: float = 0.05
    #: Minimum completed transactions per (class, candidate) arm before
    #: the classifier trusts its reward estimate over round-robin.
    min_samples: int = 2
    #: Weight of the abort ratio in the per-arm cost
    #: ``mean_latency * (1 + abort_penalty * abort_ratio)``.
    abort_penalty: float = 1.0
    #: Fraction of each partition's lowest page indices considered the
    #: "hot set" by the feature extractor (matches the Zipf option's
    #: low-index-hot convention).
    hot_page_fraction: float = 0.125
    #: A transaction is "hot" when at least this fraction of its
    #: accesses fall in the hot set.
    hot_access_threshold: float = 0.5
    #: Read-set size (pages) above which a transaction is "large".
    large_read_set: int = 16

    def validate(self) -> None:
        """Raise ValueError on out-of-range settings."""
        if not self.read_only_algorithm:
            raise ValueError("read_only_algorithm must be named")
        if not self.update_candidates:
            raise ValueError("need at least one update candidate")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if self.min_samples < 0:
            raise ValueError("min_samples must be non-negative")
        if self.abort_penalty < 0.0:
            raise ValueError("abort_penalty must be non-negative")
        if not 0.0 < self.hot_page_fraction <= 1.0:
            raise ValueError("hot_page_fraction must be in (0, 1]")
        if not 0.0 <= self.hot_access_threshold <= 1.0:
            raise ValueError("hot_access_threshold must be in [0, 1]")
        if self.large_read_set < 1:
            raise ValueError("large_read_set must be positive")


@dataclass(frozen=True)
class WorkloadConfig:
    """Table 2: workload parameters for the (single) host node."""

    num_terminals: int = 128
    think_time: float = 0.0
    classes: Sequence[TransactionClassConfig] = field(
        default_factory=lambda: (TransactionClassConfig(),)
    )
    #: Restart delay before the first response-time observation exists.
    initial_restart_delay: float = 1.0

    def validate(self) -> None:
        """Raise ValueError on out-of-range settings."""
        if self.num_terminals < 1:
            raise ValueError("need at least one terminal")
        if self.think_time < 0:
            raise ValueError("think_time must be non-negative")
        if not self.classes:
            raise ValueError("need at least one transaction class")
        total = sum(cls.terminal_fraction for cls in self.classes)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"class terminal fractions must sum to 1, got {total}"
            )
        for cls in self.classes:
            cls.validate()


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level simulation settings (Tables 1-4 plus run control)."""

    num_proc_nodes: int = 8
    resources: ResourceConfig = field(default_factory=ResourceConfig)
    database: DatabaseConfig = field(default_factory=DatabaseConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: Concurrency control algorithm name, resolved via repro.cc.registry.
    cc_algorithm: str = "2pl"
    #: Table 4: InstPerCCReq — CPU cost of a CC read/write request.
    inst_per_cc_request: float = 0.0
    #: Table 4: DetectionInterval for the rotating Snoop detector (2PL).
    detection_interval: float = 1.0
    #: Run control: measurement horizon after warmup, both in seconds.
    duration: float = 300.0
    warmup: float = 30.0
    #: When positive, keep extending the run (in ``duration``-sized
    #: chunks) until this many commits are measured or
    #: ``max_duration`` is reached.  Heavily loaded small machines have
    #: response times of minutes, so a fixed window can truncate to a
    #: fraction of one multiprogramming "wave"; targeting a commit
    #: count equalizes statistical quality across configurations.
    target_commits: int = 0
    max_duration: float = 3_600.0
    seed: int = 42
    #: Fault injection (extension; see ``repro.faults``).  ``None``
    #: keeps the simulator failure-free and bit-identical to the
    #: verified paper configurations.
    faults: Optional[FaultConfig] = None
    #: Predictive router settings (extension; see ``repro.router``).
    #: Only consulted when ``cc_algorithm`` is ``"router"``; ``None``
    #: means the router's defaults.  Like ``faults``, an absent value
    #: hashes identically to a config predating the subsystem.
    router: Optional[RouterConfig] = None

    def validate(self) -> None:
        """Validate the whole configuration tree."""
        if self.num_proc_nodes < 1:
            raise ValueError("need at least one processing node")
        if self.duration <= 0 or self.warmup < 0:
            raise ValueError("duration positive, warmup non-negative")
        if self.target_commits < 0:
            raise ValueError("target_commits must be non-negative")
        if self.max_duration < self.duration:
            raise ValueError("max_duration must be >= duration")
        if self.inst_per_cc_request < 0:
            raise ValueError("inst_per_cc_request must be non-negative")
        if self.detection_interval <= 0:
            raise ValueError("detection_interval must be positive")
        self.resources.validate()
        self.database.validate(self.num_proc_nodes)
        self.workload.validate()
        if self.faults is not None:
            self.faults.validate()
        if self.router is not None:
            self.router.validate()

    def with_(self, **changes) -> "SimulationConfig":
        """Return a copy with top-level fields replaced."""
        return replace(self, **changes)

    def with_workload(self, **changes) -> "SimulationConfig":
        """Return a copy with workload fields replaced."""
        return replace(self, workload=replace(self.workload, **changes))

    def with_database(self, **changes) -> "SimulationConfig":
        """Return a copy with database fields replaced."""
        return replace(self, database=replace(self.database, **changes))

    def with_resources(self, **changes) -> "SimulationConfig":
        """Return a copy with resource fields replaced."""
        return replace(self, resources=replace(self.resources, **changes))

    def label(self) -> str:
        """Short human-readable summary used in reports."""
        db = self.database
        return (
            f"{self.cc_algorithm} nodes={self.num_proc_nodes} "
            f"degree={db.placement_degree if db.placement is PlacementKind.DECLUSTERED else 1} "
            f"file_size={db.pages_per_partition} "
            f"think={self.workload.think_time:g}s"
        )


def paper_default_config(
    cc_algorithm: str = "2pl",
    think_time: float = 0.0,
    num_proc_nodes: int = 8,
    pages_per_partition: int = 300,
    placement: PlacementKind = PlacementKind.DECLUSTERED,
    placement_degree: Optional[int] = None,
    seed: int = 42,
) -> SimulationConfig:
    """Build a Table 4 configuration with the common experiment knobs."""
    if placement_degree is None:
        placement_degree = (
            num_proc_nodes if placement is PlacementKind.DECLUSTERED else 1
        )
    return SimulationConfig(
        num_proc_nodes=num_proc_nodes,
        database=DatabaseConfig(
            pages_per_partition=pages_per_partition,
            placement=placement,
            placement_degree=placement_degree,
        ),
        workload=WorkloadConfig(think_time=think_time),
        cc_algorithm=cc_algorithm,
        seed=seed,
    )
