"""Top-level simulation assembly and driver.

Wires together the database, nodes, network, concurrency control
managers, workload source, transaction manager, and metrics, then runs
warmup + measurement and packages a
:class:`~repro.core.metrics.SimulationResult`.

Typical use::

    from repro.core import run_simulation
    from repro.core.config import paper_default_config

    result = run_simulation(paper_default_config("2pl", think_time=8.0))
    print(result.throughput, result.mean_response_time)
"""

from __future__ import annotations

from typing import List

from repro.cc import make_algorithm
from repro.cc.base import CCContext, NodeCCManager
from repro.core.config import PlacementKind, SimulationConfig
from repro.core.database import Database
from repro.core.metrics import MetricsCollector, SimulationResult
from repro.core.network import HOST_NODE, NetworkManager
from repro.core.node import Node
from repro.core.resource_manager import ResourceManager
from repro.core.transaction_manager import TransactionManager
from repro.core.workload import Source
from repro.sanitizer import session as sanitizer_session
from repro.sim.kernel import Environment
from repro.sim.streams import RandomStreams

__all__ = ["Simulation", "run_simulation"]


class Simulation:
    """One fully wired simulation instance.

    ``sanitizer`` selects the execution mode: ``None`` (the default)
    auto-creates a :class:`~repro.sanitizer.core.Sanitizer` when a
    sanitizer session is active (``$REPRO_SIMSAN=1`` or
    ``repro.sanitizer.activate()``), ``False`` forces a clean run (the
    differential confirmer's perturbed re-run uses this), and an
    explicit instance is used as-is.  ``tiebreak`` selects the
    same-timestamp dispatch order (``"fifo"`` default,
    ``"reverse-batch"`` for the confirmer) and is mutually exclusive
    with a sanitizer.
    """

    def __init__(
        self,
        config: SimulationConfig,
        auditor=None,
        tracer=None,
        sanitizer=None,
        tiebreak=None,
    ):
        config.validate()
        if sanitizer is None and sanitizer_session.sanitizing_active():
            from repro.sanitizer.core import Sanitizer

            sanitizer = Sanitizer(
                confirm=sanitizer_session.confirm_enabled()
            )
            self._publish_findings = True
        else:
            self._publish_findings = False
        if sanitizer is False:
            sanitizer = None
        self.sanitizer = sanitizer
        self.config = config
        self.auditor = auditor
        self.tracer = tracer
        self._measured_duration = config.duration
        self.env = Environment(sanitizer=sanitizer, tiebreak=tiebreak)
        self.streams = RandomStreams(config.seed)
        if sanitizer is not None:
            self.streams.attach_sanitizer(sanitizer)
        self.database = Database(
            config.database, config.num_proc_nodes
        )
        self.metrics = MetricsCollector()
        self.host = self._make_node(
            HOST_NODE, config.resources.host_cpu_mips
        )
        self._proc_resources = [
            self._make_resources(node, config.resources.node_cpu_mips)
            for node in range(config.num_proc_nodes)
        ]
        cpus = {HOST_NODE: self.host.resources.cpu}
        for node, resources in enumerate(self._proc_resources):
            cpus[node] = resources.cpu
        self.network = NetworkManager(
            self.env, cpus, config.resources.inst_per_msg
        )
        self.cc_algorithm = make_algorithm(config.cc_algorithm)
        # Late-bind config and streams before any node manager exists:
        # composite algorithms (the router) build their children here.
        self.cc_algorithm.bind(config, self.streams)
        self.source = Source(
            config.workload, self.database, self.streams
        )
        # The CC context needs the transaction manager's abort entry
        # point; break the cycle with a forwarding closure.
        self.cc_context = CCContext(
            self.env,
            request_abort=self._forward_abort,
            detection_interval=config.detection_interval,
        )
        self.node_cc_managers: List[NodeCCManager] = [
            self.cc_algorithm.make_node_manager(node, self.cc_context)
            for node in range(config.num_proc_nodes)
        ]
        self.proc_nodes = [
            Node(node, resources, manager)
            for node, (resources, manager) in enumerate(
                zip(self._proc_resources, self.node_cc_managers)
            )
        ]
        self.fault_injector = None
        if config.faults is not None:
            # Imported lazily: failure-free simulations never touch
            # the fault subsystem.
            from repro.faults.injectors import FaultInjector
            from repro.faults.schedule import FaultSchedule

            schedule = FaultSchedule(
                config.faults,
                self.streams,
                config.num_proc_nodes,
                horizon=config.warmup + config.max_duration,
            )
            self.fault_injector = FaultInjector(
                self.env,
                config.faults,
                schedule,
                self.network,
                self.proc_nodes,
                self.metrics,
            )
        self.transaction_manager = TransactionManager(
            self.env,
            config,
            self.host,
            self.proc_nodes,
            self.network,
            self.cc_algorithm,
            self.metrics,
            self.streams,
            self.source,
            auditor=auditor,
            tracer=tracer,
            fault_injector=self.fault_injector,
        )

    def _forward_abort(self, transaction, reason, from_node) -> None:
        self.transaction_manager.request_abort(
            transaction, reason, from_node
        )

    def _make_resources(
        self, node_id: int, mips: float
    ) -> ResourceManager:
        resources = self.config.resources
        return ResourceManager(
            self.env,
            node_id,
            mips,
            resources.disks_per_node,
            resources.min_disk_time,
            resources.max_disk_time,
            self.streams.get(f"disk-service-{node_id}", owner="resources"),
            self.streams.get(f"disk-choice-{node_id}", owner="resources"),
            resources.inst_per_update,
        )

    def _make_node(self, node_id: int, mips: float) -> Node:
        return Node(node_id, self._make_resources(node_id, mips))

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run warmup + measurement; return the packaged result.

        With ``target_commits`` set, the measurement window is extended
        in ``duration``-sized chunks until enough commits have been
        observed (or ``max_duration`` is hit), so lightly loaded and
        long-response-time configurations get comparable statistics.
        """
        config = self.config
        self.transaction_manager.start()
        self.cc_algorithm.start_global(self)
        if self.fault_injector is not None:
            self.fault_injector.start()
        if config.warmup > 0.0:
            self.env.run(until=config.warmup)
            self._reset_statistics()
        measure_start = self.env.now
        self.env.run(until=measure_start + config.duration)
        while (
            config.target_commits > 0
            and self.metrics.commits.count < config.target_commits
            and self.env.now - measure_start + config.duration
            <= config.max_duration
        ):
            self.env.run(until=self.env.now + config.duration)
        self._measured_duration = self.env.now - measure_start
        self.env.check_crashes()
        sanitizer = self.sanitizer
        if self.fault_injector is not None and sanitizer is None:
            self.fault_injector.assert_no_leaks()
        result = self._build_result()
        if sanitizer is not None:
            # Leak audit (stranded work becomes findings instead of an
            # exception) + the differential race confirmer.
            sanitizer.finish_run(self, result)
            if self._publish_findings:
                sanitizer_session.record_run(sanitizer.finalize())
        return result

    def _reset_statistics(self) -> None:
        now = self.env.now
        self.metrics.reset(now)
        self.host.resources.reset_statistics(now)
        for resources in self._proc_resources:
            resources.reset_statistics(now)
        self.network.messages_sent.reset()
        self.network.messages_dropped.reset()

    def _build_result(self) -> SimulationResult:
        now = self.env.now
        config = self.config
        metrics = self.metrics
        cpu_utils = [
            resources.cpu_utilization(now)
            for resources in self._proc_resources
        ]
        disk_utils = [
            resources.disk_utilization(now)
            for resources in self._proc_resources
        ]
        if config.database.placement is PlacementKind.COLOCATED:
            degree = 1
        else:
            degree = config.database.placement_degree
        fault_fields = {}
        faults = self.fault_injector
        if faults is not None:
            measure_start = now - self._measured_duration
            degraded = faults.degraded_time_in_window(
                measure_start, now
            )
            degraded_commits = metrics.degraded_commits.count
            fault_fields = {
                "faults_enabled": True,
                "node_crashes": faults.crashes,
                "commits_despite_faults": degraded_commits,
                "availability_throughput": (
                    degraded_commits / degraded
                    if degraded > 0.0
                    else 0.0
                ),
                "failure_abort_ratio": metrics.failure_abort_ratio,
                "mean_blocked_2pc_time": (
                    metrics.blocked_2pc_times.mean
                ),
                "blocked_2pc_count": metrics.blocked_2pc_times.count,
                "messages_dropped": (
                    self.network.messages_dropped.count
                ),
                "per_node_downtime": faults.downtime_in_window(
                    measure_start, now
                ),
            }
        router_fields = {}
        if self.cc_algorithm.name == "router":
            router_fields = {
                "router_enabled": True,
                "router_class_commits": dict(
                    sorted(metrics.class_commits.items())
                ),
                "router_class_aborts": dict(
                    sorted(metrics.class_aborts.items())
                ),
                "router_class_mean_response": {
                    key: tally.mean
                    for key, tally in sorted(
                        metrics.class_response.items()
                    )
                },
                "router_class_lock_waits": dict(
                    sorted(metrics.class_lock_waits.items())
                ),
                "router_class_algorithms": {
                    key: dict(sorted(arms.items()))
                    for key, arms in sorted(
                        metrics.class_algorithms.items()
                    )
                },
            }
        return SimulationResult(
            label=config.label(),
            cc_algorithm=self.cc_algorithm.name,
            think_time=config.workload.think_time,
            num_proc_nodes=config.num_proc_nodes,
            placement_degree=degree,
            pages_per_partition=config.database.pages_per_partition,
            seed=config.seed,
            measured_duration=self._measured_duration,
            commits=metrics.commits.count,
            aborts=metrics.aborts.count,
            throughput=metrics.throughput(now),
            mean_response_time=metrics.response_times.mean,
            response_time_ci=metrics.response_batches.half_width(),
            response_time_p50=metrics.response_histogram.percentile(0.50),
            response_time_p90=metrics.response_histogram.percentile(0.90),
            response_time_p99=metrics.response_histogram.percentile(0.99),
            abort_ratio=metrics.abort_ratio,
            mean_blocking_time=metrics.blocking_times.mean,
            blocking_count=metrics.blocking_times.count,
            avg_node_cpu_utilization=(
                sum(cpu_utils) / len(cpu_utils) if cpu_utils else 0.0
            ),
            avg_disk_utilization=(
                sum(disk_utils) / len(disk_utils)
                if disk_utils
                else 0.0
            ),
            host_cpu_utilization=self.host.resources.cpu_utilization(
                now
            ),
            messages_sent=self.network.messages_sent.count,
            per_node_cpu_utilization=cpu_utils,
            per_node_disk_utilization=disk_utils,
            abort_reasons=dict(metrics.abort_reasons),
            **fault_fields,
            **router_fields,
        )


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Build and run a simulation in one call."""
    return Simulation(config).run()
