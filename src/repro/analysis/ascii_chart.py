"""ASCII line charts for figure series.

The offline environment has no plotting stack, so the CLI's ``--chart``
flag renders each :class:`~repro.analysis.series.FigureSeries` as a
terminal chart: one letter per curve, a y-axis with min/max labels, and
the shared x-axis along the bottom.  Points are plotted at their scaled
positions; when two curves land on the same cell the later curve's
marker wins and a ``*`` marks exact collisions of three or more.

This is deliberately simple — the tables remain the ground truth; the
charts exist to make trends (thrashing humps, crossovers) visible at a
glance in logs and CI output.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.series import FigureSeries

__all__ = ["render_chart"]

#: Markers assigned to curves in insertion order.
_MARKERS = "ox+#@%&$"


def _scale(
    value: float, low: float, high: float, cells: int
) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(cells - 1, max(0, round(position * (cells - 1))))


def render_chart(
    series: FigureSeries,
    width: int = 64,
    height: int = 16,
) -> str:
    """Render the series as an ASCII chart (a multi-line string)."""
    finite: List[float] = [
        value
        for curve in series.curves.values()
        for value in curve
        if value is not None
    ]
    if not finite or len(series.x_values) < 2:
        return f"{series.title}\n(no data to chart)"
    y_low, y_high = min(finite), max(finite)
    if y_low == y_high:
        y_low -= 0.5
        y_high += 0.5
    x_low, x_high = series.x_values[0], series.x_values[-1]
    grid = [[" "] * width for _ in range(height)]
    legend: Dict[str, str] = {}
    for index, (name, curve) in enumerate(series.curves.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend[name] = marker
        for x, value in zip(series.x_values, curve):
            if value is None:
                continue
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(value, y_low, y_high, height)
            cell = grid[row][column]
            if cell == " ":
                grid[row][column] = marker
            elif cell != marker:
                grid[row][column] = "*"
    lines = [series.title]
    top_label = f"{y_high:.4g}"
    bottom_label = f"{y_low:.4g}"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(label_width)
        elif row_index == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    axis = "-" * width
    lines.append(f"{' ' * label_width} +{axis}")
    x_left = f"{x_low:.4g}"
    x_right = f"{x_high:.4g}"
    padding = width - len(x_left) - len(x_right)
    lines.append(
        f"{' ' * label_width}  {x_left}{' ' * max(1, padding)}"
        f"{x_right}  ({series.x_label})"
    )
    legend_text = "  ".join(
        f"{marker}={name}" for name, marker in legend.items()
    )
    lines.append(f"{' ' * label_width}  {legend_text}")
    lines.append(f"{' ' * label_width}  y: {series.y_label}")
    return "\n".join(lines)
