"""Analysis utilities: figure series, speedups, degradations, tables."""

from repro.analysis.series import FigureSeries, format_table
from repro.analysis.speedup import (
    percent_degradation,
    ratio_curves,
    ratio_series,
)

__all__ = [
    "FigureSeries",
    "format_table",
    "percent_degradation",
    "ratio_curves",
    "ratio_series",
]
