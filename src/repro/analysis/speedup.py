"""Speedup and degradation arithmetic (paper §4.1, §4.2).

The paper's derived metrics:

* *Throughput speedup* of configuration B over A: ``tput_B / tput_A``.
* *Response-time speedup*: ``rt_A / rt_B`` (bigger is better for B).
* *Percent response-time degradation* of an algorithm relative to NO_DC:
  ``100 * (rt_algo - rt_nodc) / rt_nodc``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["percent_degradation", "ratio_curves", "ratio_series"]


def ratio_series(
    numerators: Sequence[Optional[float]],
    denominators: Sequence[Optional[float]],
) -> List[Optional[float]]:
    """Pointwise ``numerator / denominator``; None where undefined."""
    if len(numerators) != len(denominators):
        raise ValueError("series lengths differ")
    out: List[Optional[float]] = []
    for numerator, denominator in zip(numerators, denominators):
        if (
            numerator is None
            or denominator is None
            or denominator == 0.0
        ):
            out.append(None)
        else:
            out.append(numerator / denominator)
    return out


def ratio_curves(
    numerator_curves: dict,
    denominator_curves: dict,
) -> dict:
    """Per-name pointwise ratios over two curve dictionaries."""
    return {
        name: ratio_series(
            numerator_curves[name], denominator_curves[name]
        )
        for name in numerator_curves
        if name in denominator_curves
    }


def percent_degradation(
    values: Sequence[Optional[float]],
    baseline: Sequence[Optional[float]],
) -> List[Optional[float]]:
    """``100 * (value - baseline) / baseline`` pointwise."""
    if len(values) != len(baseline):
        raise ValueError("series lengths differ")
    out: List[Optional[float]] = []
    for value, base in zip(values, baseline):
        if value is None or base is None or base == 0.0:
            out.append(None)
        else:
            out.append(100.0 * (value - base) / base)
    return out
