"""Figure series: the x/y data behind one paper figure, plus formatting.

Every experiment produces one or more :class:`FigureSeries`; the
benchmark harness prints them with :func:`format_table` so the rows the
paper plots can be read straight off the benchmark output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["FigureSeries", "format_table"]


@dataclass
class FigureSeries:
    """One figure: a shared x-axis and one curve per algorithm."""

    title: str
    x_label: str
    y_label: str
    x_values: List[float]
    curves: Dict[str, List[Optional[float]]] = field(
        default_factory=dict
    )

    def add_curve(
        self, name: str, values: Sequence[Optional[float]]
    ) -> None:
        """Attach a named curve; must match the x-axis length."""
        values = list(values)
        if len(values) != len(self.x_values):
            raise ValueError(
                f"curve {name!r} has {len(values)} points, "
                f"x-axis has {len(self.x_values)}"
            )
        self.curves[name] = values

    def curve(self, name: str) -> List[Optional[float]]:
        """The named curve's y-values."""
        return self.curves[name]

    def value_at(self, name: str, x: float) -> Optional[float]:
        """The named curve's value at x (exact match)."""
        index = self.x_values.index(x)
        return self.curves[name][index]

    def __str__(self) -> str:
        return format_table(self)


def _format_cell(value: Optional[float], width: int) -> str:
    if value is None:
        return "-".rjust(width)
    if value == 0:
        return "0".rjust(width)
    magnitude = abs(value)
    if magnitude >= 1000:
        text = f"{value:.0f}"
    elif magnitude >= 10:
        text = f"{value:.1f}"
    elif magnitude >= 0.01:
        text = f"{value:.3f}"
    else:
        text = f"{value:.2e}"
    return text.rjust(width)


def format_table(series: FigureSeries, width: int = 9) -> str:
    """Render a figure as a fixed-width text table.

    The column width stretches to fit the longest curve name (plus a
    separating space) so adjacent headers never run together.
    """
    names = list(series.curves)
    longest = max(
        [len(series.x_label)] + [len(name) for name in names]
    )
    width = max(width, longest + 1)
    header = series.x_label.rjust(width) + "".join(
        name.rjust(width) for name in names
    )
    lines = [series.title, "-" * len(series.title), header]
    for index, x in enumerate(series.x_values):
        row = _format_cell(x, width)
        for name in names:
            row += _format_cell(series.curves[name][index], width)
        lines.append(row)
    lines.append(
        f"({series.y_label} vs {series.x_label})"
    )
    return "\n".join(lines)
