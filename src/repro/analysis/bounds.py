"""Analytic bounds and estimates for the simulated machine.

Back-of-the-envelope models the paper's parameter choices were designed
around (§4.1): the disks are the bottleneck ("the processing nodes
operate in an I/O-bound region"), the CPUs run at 80-90% when the disks
saturate, and the light-load response-time speedup of d-way parallelism
is limited by the *longest* cohort (footnote 12's 64/12 ≈ 5.33
argument).

These closed forms serve two purposes:

* capacity planning for users configuring their own machines, and
* cross-validation — the integration tests assert the simulator lands
  within tolerance of these bounds, catching resource-accounting bugs.

All functions take a :class:`~repro.core.config.SimulationConfig`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import (
    SimulationConfig,
    TransactionClassConfig,
)

__all__ = [
    "cpu_bound_throughput",
    "disk_bound_throughput",
    "expected_longest_cohort_pages",
    "expected_reads_per_transaction",
    "expected_writes_per_transaction",
    "light_load_response_time",
    "terminal_bound_throughput",
    "throughput_upper_bound",
]


def _mixed(values: Sequence[float],
           classes: Sequence[TransactionClassConfig]) -> float:
    """Terminal-fraction-weighted average over transaction classes."""
    return sum(
        value * cls.terminal_fraction
        for value, cls in zip(values, classes)
    )


def expected_reads_per_transaction(config: SimulationConfig) -> float:
    """Mean pages read per transaction (mixed over classes)."""
    classes = config.workload.classes
    return _mixed(
        [cls.file_count * cls.pages_per_file for cls in classes],
        classes,
    )


def expected_writes_per_transaction(config: SimulationConfig) -> float:
    """Mean pages written per transaction (mixed over classes)."""
    classes = config.workload.classes
    return _mixed(
        [
            cls.file_count * cls.pages_per_file
            * cls.write_probability
            for cls in classes
        ],
        classes,
    )


def _mean_disk_time(config: SimulationConfig) -> float:
    resources = config.resources
    return (resources.min_disk_time + resources.max_disk_time) / 2.0


def disk_bound_throughput(config: SimulationConfig) -> float:
    """Throughput ceiling imposed by aggregate disk capacity.

    Every read is one disk access and every installed write one
    asynchronous write-back; accesses spread evenly over all
    ``nodes x disks_per_node`` disks (the balanced-placement property
    the Database class guarantees).
    """
    accesses = expected_reads_per_transaction(
        config
    ) + expected_writes_per_transaction(config)
    total_disks = (
        config.num_proc_nodes * config.resources.disks_per_node
    )
    return total_disks / (accesses * _mean_disk_time(config))


def _cpu_seconds_per_transaction(config: SimulationConfig) -> float:
    """Processing-node CPU demand of one committed transaction."""
    classes = config.workload.classes
    reads = expected_reads_per_transaction(config)
    writes = expected_writes_per_transaction(config)
    inst_per_page = _mixed(
        [cls.inst_per_page for cls in classes], classes
    )
    resources = config.resources
    degree = config.database.placement_degree
    # Page processing (each read and each write burns InstPerPage),
    # write-back initiation, cohort startups, and the node-side half of
    # the 6 protocol messages per cohort.
    instructions = (
        (reads + writes) * inst_per_page
        + writes * resources.inst_per_update
        + degree * resources.inst_per_startup
        + degree * 6 * resources.inst_per_msg
        + (reads + writes) * config.inst_per_cc_request
    )
    return instructions / (resources.node_cpu_mips * 1e6)


def cpu_bound_throughput(config: SimulationConfig) -> float:
    """Throughput ceiling imposed by aggregate node-CPU capacity."""
    return config.num_proc_nodes / _cpu_seconds_per_transaction(
        config
    )


def throughput_upper_bound(config: SimulationConfig) -> float:
    """min(disk bound, CPU bound) — no-contention saturation rate."""
    return min(
        disk_bound_throughput(config), cpu_bound_throughput(config)
    )


def expected_longest_cohort_pages(
    mean_pages: int, degree: int
) -> float:
    """E[max of ``degree`` iid Uniform{mean/2 .. 3*mean/2} draws].

    The paper's footnote 12: with cohort sizes uniform on 4..12, the
    expected longest of 8 cohorts is close to 12, limiting the 8-way
    response-time speedup to 64/12 ≈ 5.33 rather than 64/8 = 8.
    """
    low = max(1, mean_pages // 2)
    high = (3 * mean_pages) // 2
    span = high - low + 1
    # E[max] = high - sum_{k=low}^{high-1} P(max <= k)
    expected = float(high)
    for k in range(low, high):
        cdf = (k - low + 1) / span
        expected -= cdf ** degree
    return expected


def light_load_response_time(config: SimulationConfig) -> float:
    """Estimated response time of a lone transaction in the machine.

    The critical path is the longest cohort: startup, then for each of
    its pages a disk read plus page processing (update pages pay a
    second processing burst), then the two round trips of the commit
    protocol.  Message wire time is zero; CPU message costs on an idle
    machine are microseconds and included for completeness.
    """
    (cls,) = (
        config.workload.classes
        if len(config.workload.classes) == 1
        else (config.workload.classes[0],)
    )
    degree = config.database.placement_degree
    longest = expected_longest_cohort_pages(
        cls.file_count * cls.pages_per_file // degree
        if degree == 1
        else cls.pages_per_file,
        degree,
    )
    if degree == 1:
        # A single cohort does all partitions' pages sequentially.
        longest = cls.file_count * cls.pages_per_file
    resources = config.resources
    node_second = 1.0 / (resources.node_cpu_mips * 1e6)
    host_second = 1.0 / (resources.host_cpu_mips * 1e6)
    page_time = _mean_disk_time(config) + cls.inst_per_page * (
        1.0 + cls.write_probability
    ) * node_second
    startup = (
        resources.inst_per_startup * (host_second + node_second)
    )
    messages = 6 * resources.inst_per_msg * (
        host_second + node_second
    )
    return startup + longest * page_time + messages


def terminal_bound_throughput(
    config: SimulationConfig, response_time: float
) -> float:
    """Closed-system throughput: terminals / (think + response)."""
    workload = config.workload
    cycle = workload.think_time + response_time
    if cycle <= 0.0:
        return float("inf")
    return workload.num_terminals / cycle
