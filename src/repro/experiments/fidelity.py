"""Fidelity presets: how long and how finely to simulate.

Full-length sweeps of all 17 figures take tens of minutes of pure-Python
simulation; the benchmark suite defaults to a reduced but
trend-preserving fidelity.  ``REPRO_FIDELITY=full`` (or ``quick``,
``smoke``) switches the preset globally for the benchmarks.  Wall-clock
cost additionally scales down with the sweep executor's worker count
(``--jobs`` / ``$REPRO_JOBS``, see :mod:`repro.experiments.runner`) and
with how much of the grid the persistent result cache already holds.

* ``smoke`` — seconds per figure; for CI wiring tests only.
* ``quick`` — the default: every figure in roughly a minute or two,
  shapes intact, visible noise at the lightly loaded end.
* ``full``  — the EXPERIMENTS.md setting: long windows, commit targets,
  a dense think-time grid.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Tuple

__all__ = ["Fidelity"]


@dataclass(frozen=True)
class Fidelity:
    """Run-length and sweep-density settings for experiments."""

    name: str
    duration: float
    warmup: float
    target_commits: int
    max_duration: float
    think_times: Tuple[float, ...]
    seed: int = 42

    @classmethod
    def smoke(cls) -> "Fidelity":
        """Seconds-per-figure wiring check."""
        return cls(
            name="smoke",
            duration=10.0,
            warmup=5.0,
            target_commits=0,
            max_duration=10.0,
            think_times=(0.0, 24.0, 96.0),
        )

    @classmethod
    def quick(cls) -> "Fidelity":
        """Default: trend-preserving, a minute or two per figure."""
        return cls(
            name="quick",
            duration=60.0,
            warmup=20.0,
            target_commits=250,
            max_duration=600.0,
            think_times=(0.0, 8.0, 24.0, 48.0, 72.0, 96.0, 120.0),
        )

    @classmethod
    def bench(cls) -> "Fidelity":
        """Benchmark default: a sparser grid than quick, still
        commit-targeted so heavily loaded points aren't truncated."""
        return cls(
            name="bench",
            duration=40.0,
            warmup=15.0,
            target_commits=150,
            max_duration=400.0,
            think_times=(0.0, 8.0, 24.0, 48.0, 96.0),
        )

    @classmethod
    def full(cls) -> "Fidelity":
        """EXPERIMENTS.md setting: long windows, dense grid."""
        return cls(
            name="full",
            duration=150.0,
            warmup=50.0,
            target_commits=1500,
            max_duration=2400.0,
            think_times=(
                0.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0,
                48.0, 64.0, 80.0, 96.0, 120.0,
            ),
        )

    @classmethod
    def from_env(cls, default: str = "quick") -> "Fidelity":
        """Resolve the preset named by ``$REPRO_FIDELITY``."""
        name = os.environ.get("REPRO_FIDELITY", default).lower()
        presets = {
            "smoke": cls.smoke,
            "quick": cls.quick,
            "bench": cls.bench,
            "full": cls.full,
        }
        if name not in presets:
            known = ", ".join(sorted(presets))
            raise ValueError(
                f"unknown fidelity {name!r}; known: {known}"
            )
        return presets[name]()

    def with_think_times(
        self, think_times: Tuple[float, ...]
    ) -> "Fidelity":
        """A copy sweeping a different think-time grid."""
        return replace(self, think_times=think_times)

    def apply(self, config):
        """Stamp run-control fields onto a SimulationConfig."""
        return config.with_(
            duration=self.duration,
            warmup=self.warmup,
            target_commits=self.target_commits,
            max_duration=self.max_duration,
            seed=self.seed,
        )
