"""Simulation sweep runner with per-process memoization.

Figures 2-7 are different views of one machine-size sweep, and figures
8-13 of one partitioning sweep; the memo cache means each underlying
simulation runs once per process regardless of how many figures ask for
it.  Configurations are frozen dataclasses and therefore hashable, so
the cache key is the configuration itself.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Sequence, Tuple

from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult
from repro.core.simulation import Simulation

__all__ = ["clear_cache", "run_config", "sweep"]

_CACHE: Dict[SimulationConfig, SimulationResult] = {}


def run_config(config: SimulationConfig) -> SimulationResult:
    """Run (or fetch the memoized result of) one configuration."""
    result = _CACHE.get(config)
    if result is None:
        result = Simulation(config).run()
        _CACHE[config] = result
    return result


def clear_cache() -> None:
    """Drop all memoized results (tests use this for isolation)."""
    _CACHE.clear()


def sweep(
    algorithms: Sequence[str],
    think_times: Iterable[float],
    config_factory: Callable[[str, float], SimulationConfig],
) -> Dict[Tuple[str, float], SimulationResult]:
    """Run ``config_factory(algorithm, think_time)`` over the grid."""
    results: Dict[Tuple[str, float], SimulationResult] = {}
    for algorithm in algorithms:
        for think_time in think_times:
            config = config_factory(algorithm, think_time)
            results[(algorithm, think_time)] = run_config(config)
    return results
