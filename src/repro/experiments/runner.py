"""Simulation sweep runner: memoized, disk-cached, parallel.

Figures 2-7 are different views of one machine-size sweep, and figures
8-13 of one partitioning sweep; the shared :class:`SweepExecutor` memo
means each underlying simulation runs once per process regardless of
how many figures ask for it.  Configurations are frozen dataclasses and
therefore hashable, so the memo key is the configuration itself.

On top of the per-process memo, two opt-in layers:

* **Parallelism** — ``sweep``/``run_many`` fan missing grid points out
  in chunks over the session-persistent worker pool
  (:mod:`~repro.experiments.worker_pool`: spawned once, reused by
  every batch).  The worker count comes from an explicit ``jobs``
  argument, else ``$REPRO_JOBS``, else ``os.cpu_count()``; chunk size
  from ``configure(chunk=...)``, else ``$REPRO_CHUNK``, else
  ``ceil(missing / (jobs * 4))``.  ``jobs=1`` is the fully serial
  path.  Parallel results are assembled deterministically and are
  bit-identical to serial runs.
* **Persistence** — ``configure(cache_dir=...)`` attaches an on-disk
  :class:`~repro.experiments.result_cache.ResultCache` (the CLI and
  benchmarks point it at ``results/.cache``), so re-running a sweep
  after an interrupted or previous session only simulates missing
  points.
"""

from __future__ import annotations

from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult
from repro.core.simulation import Simulation  # noqa: F401 - legacy seam
from repro.experiments.executor import (
    SweepExecutionError,
    SweepExecutor,
    resolve_chunk_size,
    resolve_jobs,
)
from repro.experiments.result_cache import ResultCache

__all__ = [
    "SweepExecutionError",
    "cache_stats",
    "clear_cache",
    "configure",
    "get_executor",
    "resolve_chunk_size",
    "resolve_jobs",
    "run_config",
    "run_many",
    "sweep",
]

#: The process-wide default executor.  No disk cache by default: library
#: and test use stays hermetic; entry points opt in via configure().
_EXECUTOR = SweepExecutor()


def get_executor() -> SweepExecutor:
    """The process-wide default executor."""
    return _EXECUTOR


def configure(
    jobs: Optional[int] = None,
    cache_dir: Union[Path, str, None] = None,
    chunk: Optional[int] = None,
) -> SweepExecutor:
    """Set the default executor's workers, disk cache, and chunking.

    ``jobs=None`` keeps per-call resolution (``$REPRO_JOBS`` /
    cpu count); ``cache_dir=None`` detaches any disk cache;
    ``chunk=None`` keeps per-batch resolution (``$REPRO_CHUNK`` /
    computed size).
    """
    resolve_jobs(jobs)  # validate now, including a bad $REPRO_JOBS
    if chunk is not None and chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    _EXECUTOR.jobs = jobs
    _EXECUTOR.chunk = chunk
    if cache_dir is None:
        _EXECUTOR.cache = None
    else:
        _EXECUTOR.cache = ResultCache(Path(cache_dir))
    return _EXECUTOR


def run_config(config: SimulationConfig) -> SimulationResult:
    """Run (or fetch the cached result of) one configuration."""
    return _EXECUTOR.run_one(config)


def run_many(
    configs: Sequence[SimulationConfig],
    jobs: Optional[int] = None,
) -> List[SimulationResult]:
    """Run a batch of configurations, in parallel where possible."""
    return _EXECUTOR.run_many(configs, jobs=jobs)


def clear_cache() -> None:
    """Drop all memoized results (tests use this for isolation).

    Only the in-memory memo; any disk cache is left intact.
    """
    _EXECUTOR.clear_memo()
    _EXECUTOR.stats.reset()


def cache_stats() -> Dict[str, object]:
    """Counters for the default executor (and its disk cache, if any)."""
    return _EXECUTOR.cache_stats()


def sweep(
    algorithms: Sequence[str],
    think_times: Iterable[float],
    config_factory: Callable[[str, float], SimulationConfig],
    jobs: Optional[int] = None,
) -> Dict[Tuple[str, float], SimulationResult]:
    """Run ``config_factory(algorithm, think_time)`` over the grid.

    Grid points are independent simulations, so missing ones run on a
    process pool (see :func:`run_many`); the returned mapping is
    ordered and keyed exactly as the serial implementation was.
    """
    grid: List[Tuple[str, float]] = [
        (algorithm, think_time)
        for algorithm in algorithms
        for think_time in think_times
    ]
    configs = [
        config_factory(algorithm, think_time)
        for algorithm, think_time in grid
    ]
    results = run_many(configs, jobs=jobs)
    return dict(zip(grid, results))
