"""Experiment §4.4: the effect of system overheads.

Eight processing nodes, smaller database (300 pages/partition); the
degree of partitioning sweeps 1-, 2-, 4-, and 8-way, and the message /
process-startup CPU overheads vary.  The reported quantity is the
response-time speedup of d-way partitioning relative to 1-way at a
fixed think time.  Regenerates Figures 14-17 plus the two textual
ablations:

* Figure 14 — zero overheads (InstPerStartup=0, InstPerMsg=0), think 0.
* Figure 15 — zero overheads, think 8 s.
* Figure 16 — InstPerMsg=4K, think 0.
* Figure 17 — InstPerMsg=4K, think 8 s.
* baseline-overheads ablation — the paper's standard 2K/1K costs
  ("very similar to Figures 14 and 15").
* startup-cost ablation — InstPerMsg=0, InstPerStartup=20K ("very close
  to Figures 16 and 17", limited by process initiation cost).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.series import FigureSeries
from repro.core.config import (
    PlacementKind,
    SimulationConfig,
    paper_default_config,
)
from repro.core.metrics import SimulationResult
from repro.experiments.fidelity import Fidelity
from repro.experiments.runner import run_many
from repro.experiments.scaling import ALGORITHMS

__all__ = [
    "DEGREES",
    "figure14",
    "figure15",
    "figure16",
    "figure17",
    "overhead_config",
    "overhead_speedup_series",
    "startup_cost_ablation",
    "baseline_overheads_ablation",
]

DEGREES = (1, 2, 4, 8)


def overhead_config(
    fidelity: Fidelity,
    algorithm: str,
    think_time: float,
    degree: int,
    inst_per_startup: float,
    inst_per_msg: float,
) -> SimulationConfig:
    """The §4.4 configuration for one design point."""
    if degree == 1:
        placement = PlacementKind.COLOCATED
    else:
        placement = PlacementKind.DECLUSTERED
    config = paper_default_config(
        algorithm,
        think_time=think_time,
        num_proc_nodes=8,
        pages_per_partition=300,
        placement=placement,
        placement_degree=degree,
        seed=fidelity.seed,
    )
    config = config.with_resources(
        inst_per_startup=inst_per_startup,
        inst_per_msg=inst_per_msg,
    )
    return fidelity.apply(config)


def overhead_speedup_series(
    fidelity: Fidelity,
    think_time: float,
    inst_per_startup: float,
    inst_per_msg: float,
    title: str,
) -> FigureSeries:
    """Response-time speedup vs degree of partitioning."""
    grid = [
        (algorithm, degree)
        for algorithm in ALGORITHMS
        for degree in DEGREES
    ]
    configs = [
        overhead_config(
            fidelity, algorithm, think_time, degree,
            inst_per_startup, inst_per_msg,
        )
        for algorithm, degree in grid
    ]
    results: Dict[Tuple[str, int], SimulationResult] = dict(
        zip(grid, run_many(configs))
    )
    series = FigureSeries(
        title=title,
        x_label="degree",
        y_label="response-time speedup vs 1-way",
        x_values=[float(degree) for degree in DEGREES],
    )
    for algorithm in ALGORITHMS:
        base = results[(algorithm, 1)].mean_response_time
        curve = []
        for degree in DEGREES:
            response = results[(algorithm, degree)].mean_response_time
            curve.append(base / response if response > 0 else None)
        series.add_curve(algorithm, curve)
    return series


def figure14(fidelity: Fidelity) -> List[FigureSeries]:
    """Zero overheads, think time 0 (heaviest load)."""
    return [
        overhead_speedup_series(
            fidelity, 0.0, 0.0, 0.0,
            "Figure 14: Speedup vs partitioning, no overheads, "
            "think 0s",
        )
    ]


def figure15(fidelity: Fidelity) -> List[FigureSeries]:
    """Zero overheads, think time 8 s."""
    return [
        overhead_speedup_series(
            fidelity, 8.0, 0.0, 0.0,
            "Figure 15: Speedup vs partitioning, no overheads, "
            "think 8s",
        )
    ]


def figure16(fidelity: Fidelity) -> List[FigureSeries]:
    """Expensive messages (4K instructions/end), think time 0."""
    return [
        overhead_speedup_series(
            fidelity, 0.0, 0.0, 4_000.0,
            "Figure 16: Speedup vs partitioning, InstPerMsg=4K, "
            "think 0s",
        )
    ]


def figure17(fidelity: Fidelity) -> List[FigureSeries]:
    """Expensive messages, think time 8 s."""
    return [
        overhead_speedup_series(
            fidelity, 8.0, 0.0, 4_000.0,
            "Figure 17: Speedup vs partitioning, InstPerMsg=4K, "
            "think 8s",
        )
    ]


def baseline_overheads_ablation(
    fidelity: Fidelity,
) -> List[FigureSeries]:
    """The standard 2K-startup/1K-message costs at both think times.

    The paper reports these "very similar to those of Figures 14 and
    15", which is why the main experiments use them throughout.
    """
    return [
        overhead_speedup_series(
            fidelity, 0.0, 2_000.0, 1_000.0,
            "Ablation: standard overheads (2K startup, 1K msg), "
            "think 0s",
        ),
        overhead_speedup_series(
            fidelity, 8.0, 2_000.0, 1_000.0,
            "Ablation: standard overheads (2K startup, 1K msg), "
            "think 8s",
        ),
    ]


def startup_cost_ablation(fidelity: Fidelity) -> List[FigureSeries]:
    """Heavyweight processes: InstPerMsg=0, InstPerStartup=20K.

    The paper reports results "very close to those of Figures 16 and
    17", with process initiation cost the factor limiting speedup.
    """
    return [
        overhead_speedup_series(
            fidelity, 0.0, 20_000.0, 0.0,
            "Ablation: InstPerStartup=20K, no message cost, think 0s",
        ),
        overhead_speedup_series(
            fidelity, 8.0, 20_000.0, 0.0,
            "Ablation: InstPerStartup=20K, no message cost, think 8s",
        ),
    ]
