"""Persistent on-disk cache of simulation results.

Every point of a figure sweep is a pure function of its frozen
:class:`~repro.core.config.SimulationConfig` (seed included), so a
finished simulation never needs to run again: the result is stored as
one JSON file under the cache directory, keyed by a stable SHA-256
content hash of the configuration tree plus a schema version stamp.

Key properties:

* **Stable keys across processes.**  The digest is computed from a
  canonical JSON rendering of the config dataclasses (sorted dict keys,
  enums by value), not from Python ``hash()``, so it is identical
  across interpreter invocations and machines.
* **Incremental invalidation.**  The digest composes
  :data:`SCHEMA_VERSION` with :func:`source_fingerprint`, a content
  hash of the simulation-relevant source packages (``sim/``, ``cc/``,
  ``core/``).  Editing any of those files dirties every entry
  automatically — no manual version bump needed — while an
  experiment-layer-only edit (``experiments/``, ``analysis/``,
  ``lint/``) leaves the whole cache warm.  ``SCHEMA_VERSION`` remains
  for changes the fingerprint cannot see (entry codec shape).
  ``python -m repro.experiments cache prune`` drops entries whose
  fingerprint component went stale; ``cache clear`` removes
  everything.
* **Corruption tolerance.**  Unreadable or truncated entries are
  treated as misses and deleted; the point is simply recomputed.
* **Atomic writes.**  Entries are written to a temp file and
  ``os.replace``-d into place, so parallel writers and interrupted
  runs never leave half-written entries behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Optional

from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult

__all__ = [
    "SCHEMA_VERSION",
    "SIM_SOURCE_PACKAGES",
    "CacheStats",
    "ResultCache",
    "config_digest",
    "decode_result",
    "default_cache_dir",
    "encode_result",
    "source_fingerprint",
]

#: Bump only for changes the source fingerprint cannot observe — the
#: shape of the entry/digest payload itself.  Behavioural changes to
#: the simulator dirty the cache automatically through
#: :func:`source_fingerprint`.
#: 3: lock release order made explicitly deterministic (sorted PageId
#:    grant passes) instead of set-iteration order.
#: 4: digest composes the source fingerprint; entries record it.
#: 5: router subsystem — SimulationResult gained router_* fields and
#:    the fingerprint now covers ``router/`` (new key shape either
#:    way, so old entries must not round-trip into new results).
SCHEMA_VERSION = 5

#: Packages (under ``src/repro/``) whose source content determines
#: simulation output, and therefore participates in every cache key.
#: Experiment/analysis/lint code only *consumes* results, so edits
#: there never invalidate entries.
SIM_SOURCE_PACKAGES = ("sim", "cc", "core", "router")

#: Memoized per process; every config_digest call reuses it.
_FINGERPRINT: Optional[str] = None


def source_fingerprint(root: Optional[Path] = None) -> str:
    """Content hash of the simulation-relevant source tree.

    Hashes every ``*.py`` file under :data:`SIM_SOURCE_PACKAGES`
    (sorted by relative path, so the digest is directory-order
    independent) below ``root`` — by default the installed ``repro``
    package directory.  The default result is memoized for the life of
    the process: sources do not change under a running sweep, and pool
    workers inherit or recompute the same value.
    """
    global _FINGERPRINT
    if root is None and _FINGERPRINT is not None:
        return _FINGERPRINT
    base = root
    if base is None:
        import repro

        base = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for package in SIM_SOURCE_PACKAGES:
        package_dir = base / package
        if not package_dir.is_dir():
            continue
        for path in sorted(package_dir.rglob("*.py")):
            relative = path.relative_to(base).as_posix()
            digest.update(relative.encode("utf-8"))
            digest.update(b"\0")
            try:
                digest.update(path.read_bytes())
            except OSError:
                continue
            digest.update(b"\0")
    fingerprint = digest.hexdigest()[:16]
    if root is None:
        _FINGERPRINT = fingerprint
    return fingerprint

#: Default location, relative to the current working directory, used by
#: the CLI and benchmarks; overridable via ``$REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = Path("results") / ".cache"


def default_cache_dir() -> Path:
    """The cache directory named by ``$REPRO_CACHE_DIR`` or the default."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return DEFAULT_CACHE_DIR


def _jsonable(value: Any) -> Any:
    """Canonical JSON-ready rendering of a config value tree."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # None-valued fields are omitted: an absent optional subsystem
        # (e.g. ``faults=None``) must hash identically whether the
        # field predates the subsystem or not, so adding such a field
        # never invalidates existing failure-free cache entries.
        return {
            field.name: _jsonable(item)
            for field in dataclasses.fields(value)
            if (item := getattr(value, field.name)) is not None
        }
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(value[key]) for key in sorted(value)}
    return value


def config_digest(config: SimulationConfig) -> str:
    """Stable SHA-256 content hash of ``config`` plus the composed
    invalidation key (schema stamp + source fingerprint)."""
    payload = {
        "schema": SCHEMA_VERSION,
        "source": source_fingerprint(),
        "type": type(config).__name__,
        "config": _jsonable(config),
    }
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def encode_result(result: SimulationResult) -> str:
    """Render a result through the cache codec (compact JSON).

    This doubles as the executor's IPC transport format: pool workers
    return these strings instead of pickled ``SimulationResult``
    object graphs, so the parent never unpickles anything deeper than
    ``str``.
    """
    return json.dumps(
        dataclasses.asdict(result),
        sort_keys=True,
        separators=(",", ":"),
    )


def decode_result(text: str) -> SimulationResult:
    """Inverse of :func:`encode_result`; raises on shape mismatch."""
    return _result_from_payload(json.loads(text))


@dataclasses.dataclass
class CacheStats:
    """Counters for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0  # corrupted/stale entries dropped

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class ResultCache:
    """A directory of ``<digest>.json`` simulation-result entries."""

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.stats = CacheStats()

    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}.json"

    def get(self, config: SimulationConfig) -> Optional[SimulationResult]:
        """The cached result for ``config``, or ``None`` on a miss.

        Corrupted, unreadable, or schema-stale entries count as misses
        and are deleted so they are rewritten on the next store.
        """
        path = self._path(config_digest(config))
        try:
            raw = path.read_text(encoding="utf-8")
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        try:
            entry = json.loads(raw)
            if entry.get("schema") != SCHEMA_VERSION:
                raise ValueError("schema mismatch")
            if entry.get("source") != source_fingerprint():
                raise ValueError("source fingerprint mismatch")
            result = _result_from_payload(entry["result"])
        except (KeyError, TypeError, ValueError):
            self._evict(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, config: SimulationConfig, result: SimulationResult) -> None:
        """Store ``result`` for ``config`` (atomic; last writer wins)."""
        digest = config_digest(config)
        entry = {
            "schema": SCHEMA_VERSION,
            "source": source_fingerprint(),
            "digest": digest,
            "label": config.label(),
            "result": dataclasses.asdict(result),
        }
        path = self._path(digest)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            temp = path.with_name(f".{digest}.{os.getpid()}.tmp")
            temp.write_text(
                json.dumps(entry, sort_keys=True), encoding="utf-8"
            )
            os.replace(temp, path)
        except OSError:
            # A read-only or full disk degrades to a cold cache, never
            # to a failed sweep.
            return
        self.stats.stores += 1

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        self.stats.evictions += 1

    def prune(self) -> int:
        """Drop entries with a stale invalidation key; returns count.

        Incremental invalidation never *overwrites* stale entries —
        their digests simply stop matching — so a long-lived cache
        directory accumulates dead files across code changes.  Prune
        removes every entry whose schema stamp or source-fingerprint
        component no longer matches the running code (unreadable
        entries are removed too).
        """
        current = source_fingerprint()
        removed = 0
        for path in self._entry_paths():
            stale = False
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
                stale = (
                    entry.get("schema") != SCHEMA_VERSION
                    or entry.get("source") != current
                )
            except (OSError, ValueError):
                stale = True
            if stale:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def source_census(self) -> Dict[str, int]:
        """Entry counts by freshness: how much did the last edit dirty?

        ``{"fresh": n, "stale": m}`` — fresh entries match the running
        code's composed key; stale ones (old fingerprint, old schema,
        or unreadable) would be recomputed by the next sweep and can
        be reclaimed with :meth:`prune`.
        """
        current = source_fingerprint()
        census = {"fresh": 0, "stale": 0}
        for path in self._entry_paths():
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
                fresh = (
                    entry.get("schema") == SCHEMA_VERSION
                    and entry.get("source") == current
                )
            except (OSError, ValueError):
                fresh = False
            census["fresh" if fresh else "stale"] += 1
        return census

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def _entry_paths(self):
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.json"))

    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        return len(self._entry_paths())

    def size_bytes(self) -> int:
        """Total on-disk size of all entries."""
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total


def _result_from_payload(payload: Dict[str, Any]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult`; raises on shape mismatch."""
    if not isinstance(payload, dict):
        raise TypeError(f"result payload is {type(payload).__name__}")
    field_names = {
        field.name for field in dataclasses.fields(SimulationResult)
    }
    if set(payload) - field_names:
        raise ValueError("unknown result fields")
    return SimulationResult(**payload)
