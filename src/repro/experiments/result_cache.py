"""Persistent on-disk cache of simulation results.

Every point of a figure sweep is a pure function of its frozen
:class:`~repro.core.config.SimulationConfig` (seed included), so a
finished simulation never needs to run again: the result is stored as
one JSON file under the cache directory, keyed by a stable SHA-256
content hash of the configuration tree plus a schema version stamp.

Key properties:

* **Stable keys across processes.**  The digest is computed from a
  canonical JSON rendering of the config dataclasses (sorted dict keys,
  enums by value), not from Python ``hash()``, so it is identical
  across interpreter invocations and machines.
* **Explicit invalidation.**  Bumping :data:`SCHEMA_VERSION` (done
  whenever the simulator's behaviour changes) changes every digest, so
  stale results are never served.  ``python -m repro.experiments cache
  clear`` removes entries by hand.
* **Corruption tolerance.**  Unreadable or truncated entries are
  treated as misses and deleted; the point is simply recomputed.
* **Atomic writes.**  Entries are written to a temp file and
  ``os.replace``-d into place, so parallel writers and interrupted
  runs never leave half-written entries behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Optional

from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult

__all__ = [
    "SCHEMA_VERSION",
    "CacheStats",
    "ResultCache",
    "config_digest",
    "default_cache_dir",
]

#: Bump whenever simulation behaviour changes in a way that makes old
#: cached results wrong (kernel scheduling changes, model fixes, new
#: result fields).  Any bump invalidates the entire cache.
#: 3: lock release order made explicitly deterministic (sorted PageId
#:    grant passes) instead of set-iteration order.
SCHEMA_VERSION = 3

#: Default location, relative to the current working directory, used by
#: the CLI and benchmarks; overridable via ``$REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = Path("results") / ".cache"


def default_cache_dir() -> Path:
    """The cache directory named by ``$REPRO_CACHE_DIR`` or the default."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return DEFAULT_CACHE_DIR


def _jsonable(value: Any) -> Any:
    """Canonical JSON-ready rendering of a config value tree."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # None-valued fields are omitted: an absent optional subsystem
        # (e.g. ``faults=None``) must hash identically whether the
        # field predates the subsystem or not, so adding such a field
        # never invalidates existing failure-free cache entries.
        return {
            field.name: _jsonable(item)
            for field in dataclasses.fields(value)
            if (item := getattr(value, field.name)) is not None
        }
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(value[key]) for key in sorted(value)}
    return value


def config_digest(config: SimulationConfig) -> str:
    """Stable SHA-256 content hash of ``config`` plus the schema stamp."""
    payload = {
        "schema": SCHEMA_VERSION,
        "type": type(config).__name__,
        "config": _jsonable(config),
    }
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Counters for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0  # corrupted/stale entries dropped

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class ResultCache:
    """A directory of ``<digest>.json`` simulation-result entries."""

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.stats = CacheStats()

    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}.json"

    def get(self, config: SimulationConfig) -> Optional[SimulationResult]:
        """The cached result for ``config``, or ``None`` on a miss.

        Corrupted, unreadable, or schema-stale entries count as misses
        and are deleted so they are rewritten on the next store.
        """
        path = self._path(config_digest(config))
        try:
            raw = path.read_text(encoding="utf-8")
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        try:
            entry = json.loads(raw)
            if entry.get("schema") != SCHEMA_VERSION:
                raise ValueError("schema mismatch")
            result = _result_from_payload(entry["result"])
        except (KeyError, TypeError, ValueError):
            self._evict(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, config: SimulationConfig, result: SimulationResult) -> None:
        """Store ``result`` for ``config`` (atomic; last writer wins)."""
        digest = config_digest(config)
        entry = {
            "schema": SCHEMA_VERSION,
            "digest": digest,
            "label": config.label(),
            "result": dataclasses.asdict(result),
        }
        path = self._path(digest)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            temp = path.with_name(f".{digest}.{os.getpid()}.tmp")
            temp.write_text(
                json.dumps(entry, sort_keys=True), encoding="utf-8"
            )
            os.replace(temp, path)
        except OSError:
            # A read-only or full disk degrades to a cold cache, never
            # to a failed sweep.
            return
        self.stats.stores += 1

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
        self.stats.evictions += 1

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def _entry_paths(self):
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.json"))

    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        return len(self._entry_paths())

    def size_bytes(self) -> int:
        """Total on-disk size of all entries."""
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total


def _result_from_payload(payload: Dict[str, Any]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult`; raises on shape mismatch."""
    if not isinstance(payload, dict):
        raise TypeError(f"result payload is {type(payload).__name__}")
    field_names = {
        field.name for field in dataclasses.fields(SimulationResult)
    }
    if set(payload) - field_names:
        raise ValueError("unknown result fields")
    return SimulationResult(**payload)
