"""Extension experiment: the predictive router on a mixed workload.

The paper's experiments run one transaction class under one algorithm
per machine — uniform page access, every terminal identical.  That
design cannot express the workload regime modern routers target: a
*blend* of transaction classes with different contention profiles, where
no fixed algorithm is the right choice for all of them at once.  This
experiment builds exactly that blend and asks whether the
:mod:`repro.router` dispatch layer — MVCC snapshot reads for declared
read-only transactions, a per-class bandit over pessimistic/optimistic
choices for updates — beats every fixed single-algorithm configuration
at the same seed.

The blend (one shared relation, so the classes genuinely collide):

* **read-heavy** — half the terminals issue declared read-only scans of
  four partitions with Zipf-skewed page choice, overlapping the
  updaters' hot set.  Under a locking algorithm these queue behind hot
  write locks (and make writers queue behind their shared locks);
  under BTO/OPT they suffer read-induced rejects; under MVCC they
  commit on the first attempt, always.
* **hot-update** — a quarter of the terminals hammer one partition
  with strongly skewed updates (the hot-key class).  First-committer-
  wins MVCC and certification-time OPT burn whole executions per
  conflict here; blocking algorithms mostly queue instead.
* **dist-update** — the remaining quarter run the paper's distributed
  update transaction across all eight partitions, uniform access.

Fixed MVCC loses the blend on hot-update aborts; every fixed
pessimistic/optimistic algorithm loses it on read-heavy interference.
The router classifies each transaction at BEGIN (read-only declaration,
hot-set share, distribution, read-set size) and routes classes to
different concurrently-running algorithms, taking the best regime of
each — the headline figure R1 shows its throughput curve above every
fixed algorithm's.

Figure R4 decomposes the router run by class, and R5 pins the MVCC
read-path invariant: routed read-only transactions record **zero** lock
waits and **zero** aborts at every operating point.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.series import FigureSeries
from repro.core.config import (
    DatabaseConfig,
    PlacementKind,
    SimulationConfig,
    TransactionClassConfig,
    WorkloadConfig,
)
from repro.core.metrics import SimulationResult
from repro.experiments.fidelity import Fidelity
from repro.experiments.runner import run_many

__all__ = [
    "MIXED_CLASSES",
    "ROUTER_ALGORITHMS",
    "mixed_config",
    "router_experiment",
]

#: Every fixed algorithm the router is compared against, plus the
#: router itself (always last; R1's headline claim is router > each).
ROUTER_ALGORITHMS = ("2pl", "ww", "bto", "opt", "mvcc", "router")

#: The mixed blend.  One relation shared by all terminals (the classes
#: must collide on data, not sit in disjoint relation groups), eight
#: partitions declustered over the eight nodes.
MIXED_CLASSES = (
    TransactionClassConfig(
        name="read-heavy",
        terminal_fraction=0.5,
        file_count=4,
        pages_per_file=8,
        write_probability=0.0,
        access_skew=0.8,
    ),
    TransactionClassConfig(
        name="hot-update",
        terminal_fraction=0.25,
        file_count=1,
        pages_per_file=4,
        write_probability=0.75,
        access_skew=0.9,
    ),
    TransactionClassConfig(
        name="dist-update",
        terminal_fraction=0.25,
        file_count=8,
        pages_per_file=4,
        write_probability=0.25,
    ),
)

#: Machine: the paper's 8 nodes; a single 8-partition relation.
_NUM_NODES = 8
_PAGES_PER_PARTITION = 300

SweepResults = Dict[Tuple[str, float], SimulationResult]


def mixed_config(
    fidelity: Fidelity, algorithm: str, think_time: float
) -> SimulationConfig:
    """One mixed-blend operating point for ``algorithm``."""
    config = SimulationConfig(
        num_proc_nodes=_NUM_NODES,
        database=DatabaseConfig(
            num_relations=1,
            partitions_per_relation=8,
            pages_per_partition=_PAGES_PER_PARTITION,
            placement=PlacementKind.DECLUSTERED,
            placement_degree=8,
        ),
        workload=WorkloadConfig(
            think_time=think_time,
            classes=MIXED_CLASSES,
        ),
        cc_algorithm=algorithm,
        seed=fidelity.seed,
    )
    return fidelity.apply(config)


def _run_grid(
    fidelity: Fidelity, think_times: Sequence[float]
) -> SweepResults:
    grid = [
        (algorithm, think)
        for algorithm in ROUTER_ALGORITHMS
        for think in think_times
    ]
    configs = [
        mixed_config(fidelity, algorithm, think)
        for algorithm, think in grid
    ]
    return dict(zip(grid, run_many(configs)))


def _metric_series(
    results: SweepResults,
    think_times: Sequence[float],
    metric: str,
    title: str,
    y_label: str,
) -> FigureSeries:
    series = FigureSeries(
        title=title,
        x_label="think time (s)",
        y_label=y_label,
        x_values=list(think_times),
    )
    for algorithm in ROUTER_ALGORITHMS:
        series.add_curve(
            algorithm,
            [
                getattr(results[(algorithm, think)], metric)
                for think in think_times
            ],
        )
    return series


def _class_keys(results: SweepResults) -> List[str]:
    keys = set()
    for (algorithm, _), result in sorted(results.items()):
        if algorithm == "router":
            keys.update(result.router_class_commits)
    return sorted(keys)


def _router_class_series(
    results: SweepResults, think_times: Sequence[float]
) -> FigureSeries:
    """R4: the router run decomposed by routing class (commits)."""
    series = FigureSeries(
        title="Router R4: Per-class commits under the router",
        x_label="think time (s)",
        y_label="commits (measured window)",
        x_values=list(think_times),
    )
    for key in _class_keys(results):
        series.add_curve(
            key,
            [
                results[("router", think)].router_class_commits.get(
                    key, 0
                )
                for think in think_times
            ],
        )
    return series


def _read_only_invariant_series(
    results: SweepResults, think_times: Sequence[float]
) -> FigureSeries:
    """R5: routed read-only lock waits + aborts (flat zero).

    The MVCC read path never takes a lock and never kills an attempt,
    so both curves are identically zero — plotted rather than merely
    asserted so a regression is visible in the figure output.
    """
    series = FigureSeries(
        title="Router R5: Read-only lock waits and aborts (router)",
        x_label="think time (s)",
        y_label="count (measured window)",
        x_values=list(think_times),
    )
    waits = []
    aborts = []
    for think in think_times:
        result = results[("router", think)]
        ro_keys = [
            key
            for key in result.router_class_commits
            if key.startswith("ro-")
        ]
        waits.append(
            sum(
                result.router_class_lock_waits.get(key, 0)
                for key in ro_keys
            )
        )
        aborts.append(
            sum(
                result.router_class_aborts.get(key, 0)
                for key in ro_keys
            )
        )
    series.add_curve("read-only lock waits", waits)
    series.add_curve("read-only aborts", aborts)
    return series


def router_experiment(fidelity: Fidelity) -> List[FigureSeries]:
    """The mixed-blend sweep; five figure series."""
    results = _run_grid(fidelity, fidelity.think_times)
    return [
        _metric_series(
            results, fidelity.think_times, "throughput",
            "Router R1: Throughput vs think time (mixed blend)",
            "transactions/second",
        ),
        _metric_series(
            results, fidelity.think_times, "mean_response_time",
            "Router R2: Mean response time vs think time (mixed blend)",
            "seconds",
        ),
        _metric_series(
            results, fidelity.think_times, "abort_ratio",
            "Router R3: Abort ratio vs think time (mixed blend)",
            "aborts per commit",
        ),
        _router_class_series(results, fidelity.think_times),
        _read_only_invariant_series(results, fidelity.think_times),
    ]
