"""Registry mapping experiment ids to their figure generators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.analysis.series import FigureSeries
from repro.experiments import ablations, faults, overheads, \
    partitioning, replication, router, scaleout, scaling, sensitivity
from repro.experiments.fidelity import Fidelity

__all__ = ["EXPERIMENTS", "Experiment", "get_experiment"]

FigureFunc = Callable[[Fidelity], List[FigureSeries]]


@dataclass(frozen=True)
class Experiment:
    """One regenerable experiment (a paper figure or ablation)."""

    id: str
    description: str
    run: FigureFunc


_DEFINITIONS = [
    Experiment(
        "fig2", "Throughput vs think time, 1- and 8-node (§4.2)",
        scaling.figure2,
    ),
    Experiment(
        "fig3", "Response time vs think time, 1- and 8-node (§4.2)",
        scaling.figure3,
    ),
    Experiment(
        "fig4", "Throughput speedup, 8-node over 1-node (§4.2)",
        scaling.figure4,
    ),
    Experiment(
        "fig5", "Response-time speedup, 8-node over 1-node (§4.2)",
        scaling.figure5,
    ),
    Experiment(
        "fig6", "Disk utilizations, 1- and 8-node (§4.2)",
        scaling.figure6,
    ),
    Experiment(
        "fig7", "CPU utilizations, 1- and 8-node (§4.2)",
        scaling.figure7,
    ),
    Experiment(
        "scaling4", "4-node speedup variant from the §4.2 text",
        scaling.scaling_speedups_4node,
    ),
    Experiment(
        "scaling16",
        "16-node, 128-read-transaction variant (§4.1 footnote 7)",
        scaling.scaling_speedups_16node,
    ),
    Experiment(
        "fig8", "Partitioning speedup, larger DB (§4.3)",
        partitioning.figure8,
    ),
    Experiment(
        "fig9", "Partitioning speedup, smaller DB (§4.3)",
        partitioning.figure9,
    ),
    Experiment(
        "fig10", "Response-time degradation, 8-way (§4.3)",
        partitioning.figure10,
    ),
    Experiment(
        "fig11", "Response-time degradation, 1-way (§4.3)",
        partitioning.figure11,
    ),
    Experiment(
        "fig12", "Abort ratio, 8-way (§4.3)", partitioning.figure12,
    ),
    Experiment(
        "fig13", "Abort ratio, 1-way (§4.3)", partitioning.figure13,
    ),
    Experiment(
        "fig14", "Speedup vs degree, no overheads, think 0 (§4.4)",
        overheads.figure14,
    ),
    Experiment(
        "fig15", "Speedup vs degree, no overheads, think 8 (§4.4)",
        overheads.figure15,
    ),
    Experiment(
        "fig16", "Speedup vs degree, 4K messages, think 0 (§4.4)",
        overheads.figure16,
    ),
    Experiment(
        "fig17", "Speedup vs degree, 4K messages, think 8 (§4.4)",
        overheads.figure17,
    ),
    Experiment(
        "overheads-baseline",
        "Standard 2K/1K overheads at degrees 1-8 (§4.4 text)",
        overheads.baseline_overheads_ablation,
    ),
    Experiment(
        "startup20k",
        "InstPerStartup=20K ablation (§4.4 text)",
        overheads.startup_cost_ablation,
    ),
    Experiment(
        "txn32", "32-read transaction ablation (§4.2 footnote 9)",
        ablations.small_transactions,
    ),
    Experiment(
        "seq-vs-par",
        "Sequential (RPC) vs parallel cohort execution (§3.3)",
        ablations.sequential_vs_parallel,
    ),
    Experiment(
        "writeprob",
        "WriteProb 1/8 vs 1/4 — the paper's Table 4 contradiction",
        ablations.write_probability_ablation,
    ),
    Experiment(
        "spectrum",
        "Extension: all 7 algorithms across the blocking/restart "
        "spectrum",
        ablations.algorithm_spectrum,
    ),
    Experiment(
        "host-speed",
        "Sensitivity: host CPU speed (the §4.1 'won't limit' claim)",
        sensitivity.host_speed_sensitivity,
    ),
    Experiment(
        "detection-interval",
        "Sensitivity: Snoop interval for 2PL (footnote 2)",
        sensitivity.detection_interval_sensitivity,
    ),
    Experiment(
        "terminals",
        "Sensitivity: multiprogramming level (thrashing hill)",
        sensitivity.terminal_sweep,
    ),
    Experiment(
        "replication",
        "Extension: replicated data x message cost (footnote 13)",
        replication.replication_experiment,
    ),
    Experiment(
        "faults",
        "Extension: availability under node crashes and message "
        "loss",
        faults.faults_experiment,
    ),
    Experiment(
        "scaleout",
        "Extension: machine scaleout to 1000 nodes / 10^5 terminals "
        "at fixed per-node load",
        scaleout.scaleout_experiment,
    ),
    Experiment(
        "router",
        "Extension: predictive transaction router vs every fixed "
        "algorithm on a mixed blend",
        router.router_experiment,
    ),
]

EXPERIMENTS: Dict[str, Experiment] = {
    experiment.id: experiment for experiment in _DEFINITIONS
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id (e.g. "fig9")."""
    experiment = EXPERIMENTS.get(experiment_id.lower())
    if experiment is None:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        )
    return experiment
