"""Replication experiment (extension; the paper's footnote 13).

The paper's experiments use unreplicated data, but footnote 13 recalls
that in the companion study [Care88] "the optimistic algorithm actually
outperformed two-phase locking ... when several copies of each data
item needed updating and messages were expensive."  The model here
supports replicated files (read-one/write-all), so this experiment
sweeps the replication factor and the message cost for 2PL, OPT, and
BTO and reports throughput — checking how far the footnote's effect
carries over to parallel-cohort execution: replication multiplies the
early write-lock footprint of 2PL across copy sites, while OPT defers
all of its write work to certification.
"""

from __future__ import annotations

from typing import List

from repro.analysis.series import FigureSeries
from repro.core.config import paper_default_config
from repro.experiments.fidelity import Fidelity
from repro.experiments.runner import run_many

__all__ = ["replication_experiment"]

COPIES = (1, 2, 4)
MESSAGE_COSTS = (1_000.0, 4_000.0)
THINK_TIME = 8.0
ALGORITHMS = ("2pl", "bto", "opt")


def replication_experiment(fidelity: Fidelity) -> List[FigureSeries]:
    """Throughput vs replication factor at two message costs."""
    figures: List[FigureSeries] = []
    for inst_per_msg in MESSAGE_COSTS:
        series = FigureSeries(
            title=(
                "Extension (footnote 13): throughput vs replication, "
                f"InstPerMsg={inst_per_msg / 1000:g}K, "
                f"think {THINK_TIME:g}s"
            ),
            x_label="copies",
            y_label="transactions/second",
            x_values=[float(copies) for copies in COPIES],
        )
        configs = [
            fidelity.apply(
                paper_default_config(
                    algorithm,
                    think_time=THINK_TIME,
                    seed=fidelity.seed,
                ).with_database(copies=copies).with_resources(
                    inst_per_msg=inst_per_msg
                )
            )
            for algorithm in ALGORITHMS
            for copies in COPIES
        ]
        results = iter(run_many(configs))
        for algorithm in ALGORITHMS:
            series.add_curve(
                algorithm,
                [next(results).throughput for _copies in COPIES],
            )
        figures.append(series)
    return figures
