"""Extension experiment: availability under injected failures.

The paper's machines never fail: every algorithm is compared on a
fault-free cluster.  This extension asks how the four distributed
concurrency control algorithms degrade when the machine misbehaves,
using the deterministic fault layer in :mod:`repro.faults`:

* **Series A — node crashes.**  Per-node MTBF is swept as a multiple
  of the measurement window (with MTTR fixed at 5% of the window and a
  small background message-loss rate), so the x-axis reads "how many
  windows a node survives on average".  A crash kills the node's
  resident cohorts and volatile CC state; in-flight messages touching
  the node are lost.  This series runs at *2-way* declustering: under
  the paper's full 8-way declustering every transaction touches every
  node, so a single down node stops all commits and the
  degraded-window availability metric is zero by construction — the
  availability cost of declustering itself.  At degree 2 a one-node
  outage leaves transactions on the other relations runnable.
* **Series B — message loss.**  No crashes; the per-message loss
  probability is swept from 0 (the armed-but-idle baseline) upward at
  full 8-way declustering (maximum message exposure).  Lost votes and
  decisions exercise the 2PC timeout machinery: presumed abort on
  missing votes, decision resends, and participant-side
  blocked-on-2PC spans.

Both series run on the 8-node machine at think time 8 s over a
*fixed* measurement window (commit targets would stretch the window
under faults and make downtime fractions incomparable).

Expected shape: OPT loses the least to message loss before
certification (its cohorts never wait on remote state during
execution), while 2PL additionally exposes its Snoop detector and
blocked lock queues to failures and accumulates the most
blocked-on-2PC time; higher crash rates shift every algorithm's abort
mix from data contention to ``fault-*`` reasons.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.series import FigureSeries
from repro.core.config import (
    PlacementKind,
    SimulationConfig,
    paper_default_config,
)
from repro.core.metrics import SimulationResult
from repro.experiments.fidelity import Fidelity
from repro.experiments.runner import run_many
from repro.faults.schedule import FaultConfig

__all__ = [
    "FAULT_ALGORITHMS",
    "LOSS_PROBABILITIES",
    "MTBF_FACTORS",
    "crash_config",
    "faults_experiment",
    "loss_config",
]

#: The paper's four distributed CC algorithms (no_dc has no 2PC).
FAULT_ALGORITHMS = ("2pl", "bto", "ww", "opt")

#: Series A x-axis: per-node MTBF in multiples of the measured window.
MTBF_FACTORS = (1.0, 2.0, 4.0, 8.0)

#: Series B x-axis: per-message loss probability (0 = armed baseline).
LOSS_PROBABILITIES = (0.0, 0.005, 0.02, 0.05)

#: Background loss rate for the crash series.
_CRASH_SERIES_LOSS = 0.002

#: Machine size and load for both series (Figure 2b operating point).
_NUM_NODES = 8
_THINK_TIME = 8.0

#: 2PC failure-detection knobs, fixed across both sweeps.  The
#: execution timeout clears the ~4 s mean response time at this
#: operating point with room for the tail; the per-phase timeouts are
#: generous multiples of a message round trip.
_EXECUTION_TIMEOUT = 12.0
_PHASE_TIMEOUT = 1.5

SweepResults = Dict[Tuple[str, float], SimulationResult]


def _base_config(
    fidelity: Fidelity, algorithm: str, degree: int
) -> SimulationConfig:
    config = paper_default_config(
        algorithm,
        think_time=_THINK_TIME,
        num_proc_nodes=_NUM_NODES,
        pages_per_partition=300,
        placement=PlacementKind.DECLUSTERED,
        placement_degree=degree,
        seed=fidelity.seed,
    )
    # Fixed window: a commit target would stretch the measurement
    # under heavy faults and make per-run downtime incomparable.
    return fidelity.apply(config).with_(target_commits=0)


def _fault_config(**overrides) -> FaultConfig:
    return FaultConfig(
        execution_timeout=_EXECUTION_TIMEOUT,
        prepare_timeout=_PHASE_TIMEOUT,
        decision_timeout=_PHASE_TIMEOUT,
        ack_timeout=_PHASE_TIMEOUT,
        **overrides,
    )


def crash_config(
    fidelity: Fidelity, algorithm: str, mtbf_factor: float
) -> SimulationConfig:
    """Series A point: node MTBF = ``mtbf_factor`` windows.

    2-way declustering — see the module docstring: full declustering
    couples every transaction to every node and zeroes the
    degraded-window commit rate by construction.
    """
    config = _base_config(fidelity, algorithm, degree=2)
    return config.with_(
        faults=_fault_config(
            node_mtbf=mtbf_factor * fidelity.duration,
            node_mttr=0.05 * fidelity.duration,
            message_loss_probability=_CRASH_SERIES_LOSS,
        )
    )


def loss_config(
    fidelity: Fidelity, algorithm: str, loss_probability: float
) -> SimulationConfig:
    """Series B point: lossy network, no crashes, full declustering."""
    config = _base_config(fidelity, algorithm, degree=_NUM_NODES)
    return config.with_(
        faults=_fault_config(
            message_loss_probability=loss_probability,
        )
    )


def _run_grid(
    fidelity: Fidelity,
    x_values: Sequence[float],
    config_factory,
) -> SweepResults:
    grid = [
        (algorithm, x)
        for algorithm in FAULT_ALGORITHMS
        for x in x_values
    ]
    configs = [
        config_factory(fidelity, algorithm, x)
        for algorithm, x in grid
    ]
    return dict(zip(grid, run_many(configs)))


def _metric_series(
    results: SweepResults,
    x_values: Sequence[float],
    metric: str,
    title: str,
    x_label: str,
    y_label: str,
) -> FigureSeries:
    series = FigureSeries(
        title=title,
        x_label=x_label,
        y_label=y_label,
        x_values=list(x_values),
    )
    for algorithm in FAULT_ALGORITHMS:
        series.add_curve(
            algorithm,
            [
                getattr(results[(algorithm, x)], metric)
                for x in x_values
            ],
        )
    return series


def faults_experiment(fidelity: Fidelity) -> List[FigureSeries]:
    """Both availability sweeps; seven figure series."""
    crashes = _run_grid(fidelity, MTBF_FACTORS, crash_config)
    losses = _run_grid(fidelity, LOSS_PROBABILITIES, loss_config)
    mtbf_label = "node MTBF (windows)"
    loss_label = "message loss probability"
    return [
        _metric_series(
            crashes, MTBF_FACTORS, "throughput",
            "Faults A1: Throughput vs node MTBF",
            mtbf_label, "transactions/second",
        ),
        _metric_series(
            crashes, MTBF_FACTORS, "availability_throughput",
            "Faults A2: Commit rate while degraded vs node MTBF",
            mtbf_label, "transactions/second (degraded window)",
        ),
        _metric_series(
            crashes, MTBF_FACTORS, "failure_abort_ratio",
            "Faults A3: Failure-induced abort fraction vs node MTBF",
            mtbf_label, "fraction of aborts",
        ),
        _metric_series(
            crashes, MTBF_FACTORS, "mean_blocked_2pc_time",
            "Faults A4: Mean blocked-on-2PC span vs node MTBF",
            mtbf_label, "seconds",
        ),
        _metric_series(
            losses, LOSS_PROBABILITIES, "throughput",
            "Faults B1: Throughput vs message loss",
            loss_label, "transactions/second",
        ),
        _metric_series(
            losses, LOSS_PROBABILITIES, "failure_abort_ratio",
            "Faults B2: Failure-induced abort fraction vs message loss",
            loss_label, "fraction of aborts",
        ),
        _metric_series(
            losses, LOSS_PROBABILITIES, "mean_blocked_2pc_time",
            "Faults B3: Mean blocked-on-2PC span vs message loss",
            loss_label, "seconds",
        ),
    ]
