"""Session-persistent process pool for the sweep executor.

A figure session issues many ``run_many`` batches (each figure group,
each fidelity, each CLI invocation runs several), and the old
executor paid full ``ProcessPoolExecutor`` spawn for every one — on a
small machine that tax alone pushed the parallel path below serial
speed (the 0.913x trajectory point in ``BENCH_parallel_runner.json``).

This module owns exactly one pool per process:

* **Lazily created** on the first parallel batch, sized to the largest
  worker count requested so far.
* **Reused** by every subsequent batch from any executor (the pool is
  deliberately module-level: ``runner``'s default executor, ad-hoc
  ``SweepExecutor`` instances, and benchmarks all share it).
* **Grown, never shrunk**: a request for more workers than the current
  pool holds replaces it (one extra spawn per session maximum per
  size increase); a request for fewer reuses the larger pool — the
  executor throttles in-flight chunks to the requested ``jobs``, so a
  big pool serving a small batch still runs at most ``jobs`` chunks
  concurrently.
* **Torn down atexit**, or explicitly via :func:`shutdown_pool` —
  tests that monkeypatch worker-visible module state or environment
  variables must call it first, because workers snapshot both at
  spawn time.

:func:`pool_generation` counts pool creations since process start, so
tests can prove that consecutive batches spawned no new pool.
"""

from __future__ import annotations

import atexit
import concurrent.futures
from typing import Optional

__all__ = [
    "discard_pool",
    "get_pool",
    "pool_generation",
    "pool_workers",
    "shutdown_pool",
]

_POOL: Optional[concurrent.futures.ProcessPoolExecutor] = None
_POOL_WORKERS: int = 0
_GENERATION: int = 0


def get_pool(workers: int) -> concurrent.futures.ProcessPoolExecutor:
    """The session pool, (re)created only if ``workers`` outgrows it."""
    global _POOL, _POOL_WORKERS, _GENERATION
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if _POOL is None or _POOL_WORKERS < workers:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
        _POOL = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers
        )
        _POOL_WORKERS = workers
        _GENERATION += 1
    return _POOL


def pool_generation() -> int:
    """How many pools this process has created (reuse proof for tests)."""
    return _GENERATION


def pool_workers() -> int:
    """Worker count of the live pool (0 when no pool exists)."""
    return _POOL_WORKERS if _POOL is not None else 0


def shutdown_pool() -> None:
    """Tear the session pool down (idempotent; atexit calls this)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = 0


def discard_pool() -> None:
    """Drop a broken pool without waiting (next batch respawns).

    ``BrokenProcessPool`` leaves the executor unusable; waiting on its
    shutdown can hang, so the reference is abandoned instead.
    """
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)
