"""Exporting figures and raw results to CSV / JSON.

The CLI's ``--csv``/``--json`` flags use these to persist experiment
output in machine-readable form alongside the human-readable tables, so
downstream analysis (spreadsheets, notebooks, regression tracking) does
not have to re-parse text tables.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Iterable, List

from repro.analysis.series import FigureSeries
from repro.core.metrics import SimulationResult

__all__ = [
    "figure_to_csv",
    "figure_to_dict",
    "figures_to_json",
    "results_to_csv",
    "write_figures",
]


def figure_to_csv(series: FigureSeries) -> str:
    """One figure as CSV: x column plus one column per curve."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    names = list(series.curves)
    writer.writerow([series.x_label] + names)
    for index, x in enumerate(series.x_values):
        row: List[object] = [x]
        for name in names:
            value = series.curves[name][index]
            row.append("" if value is None else value)
        writer.writerow(row)
    return buffer.getvalue()


def figure_to_dict(series: FigureSeries) -> dict:
    """One figure as a JSON-ready dictionary."""
    return {
        "title": series.title,
        "x_label": series.x_label,
        "y_label": series.y_label,
        "x_values": list(series.x_values),
        "curves": {
            name: list(values)
            for name, values in series.curves.items()
        },
    }


def figures_to_json(figures: Iterable[FigureSeries]) -> str:
    """A list of figures as a JSON document."""
    return json.dumps(
        [figure_to_dict(figure) for figure in figures], indent=2
    )


def results_to_csv(results: Iterable[SimulationResult]) -> str:
    """Raw simulation results as CSV (one row per run)."""
    rows = [result.as_dict() for result in results]
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_figures(
    figures: Iterable[FigureSeries],
    directory: Path,
    stem: str,
    csv_output: bool = False,
    json_output: bool = False,
) -> List[Path]:
    """Write CSV and/or JSON files for an experiment's figures.

    Returns the paths written.  CSV gets one file per figure
    (``<stem>.csv``, ``<stem>.2.csv``, ...); JSON one file holding the
    whole list.
    """
    directory.mkdir(parents=True, exist_ok=True)
    figures = list(figures)
    written: List[Path] = []
    if csv_output:
        for index, figure in enumerate(figures):
            suffix = "" if index == 0 else f".{index + 1}"
            path = directory / f"{stem}{suffix}.csv"
            path.write_text(figure_to_csv(figure), encoding="utf-8")
            written.append(path)
    if json_output:
        path = directory / f"{stem}.json"
        path.write_text(figures_to_json(figures), encoding="utf-8")
        written.append(path)
    return written
