"""Experiment §4.3: the impact of parallelism at fixed machine size.

Eight processing nodes throughout; the *placement* of partitions varies
between 1-way (each relation colocated at one node — sequential, single
cohort) and 8-way (each relation declustered over all nodes — eight
parallel cohorts).  Both database sizes are used: 1200 pages/partition
(the "larger" database, mild contention) and 300 pages/partition (the
"smaller", contended one).  Regenerates Figures 8-13:

* Figure 8  — response-time speedup of 8-way over 1-way, larger DB.
* Figure 9  — same, smaller DB.
* Figure 10 — % response-time degradation vs NO_DC, 8-way, smaller DB.
* Figure 11 — same, 1-way.
* Figure 12 — abort ratio, 8-way, smaller DB.
* Figure 13 — abort ratio, 1-way, smaller DB.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.series import FigureSeries
from repro.analysis.speedup import percent_degradation, ratio_series
from repro.core.config import (
    PlacementKind,
    SimulationConfig,
    paper_default_config,
)
from repro.core.metrics import SimulationResult
from repro.experiments.fidelity import Fidelity
from repro.experiments.runner import run_many, sweep
from repro.experiments.scaling import ALGORITHMS

__all__ = [
    "LARGE_DB_PAGES",
    "SMALL_DB_PAGES",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "partitioning_config",
    "partitioning_sweep",
    "partitioning_sweeps",
]

SMALL_DB_PAGES = 300
LARGE_DB_PAGES = 1200

SweepResults = Dict[Tuple[str, float], SimulationResult]


def partitioning_config(
    fidelity: Fidelity,
    algorithm: str,
    think_time: float,
    degree: int,
    pages_per_partition: int,
) -> SimulationConfig:
    """The §4.3 configuration for one (algorithm, load, degree) point."""
    if degree == 1:
        placement = PlacementKind.COLOCATED
    else:
        placement = PlacementKind.DECLUSTERED
    config = paper_default_config(
        algorithm,
        think_time=think_time,
        num_proc_nodes=8,
        pages_per_partition=pages_per_partition,
        placement=placement,
        placement_degree=degree,
        seed=fidelity.seed,
    )
    return fidelity.apply(config)


def partitioning_sweep(
    fidelity: Fidelity, degree: int, pages_per_partition: int
) -> SweepResults:
    """All algorithms over the think-time grid at one placement."""
    return sweep(
        ALGORITHMS,
        fidelity.think_times,
        lambda algorithm, think_time: partitioning_config(
            fidelity, algorithm, think_time, degree,
            pages_per_partition,
        ),
    )


def partitioning_sweeps(
    fidelity: Fidelity,
    degrees: Tuple[int, ...],
    pages_per_partition: int,
) -> List[SweepResults]:
    """Sweeps at several placements, batched as one dispatch.

    Submitting the union grid to ``run_many`` in one call keeps the
    worker pool saturated across the placement boundary instead of
    paying one fan-out barrier per degree.
    """
    grid = [
        (algorithm, think_time)
        for algorithm in ALGORITHMS
        for think_time in fidelity.think_times
    ]
    results = run_many(
        [
            partitioning_config(
                fidelity, algorithm, think_time, degree,
                pages_per_partition,
            )
            for degree in degrees
            for algorithm, think_time in grid
        ]
    )
    return [
        dict(
            zip(
                grid,
                results[index * len(grid):(index + 1) * len(grid)],
            )
        )
        for index in range(len(degrees))
    ]


def _collect(
    fidelity: Fidelity, results: SweepResults, metric: str
) -> Dict[str, List[float]]:
    return {
        algorithm: [
            getattr(results[(algorithm, tt)], metric)
            for tt in fidelity.think_times
        ]
        for algorithm in ALGORITHMS
    }


def _partition_speedup(
    fidelity: Fidelity, pages: int, title: str
) -> FigureSeries:
    one_way, eight_way = partitioning_sweeps(fidelity, (1, 8), pages)
    rt_one = _collect(fidelity, one_way, "mean_response_time")
    rt_eight = _collect(fidelity, eight_way, "mean_response_time")
    series = FigureSeries(
        title=title,
        x_label="think(s)",
        y_label="response-time speedup (1-way rt / 8-way rt)",
        x_values=list(fidelity.think_times),
    )
    for algorithm in ALGORITHMS:
        series.add_curve(
            algorithm,
            ratio_series(rt_one[algorithm], rt_eight[algorithm]),
        )
    return series


def figure8(fidelity: Fidelity) -> List[FigureSeries]:
    """8-way vs 1-way response-time speedup, larger database."""
    return [
        _partition_speedup(
            fidelity, LARGE_DB_PAGES,
            "Figure 8: Partitioning speedup, larger DB "
            "(1200 pages/partition)",
        )
    ]


def figure9(fidelity: Fidelity) -> List[FigureSeries]:
    """8-way vs 1-way response-time speedup, smaller database."""
    return [
        _partition_speedup(
            fidelity, SMALL_DB_PAGES,
            "Figure 9: Partitioning speedup, smaller DB "
            "(300 pages/partition)",
        )
    ]


def _degradation(
    fidelity: Fidelity, degree: int, title: str
) -> FigureSeries:
    results = partitioning_sweep(fidelity, degree, SMALL_DB_PAGES)
    response = _collect(fidelity, results, "mean_response_time")
    baseline = response["no_dc"]
    series = FigureSeries(
        title=title,
        x_label="think(s)",
        y_label="% response-time degradation vs NO_DC",
        x_values=list(fidelity.think_times),
    )
    for algorithm in ALGORITHMS:
        if algorithm == "no_dc":
            continue
        series.add_curve(
            algorithm,
            percent_degradation(response[algorithm], baseline),
        )
    return series


def figure10(fidelity: Fidelity) -> List[FigureSeries]:
    """% response-time degradation vs NO_DC, 8-way partitioning."""
    return [
        _degradation(
            fidelity, 8,
            "Figure 10: Response-time degradation, 8-way, smaller DB",
        )
    ]


def figure11(fidelity: Fidelity) -> List[FigureSeries]:
    """% response-time degradation vs NO_DC, no partitioning."""
    return [
        _degradation(
            fidelity, 1,
            "Figure 11: Response-time degradation, 1-way, smaller DB",
        )
    ]


def _abort_ratio(
    fidelity: Fidelity, degree: int, title: str
) -> FigureSeries:
    results = partitioning_sweep(fidelity, degree, SMALL_DB_PAGES)
    ratios = _collect(fidelity, results, "abort_ratio")
    series = FigureSeries(
        title=title,
        x_label="think(s)",
        y_label="aborts per commit",
        x_values=list(fidelity.think_times),
    )
    for algorithm in ALGORITHMS:
        if algorithm == "no_dc":
            continue
        series.add_curve(algorithm, ratios[algorithm])
    return series


def figure12(fidelity: Fidelity) -> List[FigureSeries]:
    """Abort ratios, 8-way partitioning, smaller database."""
    return [
        _abort_ratio(
            fidelity, 8,
            "Figure 12: Abort ratio, 8-way, smaller DB",
        )
    ]


def figure13(fidelity: Fidelity) -> List[FigureSeries]:
    """Abort ratios, 1-way placement, smaller database."""
    return [
        _abort_ratio(
            fidelity, 1,
            "Figure 13: Abort ratio, 1-way, smaller DB",
        )
    ]
