"""Extension: scaleout of the simulated machine itself (ROADMAP §perf).

The paper stops at 8 processing nodes and 128 terminals.  This
experiment grows the *simulated machine* two orders of magnitude beyond
that — up to 1000 nodes and 10⁵ terminals — while holding the per-node
load fixed, and reports three curves against machine size:

* **throughput** — committed transactions per simulated second.  With
  per-node load fixed it should scale linearly in the node count; a
  bend would indicate an accidental global bottleneck in the model
  (the host node is exercised by every arrival, so this is a real
  check, not a tautology).
* **p99 response time** — should stay flat: every transaction touches
  one 8-partition relation regardless of machine size, so queueing is
  purely local.
* **wall-clock events per second** — a *simulator* metric, not a model
  metric: dispatched kernel events divided by wall-clock run time.
  This is the curve the calendar-queue scheduler and the aggregated
  arrival source exist for; with the O(log n) heap and resident
  terminal processes it sags as the pending-event population grows
  into the tens of thousands, with the O(1) calendar queue it stays
  flat.  Wall-clock numbers are machine-dependent and non-
  deterministic, so this figure is measured on fresh in-process runs
  (never cached) and is excluded from determinism comparisons.

Scaleout configuration, relative to the paper's §4.2 machine: the
relation count grows with the machine (one new 8-partition,
degree-8-declustered relation per added node, so every node hosts
partitions of exactly 8 relations) and each relation keeps its own
fixed population of terminals.  Think time is high (360 s) so the
machine runs arrival-dominated at ~20% per-node disk utilization:
most terminals are idle at any instant, which is precisely the regime
where the pending-event population — and therefore scheduler cost —
is proportional to the terminal count.
"""

from __future__ import annotations

import time
from typing import List, Tuple

from repro.analysis.series import FigureSeries
from repro.core.config import (
    PlacementKind,
    SimulationConfig,
    paper_default_config,
)
from repro.core.simulation import Simulation
from repro.experiments.fidelity import Fidelity

__all__ = [
    "DEGREE",
    "TERMINALS_PER_NODE",
    "THINK_TIME",
    "scaleout_config",
    "scaleout_experiment",
    "scaleout_node_counts",
]

#: Terminals attached per processing node (10⁵ at 1000 nodes).
TERMINALS_PER_NODE = 100

#: Mean think time (s).  High on purpose: see the module docstring.
THINK_TIME = 360.0

#: Declustering degree — the paper's full-declustering for an
#: 8-partition relation.  Machines smaller than 8 nodes fall back to
#: machine-wide declustering.
DEGREE = 8


def scaleout_node_counts(fidelity: Fidelity) -> Tuple[int, ...]:
    """The machine sizes swept at each fidelity level.

    Wall-clock cost grows linearly with the node count (fixed per-node
    load), so the smoke preset stays small and only ``bench``/``full``
    reach the 1000-node / 10⁵-terminal point.
    """
    if fidelity.name == "smoke":
        return (4, 16, 64)
    if fidelity.name == "quick":
        return (8, 32, 128)
    return (8, 64, 256, 1000)


def scaleout_config(
    fidelity: Fidelity,
    num_nodes: int,
    algorithm: str = "2pl",
    terminals_per_node: int = TERMINALS_PER_NODE,
    think_time: float = THINK_TIME,
) -> SimulationConfig:
    """One fixed-per-node-load machine-size point.

    Every node hosts 8 partitions (of 8 distinct relations once the
    machine is at least 8 nodes wide) and every relation carries
    ``terminals_per_node`` terminals, so both the storage and the
    offered load per node are independent of the machine size.
    """
    if num_nodes == 1:
        placement = PlacementKind.COLOCATED
        degree = 1
    else:
        placement = PlacementKind.DECLUSTERED
        degree = min(DEGREE, num_nodes)
    config = paper_default_config(
        algorithm,
        think_time=think_time,
        num_proc_nodes=num_nodes,
        pages_per_partition=300,
        placement=placement,
        placement_degree=degree,
        seed=fidelity.seed,
    )
    config = config.with_database(
        num_relations=max(num_nodes, 8)
    ).with_workload(
        num_terminals=terminals_per_node * num_nodes
    )
    # Run control: a fixed window, shorter than the figure presets.
    # Event counts here are enormous (10⁴-10⁵ concurrent terminals),
    # so statistical quality comes from the population, not the
    # window, and commit-targeted extension would multiply the
    # wall-clock cost of the big points for nothing.
    duration = min(fidelity.duration, 30.0)
    return config.with_(
        duration=duration,
        warmup=min(fidelity.warmup, 10.0),
        target_commits=0,
        max_duration=duration,
    )


def scaleout_experiment(fidelity: Fidelity) -> List[FigureSeries]:
    """Throughput, p99 and simulator event rate vs machine size.

    Runs are in-process and individually timed (the wall-clock series
    would be meaningless from a cached or pooled run), serially so the
    timings don't contend with each other.
    """
    node_counts = scaleout_node_counts(fidelity)
    throughput: List[float] = []
    p99: List[float] = []
    events_per_sec: List[float] = []
    for num_nodes in node_counts:
        simulation = Simulation(scaleout_config(fidelity, num_nodes))
        start = time.perf_counter()
        result = simulation.run()
        wall = time.perf_counter() - start
        throughput.append(result.throughput)
        p99.append(result.response_time_p99)
        events_per_sec.append(
            simulation.env.dispatch_count / wall if wall > 0 else 0.0
        )
    x_values = [float(count) for count in node_counts]
    figures = [
        FigureSeries(
            title="Scaleout: throughput vs machine size "
            "(fixed per-node load)",
            x_label="nodes",
            y_label="throughput (txn/s)",
            x_values=x_values,
        ),
        FigureSeries(
            title="Scaleout: p99 response time vs machine size",
            x_label="nodes",
            y_label="p99 response time (s)",
            x_values=x_values,
        ),
        FigureSeries(
            title="Scaleout: simulator event rate vs machine size "
            "(wall clock, non-deterministic)",
            x_label="nodes",
            y_label="events/s",
            x_values=x_values,
        ),
    ]
    for figure, values in zip(
        figures, (throughput, p99, events_per_sec)
    ):
        figure.add_curve("2pl", values)
    return figures
