"""Parallel execution of independent simulation configurations.

Every point in a figure sweep is an independent simulation of one
frozen :class:`~repro.core.config.SimulationConfig`, which makes sweeps
embarrassingly parallel.  The executor partitions missing points into
contention-free chunks up front (the same move DGCC makes on
transaction batches), fans them out over the session-persistent worker
pool (:mod:`~repro.experiments.worker_pool` — spawned once, reused by
every batch, torn down atexit), and assembles results in input order,
so a parallel sweep is bit-identical to a serial one (each simulation
is a pure function of its config, seed included).

Scheduling is work-stealing in completion order: at most ``jobs``
chunks are in flight at once, and a worker that finishes its chunk is
immediately handed the next one, so a slow grid point never idles the
rest of the pool behind an in-order collection barrier.  Chunk size
defaults to ``ceil(missing / (jobs * 4))`` — small enough to balance,
large enough to amortize per-task dispatch — and can be pinned with
``$REPRO_CHUNK`` / the executor's ``chunk`` knob.

Results travel back as **compressed cache-codec payloads**, not
pickled ``SimulationResult`` graphs: workers serialize each result
through :func:`~repro.experiments.result_cache.encode_result`,
zlib-compress the chunk's payloads into one blob (and, when a disk
cache is attached, write the entries into the shared cache directory
themselves), so the parent unpickles nothing deeper than ``bytes``
and the measured bytes-over-IPC shrink accordingly
(``ExecutorStats.ipc_bytes``; the parallel benchmark records them
next to what the pickled transport would have sent).

Result reuse is layered:

1. an in-memory memo (one entry per distinct config, per process) —
   the figures that share a sweep pay for it once;
2. an optional persistent :class:`~repro.experiments.result_cache.
   ResultCache` whose keys compose the schema version with a content
   hash of the sim-relevant sources, so only code changes that can
   affect results dirty entries.

``jobs=1`` preserves the fully serial in-process path (no pool, no
serialization); ``jobs=None`` resolves ``$REPRO_JOBS`` and falls back
to ``os.cpu_count()``.

Sanitized runs (``repro.sanitizer``) bypass every reuse layer in both
directions: a sanitized sweep neither reads results cached by clean
runs (the instrumented execution must actually execute) nor writes
entries a later clean run could pick up (cache keys hash the sources,
not the execution mode, so a poisoned entry would be indistinguishable
from a clean one).  They also stay serial and in-process so findings
accumulate in this process's sanitizer session instead of dying with
pool workers.
"""

from __future__ import annotations

import concurrent.futures
import json
import math
import os
import time
import zlib
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult
from repro.core.simulation import Simulation
import repro.experiments.worker_pool as worker_pool
from repro.experiments.result_cache import (
    ResultCache,
    decode_result,
    encode_result,
)
from repro.sanitizer.session import sanitizing_active

__all__ = [
    "ExecutorStats",
    "SweepExecutionError",
    "SweepExecutor",
    "resolve_chunk_size",
    "resolve_jobs",
]

#: Chunks per worker when no explicit chunk size is given: enough
#: slack for work-stealing to even out unequal point costs without
#: paying per-point dispatch.
OVERSUBSCRIBE = 4


class SweepExecutionError(RuntimeError):
    """A grid point failed; carries the failing config for diagnosis.

    Worker failures must surface loudly — a sweep that silently drops
    grid points would produce figures with holes that look like data.
    """

    def __init__(self, config: SimulationConfig, cause: BaseException):
        super().__init__(
            f"simulation failed for {config.label()}: {cause!r}"
        )
        self.config = config
        self.cause = cause


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit > ``$REPRO_JOBS`` > cpu_count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be a positive integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_chunk_size(
    missing: int, jobs: int, chunk: Optional[int] = None
) -> int:
    """Points per chunk: explicit > ``$REPRO_CHUNK`` > computed.

    The computed default splits the batch into ``jobs *``
    :data:`OVERSUBSCRIBE` chunks (rounded up), clamped to at least one
    point per chunk.
    """
    if chunk is None:
        env = os.environ.get("REPRO_CHUNK", "").strip()
        if env:
            try:
                chunk = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_CHUNK must be a positive integer, got {env!r}"
                ) from None
    if chunk is not None:
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        return chunk
    return max(1, math.ceil(missing / (jobs * OVERSUBSCRIBE)))


def _simulate(config: SimulationConfig) -> SimulationResult:
    """Run one simulation; module-level so pool workers can pickle it."""
    return Simulation(config).run()


class _ChunkPointError(Exception):
    """A worker-side failure, tagged with its offset inside the chunk.

    Pickles across the pool boundary so the parent can recover which
    config failed and re-raise a :class:`SweepExecutionError`.
    """

    def __init__(self, offset: int, cause: BaseException):
        super().__init__(offset, cause)
        self.offset = offset
        self.cause = cause

    def __reduce__(self):
        return (type(self), (self.offset, self.cause))


def _pack_payloads(payloads: List[str]) -> bytes:
    """Chunk transport format: zlib over the JSON list of payloads."""
    return zlib.compress(json.dumps(payloads).encode("utf-8"))


def _unpack_payloads(blob: bytes) -> List[str]:
    """Inverse of :func:`_pack_payloads`."""
    return json.loads(zlib.decompress(blob).decode("utf-8"))


def _run_chunk(
    index: int,
    configs: Sequence[SimulationConfig],
    cache_dir: Optional[str],
) -> Tuple[int, bytes, Dict[str, float]]:
    """Worker side: simulate one chunk, return packed payloads + stats.

    When the parent has a disk cache attached the worker writes each
    finished entry directly into the shared cache directory (atomic
    ``os.replace`` writes make concurrent writers safe), so progress
    persists even if the sweep is interrupted before assembly.
    """
    cache = ResultCache(Path(cache_dir)) if cache_dir else None
    if sanitizing_active():
        # Defense in depth: the parent already routes sanitized sweeps
        # away from the pool, but $REPRO_SIMSAN is inherited by
        # workers, and a sanitized result must never be written where
        # a clean run would read it.
        cache = None
    payloads: List[str] = []
    started = time.perf_counter()
    for offset, config in enumerate(configs):
        try:
            result = _simulate(config)
        except Exception as cause:
            raise _ChunkPointError(offset, cause) from cause
        payloads.append(encode_result(result))
        if cache is not None:
            cache.put(config, result)
    stats = {
        "pid": float(os.getpid()),
        "compute_seconds": time.perf_counter() - started,
    }
    return index, _pack_payloads(payloads), stats


@dataclass
class ExecutorStats:
    """Where each requested grid point came from, over one lifetime."""

    simulated: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    #: Pool accounting (zero on the serial path).
    pool_batches: int = 0
    chunks_dispatched: int = 0
    chunks_cancelled: int = 0
    #: Result-transport bytes received from workers (codec strings).
    ipc_bytes: int = 0
    #: Wall time spent inside pool dispatch, and the portion of it the
    #: workers report as pure simulation; their difference bounds the
    #: coordination overhead on a single-CPU host.
    pool_wall_seconds: float = 0.0
    worker_compute_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "simulated": self.simulated,
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "pool_batches": self.pool_batches,
            "chunks_dispatched": self.chunks_dispatched,
            "chunks_cancelled": self.chunks_cancelled,
            "ipc_bytes": self.ipc_bytes,
            "pool_wall_seconds": self.pool_wall_seconds,
            "worker_compute_seconds": self.worker_compute_seconds,
        }

    def reset(self) -> None:
        self.simulated = 0
        self.memo_hits = 0
        self.disk_hits = 0
        self.pool_batches = 0
        self.chunks_dispatched = 0
        self.chunks_cancelled = 0
        self.ipc_bytes = 0
        self.pool_wall_seconds = 0.0
        self.worker_compute_seconds = 0.0


class SweepExecutor:
    """Runs batches of configs with memoization and optional parallelism."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        chunk: Optional[int] = None,
    ):
        #: ``None`` defers to :func:`resolve_jobs` at each batch.
        self.jobs = jobs
        self.cache = cache
        #: ``None`` defers to :func:`resolve_chunk_size` at each batch.
        self.chunk = chunk
        self.stats = ExecutorStats()
        #: PIDs observed serving this executor's chunks; together with
        #: :func:`worker_pool.pool_generation` this proves pool reuse.
        self.worker_pids: Set[int] = set()
        self._memo: Dict[SimulationConfig, SimulationResult] = {}

    # ------------------------------------------------------------------
    # Lookup layers
    # ------------------------------------------------------------------

    def _lookup(
        self, config: SimulationConfig
    ) -> Optional[SimulationResult]:
        result = self._memo.get(config)
        if result is not None:
            self.stats.memo_hits += 1
            return result
        if self.cache is not None:
            result = self.cache.get(config)
            if result is not None:
                self.stats.disk_hits += 1
                self._memo[config] = result
                return result
        return None

    def _store(
        self, config: SimulationConfig, result: SimulationResult
    ) -> None:
        self._memo[config] = result
        self.stats.simulated += 1
        if self.cache is not None:
            self.cache.put(config, result)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_one(self, config: SimulationConfig) -> SimulationResult:
        """Run (or fetch the cached result of) one configuration.

        Always in-process: a single point gains nothing from a pool.
        """
        if sanitizing_active():
            result = _simulate(config)
            self.stats.simulated += 1
            return result
        result = self._lookup(config)
        if result is None:
            result = _simulate(config)
            self._store(config, result)
        return result

    def run_many(
        self,
        configs: Sequence[SimulationConfig],
        jobs: Optional[int] = None,
    ) -> List[SimulationResult]:
        """Run a batch of configs; results are in input order.

        Cached points are served from the memo/disk layers; the missing
        remainder is deduplicated and fanned out in chunks over the
        persistent worker pool when more than one distinct point is
        missing and ``jobs > 1``.  The first worker failure cancels
        every chunk not yet running and raises
        :class:`SweepExecutionError` rather than yielding a partial
        grid.
        """
        if sanitizing_active():
            return self._run_sanitized_batch(configs)
        jobs = resolve_jobs(self.jobs if jobs is None else jobs)
        missing: List[SimulationConfig] = []
        missing_set: Set[SimulationConfig] = set()
        for config in configs:
            if (
                self._lookup(config) is None
                and config not in missing_set
            ):
                # Validate up front so bad configs fail in the caller,
                # with a normal traceback, not inside a worker.
                config.validate()
                missing_set.add(config)
                missing.append(config)
        if missing:
            if jobs > 1 and len(missing) > 1:
                self._run_pool(missing, jobs)
            else:
                for config in missing:
                    try:
                        result = _simulate(config)
                    except Exception as cause:
                        raise SweepExecutionError(
                            config, cause
                        ) from cause
                    self._store(config, result)
        # Every config is now memoized; assemble in input order.  The
        # memo lookups below are repeats of _lookup hits already counted
        # above, so read the memo directly to keep stats meaningful.
        return [self._memo[config] for config in configs]

    def _run_sanitized_batch(
        self, configs: Sequence[SimulationConfig]
    ) -> List[SimulationResult]:
        """Serial, cache-blind execution for a sanitized sweep.

        The memo here is local to one batch: it only collapses exact
        duplicates *within* the request (re-sanitizing the same config
        twice would double-count findings) and is dropped on return,
        so no sanitized result outlives the sweep that produced it.
        """
        local: Dict[SimulationConfig, SimulationResult] = {}
        results: List[SimulationResult] = []
        for config in configs:
            result = local.get(config)
            if result is None:
                config.validate()
                try:
                    result = _simulate(config)
                except Exception as cause:
                    raise SweepExecutionError(config, cause) from cause
                self.stats.simulated += 1
                local[config] = result
            results.append(result)
        return results

    def _run_pool(
        self, missing: List[SimulationConfig], jobs: int
    ) -> None:
        chunk_size = resolve_chunk_size(
            len(missing), jobs, self.chunk
        )
        chunks = [
            missing[start:start + chunk_size]
            for start in range(0, len(missing), chunk_size)
        ]
        cache_dir = (
            str(self.cache.directory) if self.cache is not None else None
        )
        pool = worker_pool.get_pool(jobs)
        self.stats.pool_batches += 1
        started = time.perf_counter()
        pending: Dict[concurrent.futures.Future, int] = {}
        next_chunk = 0
        failure: Optional[
            Tuple[SimulationConfig, BaseException]
        ] = None
        broken_pool = False
        while failure is None and (
            next_chunk < len(chunks) or pending
        ):
            # Keep exactly ``jobs`` chunks in flight: a finishing
            # worker steals the next chunk, and a pool larger than
            # ``jobs`` (grown by an earlier batch) is not over-driven.
            while next_chunk < len(chunks) and len(pending) < jobs:
                future = pool.submit(
                    _run_chunk,
                    next_chunk,
                    chunks[next_chunk],
                    cache_dir,
                )
                pending[future] = next_chunk
                next_chunk += 1
                self.stats.chunks_dispatched += 1
            done, _ = concurrent.futures.wait(
                pending,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            for future in sorted(done, key=pending.__getitem__):
                index = pending.pop(future)
                try:
                    _, blob, chunk_stats = future.result()
                except _ChunkPointError as error:
                    failure = (
                        chunks[index][error.offset], error.cause
                    )
                    break
                except BrokenProcessPool as cause:
                    failure = (chunks[index][0], cause)
                    broken_pool = True
                    break
                except Exception as cause:
                    failure = (chunks[index][0], cause)
                    break
                self._absorb_chunk(chunks[index], blob, chunk_stats)
        if failure is not None:
            # Cancel what never started; running chunks are left to
            # finish (their results are simply discarded) because a
            # ProcessPoolExecutor cannot interrupt a live worker.
            for future in pending:
                if future.cancel():
                    self.stats.chunks_cancelled += 1
            self.stats.chunks_cancelled += len(chunks) - next_chunk
            self.stats.pool_wall_seconds += (
                time.perf_counter() - started
            )
            if broken_pool:
                worker_pool.discard_pool()
            config, cause = failure
            raise SweepExecutionError(config, cause) from cause
        self.stats.pool_wall_seconds += time.perf_counter() - started

    def _absorb_chunk(
        self,
        chunk: List[SimulationConfig],
        blob: bytes,
        chunk_stats: Dict[str, float],
    ) -> None:
        """Decode one finished chunk into the memo (and counters)."""
        self.stats.ipc_bytes += len(blob)
        for config, payload in zip(chunk, _unpack_payloads(blob)):
            result = decode_result(payload)
            self._memo[config] = result
            self.stats.simulated += 1
            # The worker already wrote the disk entry; storing again
            # from the parent would double the write traffic.
        self.worker_pids.add(int(chunk_stats["pid"]))
        self.stats.worker_compute_seconds += chunk_stats[
            "compute_seconds"
        ]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def clear_memo(self) -> None:
        """Drop in-memory results (tests use this for isolation)."""
        self._memo.clear()

    def cache_stats(self) -> Dict[str, object]:
        """Combined executor + disk-cache counters for reporting."""
        combined: Dict[str, object] = dict(self.stats.as_dict())
        if self.cache is not None:
            combined["disk"] = self.cache.stats.as_dict()
            combined["disk_dir"] = str(self.cache.directory)
            combined["disk_entries"] = self.cache.entry_count()
        return combined
