"""Parallel execution of independent simulation configurations.

Every point in a figure sweep is an independent simulation of one
frozen :class:`~repro.core.config.SimulationConfig`, which makes sweeps
embarrassingly parallel: the executor fans missing points out over a
``concurrent.futures`` process pool and assembles results in input
order, so a parallel sweep is bit-identical to a serial one (each
simulation is a pure function of its config, seed included).

Result reuse is layered:

1. an in-memory memo (one entry per distinct config, per process) —
   the figures that share a sweep pay for it once;
2. an optional persistent :class:`~repro.experiments.result_cache.
   ResultCache` so interrupted or repeated sessions only simulate
   missing points.

``jobs=1`` preserves the fully serial in-process path (no pool, no
pickling); ``jobs=None`` resolves ``$REPRO_JOBS`` and falls back to
``os.cpu_count()``.
"""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.metrics import SimulationResult
from repro.core.simulation import Simulation
from repro.experiments.result_cache import ResultCache

__all__ = [
    "ExecutorStats",
    "SweepExecutionError",
    "SweepExecutor",
    "resolve_jobs",
]


class SweepExecutionError(RuntimeError):
    """A grid point failed; carries the failing config for diagnosis.

    Worker failures must surface loudly — a sweep that silently drops
    grid points would produce figures with holes that look like data.
    """

    def __init__(self, config: SimulationConfig, cause: BaseException):
        super().__init__(
            f"simulation failed for {config.label()}: {cause!r}"
        )
        self.config = config
        self.cause = cause


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit > ``$REPRO_JOBS`` > cpu_count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be a positive integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _simulate(config: SimulationConfig) -> SimulationResult:
    """Run one simulation; module-level so pool workers can pickle it."""
    return Simulation(config).run()


@dataclass
class ExecutorStats:
    """Where each requested grid point came from, over one lifetime."""

    simulated: int = 0
    memo_hits: int = 0
    disk_hits: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "simulated": self.simulated,
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
        }

    def reset(self) -> None:
        self.simulated = 0
        self.memo_hits = 0
        self.disk_hits = 0


class SweepExecutor:
    """Runs batches of configs with memoization and optional parallelism."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
    ):
        #: ``None`` defers to :func:`resolve_jobs` at each batch.
        self.jobs = jobs
        self.cache = cache
        self.stats = ExecutorStats()
        self._memo: Dict[SimulationConfig, SimulationResult] = {}

    # ------------------------------------------------------------------
    # Lookup layers
    # ------------------------------------------------------------------

    def _lookup(
        self, config: SimulationConfig
    ) -> Optional[SimulationResult]:
        result = self._memo.get(config)
        if result is not None:
            self.stats.memo_hits += 1
            return result
        if self.cache is not None:
            result = self.cache.get(config)
            if result is not None:
                self.stats.disk_hits += 1
                self._memo[config] = result
                return result
        return None

    def _store(
        self, config: SimulationConfig, result: SimulationResult
    ) -> None:
        self._memo[config] = result
        self.stats.simulated += 1
        if self.cache is not None:
            self.cache.put(config, result)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_one(self, config: SimulationConfig) -> SimulationResult:
        """Run (or fetch the cached result of) one configuration.

        Always in-process: a single point gains nothing from a pool.
        """
        result = self._lookup(config)
        if result is None:
            result = _simulate(config)
            self._store(config, result)
        return result

    def run_many(
        self,
        configs: Sequence[SimulationConfig],
        jobs: Optional[int] = None,
    ) -> List[SimulationResult]:
        """Run a batch of configs; results are in input order.

        Cached points are served from the memo/disk layers; the missing
        remainder is deduplicated and fanned out over a process pool
        when more than one distinct point is missing and ``jobs > 1``.
        Worker failures raise :class:`SweepExecutionError` immediately
        rather than yielding a partial grid.
        """
        jobs = resolve_jobs(self.jobs if jobs is None else jobs)
        missing: List[SimulationConfig] = []
        for config in configs:
            if self._lookup(config) is None and config not in missing:
                # Validate up front so bad configs fail in the caller,
                # with a normal traceback, not inside a worker.
                config.validate()
                missing.append(config)
        if missing:
            if jobs > 1 and len(missing) > 1:
                self._run_pool(missing, jobs)
            else:
                for config in missing:
                    try:
                        result = _simulate(config)
                    except Exception as cause:
                        raise SweepExecutionError(
                            config, cause
                        ) from cause
                    self._store(config, result)
        # Every config is now memoized; assemble in input order.  The
        # memo lookups below are repeats of _lookup hits already counted
        # above, so read the memo directly to keep stats meaningful.
        return [self._memo[config] for config in configs]

    def _run_pool(
        self, missing: List[SimulationConfig], jobs: int
    ) -> None:
        workers = min(jobs, len(missing))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers
        ) as pool:
            futures = [
                pool.submit(_simulate, config) for config in missing
            ]
            for config, future in zip(missing, futures):
                try:
                    result = future.result()
                except Exception as cause:
                    raise SweepExecutionError(config, cause) from cause
                self._store(config, result)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def clear_memo(self) -> None:
        """Drop in-memory results (tests use this for isolation)."""
        self._memo.clear()

    def cache_stats(self) -> Dict[str, object]:
        """Combined executor + disk-cache counters for reporting."""
        combined: Dict[str, object] = dict(self.stats.as_dict())
        if self.cache is not None:
            combined["disk"] = self.cache.stats.as_dict()
            combined["disk_dir"] = str(self.cache.directory)
            combined["disk_entries"] = self.cache.entry_count()
        return combined
