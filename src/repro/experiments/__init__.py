"""Experiment harness regenerating every table and figure (paper §4).

Each experiment module exposes functions named after the paper's
figures (``figure2`` ... ``figure17``) plus the textual ablations; all
of them take a :class:`~repro.experiments.fidelity.Fidelity` and return
:class:`~repro.analysis.series.FigureSeries` ready for printing.

The :mod:`~repro.experiments.runner` memoizes simulation runs within the
process, so the figures that share a sweep (2-7 share one, 8-13 share
another) pay for it once.

Command line::

    python -m repro.experiments list
    python -m repro.experiments run fig2 fig4 --fidelity quick
    python -m repro.experiments run all --fidelity full
"""

from repro.experiments.fidelity import Fidelity
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.runner import clear_cache, run_config, sweep

__all__ = [
    "EXPERIMENTS",
    "Fidelity",
    "clear_cache",
    "get_experiment",
    "run_config",
    "sweep",
]
