"""Experiment harness regenerating every table and figure (paper §4).

Each experiment module exposes functions named after the paper's
figures (``figure2`` ... ``figure17``) plus the textual ablations; all
of them take a :class:`~repro.experiments.fidelity.Fidelity` and return
:class:`~repro.analysis.series.FigureSeries` ready for printing.

The :mod:`~repro.experiments.runner` memoizes simulation runs within the
process, so the figures that share a sweep (2-7 share one, 8-13 share
another) pay for it once.  Independent grid points additionally fan out
in chunks over a session-persistent worker pool (``--jobs N`` /
``$REPRO_JOBS``, default ``os.cpu_count()``; chunk size ``--chunk`` /
``$REPRO_CHUNK``), and an optional on-disk result cache
(:mod:`~repro.experiments.result_cache`) persists finished points
across sessions, keyed so only sim-relevant source changes invalidate
them.

Command line::

    python -m repro.experiments list
    python -m repro.experiments run fig2 fig4 --fidelity quick --jobs 4
    python -m repro.experiments run all --fidelity full
    python -m repro.experiments cache stats
    python -m repro.experiments cache clear
"""

from repro.experiments.fidelity import Fidelity
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.runner import (
    SweepExecutionError,
    cache_stats,
    clear_cache,
    configure,
    resolve_chunk_size,
    resolve_jobs,
    run_config,
    run_many,
    sweep,
)

__all__ = [
    "EXPERIMENTS",
    "Fidelity",
    "SweepExecutionError",
    "cache_stats",
    "clear_cache",
    "configure",
    "get_experiment",
    "resolve_chunk_size",
    "resolve_jobs",
    "run_config",
    "run_many",
    "sweep",
]
