"""Sensitivity studies for modeling choices the paper pins by fiat.

Three knobs the paper fixes with one-line justifications, each swept
here so the justification can be checked:

* **Host CPU speed** (§4.1: the host is 10 MIPS "so that the host won't
  limit system performance").  Sweeping the host's MIPS shows where
  coordinator processing and message handling would start to throttle
  an 8-node machine.
* **Snoop detection interval** (Table 4 fixes DetectionInterval at 1 s;
  footnote 2 notes that [Jenq89] found their analogous timeout "a
  critical and sensitive performance factor").  Swept over two orders
  of magnitude for 2PL under heavy load.
* **Number of terminals** (fixed at 128).  Sweeping multiprogramming
  level at zero think time traces the classic throughput hill: rising
  with load, peaking, then falling as data contention thrashes the
  algorithms — NO_DC instead saturates flat.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.analysis.series import FigureSeries
from repro.core.config import (
    WorkloadConfig,
    paper_default_config,
)
from repro.experiments.fidelity import Fidelity
from repro.experiments.runner import run_many
from repro.experiments.scaling import ALGORITHMS

__all__ = [
    "detection_interval_sensitivity",
    "host_speed_sensitivity",
    "terminal_sweep",
]

HOST_MIPS = (1.0, 2.0, 5.0, 10.0, 20.0)
DETECTION_INTERVALS = (0.1, 0.3, 1.0, 3.0, 10.0)
TERMINAL_COUNTS = (16, 32, 64, 96, 128, 192, 256)


def host_speed_sensitivity(fidelity: Fidelity) -> List[FigureSeries]:
    """Throughput vs host CPU speed at heavy load (8 nodes, 8-way)."""
    throughput = FigureSeries(
        title="Sensitivity: host CPU speed (8 nodes, 8-way, think 0)",
        x_label="host MIPS",
        y_label="transactions/second",
        x_values=[float(mips) for mips in HOST_MIPS],
    )
    host_util = FigureSeries(
        title="Sensitivity: host CPU utilization vs host speed",
        x_label="host MIPS",
        y_label="host CPU utilization",
        x_values=[float(mips) for mips in HOST_MIPS],
    )
    algorithms = ("2pl", "no_dc")
    configs = [
        fidelity.apply(
            paper_default_config(
                algorithm, think_time=0.0, seed=fidelity.seed
            ).with_resources(host_cpu_mips=mips)
        )
        for algorithm in algorithms
        for mips in HOST_MIPS
    ]
    results = iter(run_many(configs))
    for algorithm in algorithms:
        tput_curve = []
        util_curve = []
        for _mips in HOST_MIPS:
            result = next(results)
            tput_curve.append(result.throughput)
            util_curve.append(result.host_cpu_utilization)
        throughput.add_curve(algorithm, tput_curve)
        host_util.add_curve(algorithm, util_curve)
    return [throughput, host_util]


def detection_interval_sensitivity(
    fidelity: Fidelity,
) -> List[FigureSeries]:
    """2PL metrics vs Snoop interval under heavy load (think 0)."""
    response = FigureSeries(
        title="Sensitivity: Snoop DetectionInterval, 2PL "
        "(8 nodes, 8-way, think 0)",
        x_label="interval(s)",
        y_label="mean response time (s)",
        x_values=list(DETECTION_INTERVALS),
    )
    aborts = FigureSeries(
        title="Sensitivity: abort ratio vs DetectionInterval, 2PL",
        x_label="interval(s)",
        y_label="aborts per commit",
        x_values=list(DETECTION_INTERVALS),
    )
    configs = [
        fidelity.apply(
            paper_default_config(
                "2pl", think_time=0.0, seed=fidelity.seed
            ).with_(detection_interval=interval)
        )
        for interval in DETECTION_INTERVALS
    ]
    rt_curve = []
    ar_curve = []
    for result in run_many(configs):
        rt_curve.append(result.mean_response_time)
        ar_curve.append(result.abort_ratio)
    response.add_curve("2pl", rt_curve)
    aborts.add_curve("2pl", ar_curve)
    return [response, aborts]


def terminal_sweep(fidelity: Fidelity) -> List[FigureSeries]:
    """Throughput vs multiprogramming level at zero think time.

    The classic data-contention thrashing curve: the CC algorithms
    peak and then decline as the MPL grows, while NO_DC saturates and
    stays flat — the same phenomenon the paper's think-time sweep shows
    from the other direction.
    """
    series = FigureSeries(
        title="Sensitivity: terminals (MPL) at think 0 "
        "(8 nodes, 8-way, smaller DB)",
        x_label="terminals",
        y_label="transactions/second",
        x_values=[float(count) for count in TERMINAL_COUNTS],
    )
    configs = [
        fidelity.apply(
            replace(
                paper_default_config(
                    algorithm, think_time=0.0, seed=fidelity.seed
                ),
                workload=WorkloadConfig(
                    num_terminals=count, think_time=0.0
                ),
            )
        )
        for algorithm in ALGORITHMS
        for count in TERMINAL_COUNTS
    ]
    results = iter(run_many(configs))
    for algorithm in ALGORITHMS:
        series.add_curve(
            algorithm,
            [next(results).throughput for _count in TERMINAL_COUNTS],
        )
    return [series]
