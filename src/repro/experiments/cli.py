"""Command-line front end for the experiment harness.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run fig2 --fidelity smoke
    python -m repro.experiments run all --fidelity full --out results/
    python -m repro.experiments run fig9 --jobs 4 --chunk 2
    python -m repro.experiments cache stats
    python -m repro.experiments cache prune
    python -m repro.experiments cache clear

``run`` fans independent sweep points out in chunks over ``--jobs``
persistent worker processes (default ``$REPRO_JOBS``, else all cores;
chunk size ``--chunk`` / ``$REPRO_CHUNK``, default computed) and
persists finished simulations under ``results/.cache/``
(``$REPRO_CACHE_DIR`` overrides the location; ``--no-cache`` or
``REPRO_CACHE=off`` disables persistence), so a re-run only simulates
missing points.  Cache keys track the sim-relevant source content, so
only code changes that can affect results invalidate entries;
``cache prune`` reclaims the invalidated ones.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.analysis.ascii_chart import render_chart
from repro.analysis.series import format_table
from repro.experiments import runner
from repro.experiments.export import write_figures
from repro.experiments.fidelity import Fidelity
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.result_cache import (
    ResultCache,
    default_cache_dir,
    source_fingerprint,
)

__all__ = ["main"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of Carey & Livny "
            "(SIGMOD 1989)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list experiment ids")
    run_parser = subparsers.add_parser(
        "run", help="run one or more experiments"
    )
    run_parser.add_argument(
        "ids",
        nargs="+",
        help="experiment ids (e.g. fig2 fig9), or 'all'",
    )
    run_parser.add_argument(
        "--fidelity",
        choices=("smoke", "quick", "full"),
        default=None,
        help="run length preset (default: $REPRO_FIDELITY or quick)",
    )
    run_parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also write each experiment's tables to this directory",
    )
    run_parser.add_argument(
        "--chart",
        action="store_true",
        help="render ASCII charts after each table",
    )
    run_parser.add_argument(
        "--csv",
        action="store_true",
        help="with --out: also write per-figure CSV files",
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="with --out: also write a JSON file per experiment",
    )
    run_parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help=(
            "worker processes for sweep points "
            "(default: $REPRO_JOBS or all cores; 1 = serial)"
        ),
    )
    run_parser.add_argument(
        "--chunk",
        type=_positive_int,
        default=None,
        help=(
            "grid points per worker chunk "
            "(default: $REPRO_CHUNK or ceil(missing / (jobs * 4)))"
        ),
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the persistent result cache",
    )
    run_parser.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "run under the determinism sanitizer (repro.sanitizer): "
            "serial, cache-blind, ~2-5x slower; prints a findings "
            "report after the tables and fails on unwaived findings"
        ),
    )
    cache_parser = subparsers.add_parser(
        "cache", help="inspect or maintain the persistent result cache"
    )
    cache_parser.add_argument(
        "verb",
        choices=("stats", "prune", "clear"),
        help=(
            "'stats' reports entries/bytes/freshness; 'prune' deletes "
            "entries invalidated by code changes; 'clear' deletes all"
        ),
    )
    simulate_parser = subparsers.add_parser(
        "simulate",
        help="run a single ad-hoc configuration and print the result",
    )
    simulate_parser.add_argument(
        "--algorithm", default="2pl",
        help="cc algorithm (2pl, ww, bto, opt, no_dc, wd, ir)",
    )
    simulate_parser.add_argument(
        "--think", type=float, default=8.0,
        help="mean terminal think time in seconds",
    )
    simulate_parser.add_argument(
        "--nodes", type=int, default=8,
        help="number of processing nodes",
    )
    simulate_parser.add_argument(
        "--degree", type=int, default=None,
        help="degree of partitioning (default: all nodes)",
    )
    simulate_parser.add_argument(
        "--file-size", type=int, default=300,
        help="pages per partition (Table 4 uses 300 or 1200)",
    )
    simulate_parser.add_argument(
        "--copies", type=int, default=1,
        help="replication factor (extension; read-one/write-all)",
    )
    simulate_parser.add_argument(
        "--terminals", type=int, default=128,
        help="number of terminals",
    )
    simulate_parser.add_argument(
        "--duration", type=float, default=60.0,
        help="measurement window in simulated seconds",
    )
    simulate_parser.add_argument(
        "--warmup", type=float, default=20.0,
        help="warmup in simulated seconds",
    )
    simulate_parser.add_argument(
        "--seed", type=int, default=42, help="random seed"
    )
    return parser


def _resolve_fidelity(name: Optional[str]) -> Fidelity:
    if name is None:
        return Fidelity.from_env()
    return {
        "smoke": Fidelity.smoke,
        "quick": Fidelity.quick,
        "full": Fidelity.full,
    }[name]()


def _run_single(arguments) -> int:
    """The ``simulate`` subcommand: one ad-hoc configuration."""
    from repro.core.config import (
        PlacementKind,
        paper_default_config,
    )
    from repro.core.simulation import run_simulation

    degree = (
        arguments.degree
        if arguments.degree is not None
        else arguments.nodes
    )
    placement = (
        PlacementKind.COLOCATED
        if degree == 1
        else PlacementKind.DECLUSTERED
    )
    config = paper_default_config(
        arguments.algorithm,
        think_time=arguments.think,
        num_proc_nodes=arguments.nodes,
        pages_per_partition=arguments.file_size,
        placement=placement,
        placement_degree=degree,
        seed=arguments.seed,
    ).with_database(copies=arguments.copies).with_workload(
        num_terminals=arguments.terminals,
        think_time=arguments.think,
    ).with_(duration=arguments.duration, warmup=arguments.warmup)
    started = time.time()
    result = run_simulation(config)
    elapsed = time.time() - started
    print(f"# {result.label}  ({elapsed:.1f}s wall)")
    for key, value in result.as_dict().items():
        if isinstance(value, float):
            print(f"{key:16s} {value:.4f}")
        else:
            print(f"{key:16s} {value}")
    if result.abort_reasons:
        reasons = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(
                result.abort_reasons.items()
            )
        )
        print(f"{'abort_reasons':16s} {reasons}")
    return 0


def _cache_enabled(arguments) -> bool:
    if getattr(arguments, "no_cache", False):
        return False
    return os.environ.get("REPRO_CACHE", "on").lower() not in (
        "off", "0", "no", "false",
    )


def _run_cache_command(verb: str) -> int:
    """The ``cache`` subcommand: inspect or maintain the disk cache."""
    cache = ResultCache(default_cache_dir())
    if verb == "clear":
        removed = cache.clear()
        print(f"cache clear: removed {removed} entries "
              f"from {cache.directory}")
        return 0
    if verb == "prune":
        removed = cache.prune()
        print(f"cache prune: removed {removed} stale entries "
              f"from {cache.directory}")
        return 0
    census = cache.source_census()
    print(f"cache dir      {cache.directory}")
    print(f"entries        {cache.entry_count()}")
    print(f"size           {cache.size_bytes()} bytes")
    print(f"source         {source_fingerprint()}")
    print(f"fresh          {census['fresh']}")
    print(f"stale          {census['stale']}  (reclaim: cache prune)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    arguments = _build_parser().parse_args(argv)
    if arguments.command == "list":
        for experiment in EXPERIMENTS.values():
            print(f"{experiment.id:20s} {experiment.description}")
        return 0
    if arguments.command == "cache":
        return _run_cache_command(arguments.verb)
    if arguments.command == "simulate":
        return _run_single(arguments)
    try:
        runner.configure(
            jobs=arguments.jobs,
            cache_dir=(
                default_cache_dir() if _cache_enabled(arguments)
                else None
            ),
            chunk=arguments.chunk,
        )
    except ValueError as error:
        print(f"repro-experiments run: error: {error}", file=sys.stderr)
        return 2
    fidelity = _resolve_fidelity(arguments.fidelity)
    ids = list(arguments.ids)
    if ids == ["all"]:
        ids = list(EXPERIMENTS)
    exit_code = 0
    sanitize = getattr(arguments, "sanitize", False)
    if sanitize:
        from repro.sanitizer import session as sanitizer_session

        sanitizer_session.reset_findings()
        sanitizer_session.activate()
    try:
        for experiment_id in ids:
            try:
                experiment = get_experiment(experiment_id)
            except KeyError as error:
                print(error, file=sys.stderr)
                exit_code = 2
                continue
            started = time.time()
            figures = experiment.run(fidelity)
            elapsed = time.time() - started
            chunks = [format_table(figure) for figure in figures]
            if arguments.chart:
                chunks.extend(
                    render_chart(figure) for figure in figures
                )
            body = "\n\n".join(chunks)
            print(f"=== {experiment.id} ({elapsed:.1f}s wall, "
                  f"fidelity={fidelity.name}) ===")
            print(body)
            print()
            if arguments.out is not None:
                arguments.out.mkdir(parents=True, exist_ok=True)
                path = arguments.out / f"{experiment.id}.txt"
                path.write_text(body + "\n", encoding="utf-8")
                write_figures(
                    figures,
                    arguments.out,
                    experiment.id,
                    csv_output=arguments.csv,
                    json_output=arguments.json,
                )
    finally:
        if sanitize:
            sanitizer_session.deactivate()
    if sanitize:
        from repro.sanitizer.report import build_report, render

        report = build_report(
            sanitizer_session.session_findings(),
            runs=sanitizer_session.session_runs(),
        )
        print(render(report, "text", show_suppressed=False))
        if not report.ok:
            exit_code = exit_code or 1
    stats = runner.cache_stats()
    summary = (
        f"cache: {stats['simulated']} simulated, "
        f"{stats['disk_hits']} disk hits, "
        f"{stats['memo_hits']} memo hits"
    )
    if "disk_entries" in stats:
        summary += f" ({stats['disk_entries']} entries on disk)"
    print(summary)
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
