"""Ablations the paper mentions in footnotes, plus model extensions.

* **32-read transactions** (§4.2 footnote 9): the partitioning speedup
  experiment rerun with half-size transactions (4 pages per partition
  on average); the paper reports the same basic trends.
* **Sequential vs parallel cohorts** (§3.3): the model's ExecPattern
  lever — the same 8-cohort workload run Non-Stop-SQL style (cohorts as
  a chain of remote procedure calls) against Gamma-style parallel
  cohorts.  The paper describes both execution models but plots only
  the parallel one; this ablation quantifies the gap.
* **Write probability 1/8 vs 1/4**: the paper's internal contradiction
  (Table 4 says WriteProb=1/4, §4.1 says "an average of 8 writes" which
  is 1/8).  This ablation shows why the repo defaults to 1/8: with 1/4
  the abort-ratio ordering inverts (WW above OPT) and 2PL's parallel
  configurations lose their advantage to cross-node deadlock restarts.
* **Blocking/restart spectrum**: the paper's four algorithms plus the
  library's two extensions — wait-die (the wound-wait sibling) and
  immediate-restart (the pure-abort locking of ACL87) — swept together,
  ordering the whole family from "block everything" to "abort
  everything".
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.analysis.series import FigureSeries
from repro.analysis.speedup import ratio_series
from repro.core.config import (
    ExecutionPattern,
    PlacementKind,
    SimulationConfig,
    TransactionClassConfig,
    WorkloadConfig,
    paper_default_config,
)
from repro.experiments.fidelity import Fidelity
from repro.experiments.runner import run_many, sweep
from repro.experiments.scaling import ALGORITHMS

__all__ = [
    "algorithm_spectrum",
    "sequential_vs_parallel",
    "small_transactions",
    "small_transaction_config",
    "write_probability_ablation",
]


def small_transaction_config(
    fidelity: Fidelity,
    algorithm: str,
    think_time: float,
    degree: int,
) -> SimulationConfig:
    """The footnote-9 workload: 32 reads (4 pages/partition average)."""
    placement = (
        PlacementKind.COLOCATED
        if degree == 1
        else PlacementKind.DECLUSTERED
    )
    config = paper_default_config(
        algorithm,
        think_time=think_time,
        num_proc_nodes=8,
        pages_per_partition=300,
        placement=placement,
        placement_degree=degree,
        seed=fidelity.seed,
    )
    workload = WorkloadConfig(
        think_time=think_time,
        classes=(TransactionClassConfig(pages_per_file=4),),
    )
    config = replace(config, workload=workload)
    return fidelity.apply(config)


def small_transactions(fidelity: Fidelity) -> List[FigureSeries]:
    """Partitioning speedup (Figure 9 analogue) with 32-read txns."""
    one_way = sweep(
        ALGORITHMS,
        fidelity.think_times,
        lambda algorithm, tt: small_transaction_config(
            fidelity, algorithm, tt, 1
        ),
    )
    eight_way = sweep(
        ALGORITHMS,
        fidelity.think_times,
        lambda algorithm, tt: small_transaction_config(
            fidelity, algorithm, tt, 8
        ),
    )
    series = FigureSeries(
        title="Ablation: partitioning speedup with 32-read "
        "transactions",
        x_label="think(s)",
        y_label="response-time speedup (1-way rt / 8-way rt)",
        x_values=list(fidelity.think_times),
    )
    for algorithm in ALGORITHMS:
        rt_one = [
            one_way[(algorithm, tt)].mean_response_time
            for tt in fidelity.think_times
        ]
        rt_eight = [
            eight_way[(algorithm, tt)].mean_response_time
            for tt in fidelity.think_times
        ]
        series.add_curve(algorithm, ratio_series(rt_one, rt_eight))
    return [series]


def algorithm_spectrum(fidelity: Fidelity) -> List[FigureSeries]:
    """Throughput and abort ratio across the full algorithm family.

    Sweeps the paper's five algorithms plus the two extensions ("wd"
    wait-die, "ir" immediate-restart) on the standard 8-node 8-way
    configuration.  Immediate-restart anchors the pure-abort end of
    the spectrum, so the expected throughput ordering under contention
    is roughly no_dc > 2pl > bto > wd/ww > opt > ir.
    """
    family = ("2pl", "bto", "ww", "wd", "opt", "ir", "no_dc")
    results = sweep(
        family,
        fidelity.think_times,
        lambda algorithm, think_time: fidelity.apply(
            paper_default_config(
                algorithm,
                think_time=think_time,
                num_proc_nodes=8,
                pages_per_partition=300,
                seed=fidelity.seed,
            )
        ),
    )
    throughput = FigureSeries(
        title="Extension: throughput across the blocking/restart "
        "spectrum (8 nodes, 8-way)",
        x_label="think(s)",
        y_label="transactions/second",
        x_values=list(fidelity.think_times),
    )
    abort_ratio = FigureSeries(
        title="Extension: abort ratio across the blocking/restart "
        "spectrum (8 nodes, 8-way)",
        x_label="think(s)",
        y_label="aborts per commit",
        x_values=list(fidelity.think_times),
    )
    for algorithm in family:
        throughput.add_curve(
            algorithm,
            [
                results[(algorithm, tt)].throughput
                for tt in fidelity.think_times
            ],
        )
        if algorithm != "no_dc":
            abort_ratio.add_curve(
                algorithm,
                [
                    results[(algorithm, tt)].abort_ratio
                    for tt in fidelity.think_times
                ],
            )
    return [throughput, abort_ratio]


def _write_prob_config(
    fidelity: Fidelity,
    algorithm: str,
    think_time: float,
    write_probability: float,
) -> SimulationConfig:
    config = paper_default_config(
        algorithm,
        think_time=think_time,
        num_proc_nodes=8,
        pages_per_partition=300,
        seed=fidelity.seed,
    )
    workload = WorkloadConfig(
        think_time=think_time,
        classes=(
            TransactionClassConfig(
                write_probability=write_probability
            ),
        ),
    )
    config = replace(config, workload=workload)
    return fidelity.apply(config)


def write_probability_ablation(
    fidelity: Fidelity,
) -> List[FigureSeries]:
    """Abort ratios under WriteProb=1/8 (default) vs 1/4 (Table 4)."""
    figures = []
    for write_probability, label in ((0.125, "1/8"), (0.25, "1/4")):
        series = FigureSeries(
            title=(
                f"Ablation: abort ratio with WriteProb={label} "
                "(8 nodes, 8-way, smaller DB)"
            ),
            x_label="think(s)",
            y_label="aborts per commit",
            x_values=list(fidelity.think_times),
        )
        algorithms = [
            algorithm for algorithm in ALGORITHMS
            if algorithm != "no_dc"
        ]
        configs = [
            _write_prob_config(
                fidelity, algorithm, think_time, write_probability
            )
            for algorithm in algorithms
            for think_time in fidelity.think_times
        ]
        results = iter(run_many(configs))
        for algorithm in algorithms:
            series.add_curve(
                algorithm,
                [
                    next(results).abort_ratio
                    for _tt in fidelity.think_times
                ],
            )
        figures.append(series)
    return figures


def _pattern_config(
    fidelity: Fidelity,
    algorithm: str,
    think_time: float,
    pattern: ExecutionPattern,
) -> SimulationConfig:
    config = paper_default_config(
        algorithm,
        think_time=think_time,
        num_proc_nodes=8,
        pages_per_partition=300,
        seed=fidelity.seed,
    )
    workload = WorkloadConfig(
        think_time=think_time,
        classes=(TransactionClassConfig(execution_pattern=pattern),),
    )
    config = replace(config, workload=workload)
    return fidelity.apply(config)


def sequential_vs_parallel(fidelity: Fidelity) -> List[FigureSeries]:
    """Response time: sequential (RPC-chain) vs parallel cohorts."""
    series = FigureSeries(
        title="Ablation: sequential vs parallel cohort execution "
        "(8-way partitioned, 8 nodes)",
        x_label="think(s)",
        y_label="mean response time (s)",
        x_values=list(fidelity.think_times),
    )
    variants = [
        (algorithm, pattern)
        for algorithm in ("2pl", "no_dc")
        for pattern in (
            ExecutionPattern.SEQUENTIAL,
            ExecutionPattern.PARALLEL,
        )
    ]
    configs = [
        _pattern_config(fidelity, algorithm, think_time, pattern)
        for algorithm, pattern in variants
        for think_time in fidelity.think_times
    ]
    results = iter(run_many(configs))
    for algorithm, pattern in variants:
        series.add_curve(
            f"{algorithm}-{pattern.value[:3]}",
            [
                next(results).mean_response_time
                for _tt in fidelity.think_times
            ],
        )
    return [series]
