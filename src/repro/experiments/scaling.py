"""Experiment §4.2: the impact of machine size and parallelism.

The workload (128 terminals, small 300-page partitions) is held fixed
while the machine grows from 1 to 4 to 8 processing nodes, with the
database repartitioned so transactions run 1-, 4-, or 8-way parallel.
Regenerates Figures 2-7 and the 4-node variant discussed in the text:

* Figure 2 — throughput vs think time, 1-node and 8-node systems.
* Figure 3 — response time vs think time, same systems.
* Figure 4 — 8-node/1-node throughput speedup vs think time.
* Figure 5 — 8-node/1-node response-time speedup vs think time.
* Figure 6 — disk utilizations underlying Figures 4-5.
* Figure 7 — CPU utilizations underlying Figures 4-5.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.series import FigureSeries
from repro.analysis.speedup import ratio_series
from repro.core.config import (
    PlacementKind,
    SimulationConfig,
    TransactionClassConfig,
    paper_default_config,
)
from repro.core.metrics import SimulationResult
from repro.experiments.fidelity import Fidelity
from repro.experiments.runner import run_many, sweep

__all__ = [
    "ALGORITHMS",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "scaling_config",
    "scaling_sweep",
    "scaling_sweeps",
    "scaling_speedups_4node",
    "scaling_speedups_16node",
]

#: Figure legend order: the four CC algorithms plus the baseline.
ALGORITHMS = ("2pl", "bto", "ww", "opt", "no_dc")

SweepResults = Dict[Tuple[str, float], SimulationResult]


def scaling_config(
    fidelity: Fidelity,
    algorithm: str,
    think_time: float,
    num_nodes: int,
) -> SimulationConfig:
    """The §4.2 configuration for one (algorithm, load, size) point."""
    if num_nodes == 1:
        placement = PlacementKind.COLOCATED
        degree = 1
    else:
        placement = PlacementKind.DECLUSTERED
        degree = num_nodes
    config = paper_default_config(
        algorithm,
        think_time=think_time,
        num_proc_nodes=num_nodes,
        pages_per_partition=300,
        placement=placement,
        placement_degree=degree,
        seed=fidelity.seed,
    )
    return fidelity.apply(config)


def scaling_sweep(
    fidelity: Fidelity, num_nodes: int
) -> SweepResults:
    """All algorithms over the think-time grid at one machine size."""
    return sweep(
        ALGORITHMS,
        fidelity.think_times,
        lambda algorithm, think_time: scaling_config(
            fidelity, algorithm, think_time, num_nodes
        ),
    )


def scaling_sweeps(
    fidelity: Fidelity, node_counts: Tuple[int, ...]
) -> List[SweepResults]:
    """Sweeps at several machine sizes, batched as one dispatch.

    The figure-pair functions below all need the same grid at two
    sizes; submitting the union to ``run_many`` in one call keeps the
    worker pool saturated across the size boundary instead of paying
    two fan-out barriers (the memo then serves the per-size slices).
    """
    grid = [
        (algorithm, think_time)
        for algorithm in ALGORITHMS
        for think_time in fidelity.think_times
    ]
    results = run_many(
        [
            scaling_config(fidelity, algorithm, think_time, num_nodes)
            for num_nodes in node_counts
            for algorithm, think_time in grid
        ]
    )
    return [
        dict(
            zip(
                grid,
                results[size * len(grid):(size + 1) * len(grid)],
            )
        )
        for size in range(len(node_counts))
    ]


def _metric_series(
    fidelity: Fidelity,
    results: SweepResults,
    metric: str,
    title: str,
    y_label: str,
) -> FigureSeries:
    series = FigureSeries(
        title=title,
        x_label="think(s)",
        y_label=y_label,
        x_values=list(fidelity.think_times),
    )
    for algorithm in ALGORITHMS:
        series.add_curve(
            algorithm,
            [
                getattr(results[(algorithm, tt)], metric)
                for tt in fidelity.think_times
            ],
        )
    return series


def figure2(fidelity: Fidelity) -> List[FigureSeries]:
    """Throughput vs think time, 1-node and 8-node systems."""
    one, eight = scaling_sweeps(fidelity, (1, 8))
    return [
        _metric_series(
            fidelity, one, "throughput",
            "Figure 2a: Throughput, 1-node system",
            "transactions/second",
        ),
        _metric_series(
            fidelity, eight, "throughput",
            "Figure 2b: Throughput, 8-node system",
            "transactions/second",
        ),
    ]


def figure3(fidelity: Fidelity) -> List[FigureSeries]:
    """Response time vs think time, 1-node and 8-node systems."""
    one, eight = scaling_sweeps(fidelity, (1, 8))
    return [
        _metric_series(
            fidelity, one, "mean_response_time",
            "Figure 3a: Response time, 1-node system",
            "seconds",
        ),
        _metric_series(
            fidelity, eight, "mean_response_time",
            "Figure 3b: Response time, 8-node system",
            "seconds",
        ),
    ]


def _speedup_series(
    fidelity: Fidelity,
    small: SweepResults,
    large: SweepResults,
    metric: str,
    invert: bool,
    title: str,
    y_label: str,
) -> FigureSeries:
    """Per-algorithm ratio of a metric between two machine sizes.

    ``invert=False`` computes large/small (throughput speedup);
    ``invert=True`` computes small/large (response-time speedup, since
    smaller response time is better).
    """
    series = FigureSeries(
        title=title,
        x_label="think(s)",
        y_label=y_label,
        x_values=list(fidelity.think_times),
    )
    for algorithm in ALGORITHMS:
        small_values = [
            getattr(small[(algorithm, tt)], metric)
            for tt in fidelity.think_times
        ]
        large_values = [
            getattr(large[(algorithm, tt)], metric)
            for tt in fidelity.think_times
        ]
        if invert:
            ratios = ratio_series(small_values, large_values)
        else:
            ratios = ratio_series(large_values, small_values)
        series.add_curve(algorithm, ratios)
    return series


def figure4(fidelity: Fidelity) -> List[FigureSeries]:
    """8-node/1-node throughput speedup vs think time."""
    one, eight = scaling_sweeps(fidelity, (1, 8))
    return [
        _speedup_series(
            fidelity, one, eight, "throughput", invert=False,
            title="Figure 4: Throughput speedup (8-node / 1-node)",
            y_label="speedup",
        )
    ]


def figure5(fidelity: Fidelity) -> List[FigureSeries]:
    """8-node/1-node response-time speedup vs think time."""
    one, eight = scaling_sweeps(fidelity, (1, 8))
    return [
        _speedup_series(
            fidelity, one, eight, "mean_response_time", invert=True,
            title="Figure 5: Response-time speedup (1-node rt / 8-node rt)",
            y_label="speedup",
        )
    ]


def figure6(fidelity: Fidelity) -> List[FigureSeries]:
    """Disk utilizations underlying the speedups."""
    one, eight = scaling_sweeps(fidelity, (1, 8))
    return [
        _metric_series(
            fidelity, one, "avg_disk_utilization",
            "Figure 6a: Disk utilization, 1-node system",
            "utilization",
        ),
        _metric_series(
            fidelity, eight, "avg_disk_utilization",
            "Figure 6b: Disk utilization, 8-node system",
            "utilization",
        ),
    ]


def figure7(fidelity: Fidelity) -> List[FigureSeries]:
    """CPU utilizations underlying the speedups."""
    one, eight = scaling_sweeps(fidelity, (1, 8))
    return [
        _metric_series(
            fidelity, one, "avg_node_cpu_utilization",
            "Figure 7a: CPU utilization, 1-node system",
            "utilization",
        ),
        _metric_series(
            fidelity, eight, "avg_node_cpu_utilization",
            "Figure 7b: CPU utilization, 8-node system",
            "utilization",
        ),
    ]


def _sixteen_node_config(
    fidelity: Fidelity,
    algorithm: str,
    think_time: float,
    num_nodes: int,
) -> SimulationConfig:
    """Footnote 7's larger machine: 16 partitions per relation.

    The paper's 16- and 32-node runs used "larger update transactions";
    with 16 partitions per relation a transaction reads all 16 (128
    reads on average), and the database grows to 128 files so that
    every node again hosts 8 partitions.
    """
    if num_nodes == 1:
        placement = PlacementKind.COLOCATED
        degree = 1
    else:
        placement = PlacementKind.DECLUSTERED
        degree = num_nodes
    config = paper_default_config(
        algorithm,
        think_time=think_time,
        num_proc_nodes=num_nodes,
        pages_per_partition=300,
        placement=placement,
        placement_degree=degree,
        seed=fidelity.seed,
    )
    config = config.with_database(
        partitions_per_relation=16
    ).with_workload(
        classes=(TransactionClassConfig(file_count=16),)
    )
    return fidelity.apply(config)


def scaling_speedups_16node(fidelity: Fidelity) -> List[FigureSeries]:
    """Footnote 7: the 16-node machine with 128-read transactions.

    The paper reports only that "the trends were similar" to the
    8-node results; this regenerates the throughput and response-time
    speedups so that claim can be inspected.
    """
    one = sweep(
        ALGORITHMS,
        fidelity.think_times,
        lambda algorithm, tt: _sixteen_node_config(
            fidelity, algorithm, tt, 1
        ),
    )
    sixteen = sweep(
        ALGORITHMS,
        fidelity.think_times,
        lambda algorithm, tt: _sixteen_node_config(
            fidelity, algorithm, tt, 16
        ),
    )
    return [
        _speedup_series(
            fidelity, one, sixteen, "throughput", invert=False,
            title="Footnote 7: throughput speedup "
            "(16-node / 1-node, 128-read txns)",
            y_label="speedup",
        ),
        _speedup_series(
            fidelity, one, sixteen, "mean_response_time",
            invert=True,
            title="Footnote 7: response-time speedup (16-node)",
            y_label="speedup",
        ),
    ]


def scaling_speedups_4node(fidelity: Fidelity) -> List[FigureSeries]:
    """The §4.2 text's 4-node variant of Figures 4 and 5."""
    one, four = scaling_sweeps(fidelity, (1, 4))
    return [
        _speedup_series(
            fidelity, one, four, "throughput", invert=False,
            title="4-node variant: throughput speedup (4-node / 1-node)",
            y_label="speedup",
        ),
        _speedup_series(
            fidelity, one, four, "mean_response_time", invert=True,
            title="4-node variant: response-time speedup",
            y_label="speedup",
        ),
    ]
