"""repro — reproduction of Carey & Livny (SIGMOD 1989).

"Parallelism and Concurrency Control Performance in Distributed
Database Machines": a discrete-event simulation of a shared-nothing
database machine comparing four distributed concurrency control
algorithms — two-phase locking (2PL), wound-wait (WW), basic timestamp
ordering (BTO), and distributed optimistic certification (OPT) — plus a
no-data-contention baseline (NO_DC), across machine sizes, degrees of
data partitioning, system loads, and messaging/process-startup
overheads.

Quick start::

    from repro import paper_default_config, run_simulation

    result = run_simulation(paper_default_config("2pl", think_time=8.0))
    print(result)

Subpackages
-----------
``repro.sim``
    The discrete-event kernel, resource disciplines, RNG streams, and
    statistics collectors.
``repro.core``
    The database machine model: database/placement, workload source,
    transaction manager with two-phase commit, resource and network
    managers, metrics.
``repro.cc``
    The concurrency control managers.
``repro.experiments``
    Per-figure experiment definitions and the sweep runner regenerating
    every table and figure in the paper's evaluation.
``repro.analysis``
    Speedup/degradation math and table formatting.
"""

from repro.core.audit import Auditor
from repro.core.config import (
    DatabaseConfig,
    ExecutionPattern,
    PlacementKind,
    ResourceConfig,
    SimulationConfig,
    TransactionClassConfig,
    WorkloadConfig,
    paper_default_config,
)
from repro.core.metrics import SimulationResult
from repro.core.simulation import Simulation, run_simulation
from repro.core.tracing import Tracer

__version__ = "1.0.0"

__all__ = [
    "Auditor",
    "DatabaseConfig",
    "ExecutionPattern",
    "PlacementKind",
    "ResourceConfig",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "Tracer",
    "TransactionClassConfig",
    "WorkloadConfig",
    "paper_default_config",
    "run_simulation",
    "__version__",
]
