"""An adaptive calendar-queue scheduler with exact ``(time, seq)`` order.

The kernel's default pending-event structure.  A binary heap pays
O(log n) comparisons per operation — and every comparison is a
Python-level ``ScheduledCallback.__lt__`` call — so the per-event cost
grows with the *population* of pending events, not with the work done.
At paper scale (hundreds of pending events) that is invisible; at the
ROADMAP's 1000-node / 10⁵-terminal machine every idle terminal holds a
pending arrival and the heap burns tens of Python comparisons per
push and pop.

A calendar queue (Brown 1988) spreads pending events over an array of
time buckets, each ``width`` seconds wide, jointly covering one *year*
``[year_start, year_start + num_buckets * width)``:

* **push** — events due in the current year are appended, unsorted, to
  their bucket (two float ops and a C-speed ``list.append``); events
  beyond the year go to an overflow heap.
* **pop** — the queue walks buckets in time order.  A bucket is sorted
  *once*, when the cursor reaches it (Timsort under an
  ``operator.attrgetter`` key: C-speed comparisons, no ``__lt__``
  calls), descending, then consumed by ``list.pop()`` from the tail —
  a physical removal, required because the kernel recycles popped
  handles and rewrites their ``(time, seq)``.
* **adaptation** — a fixed width cannot serve this simulator's
  workload, which is extremely *skewed*: 10⁵ idle-terminal think
  timers spread over hundreds of simulated seconds coexist with a
  service-event stream thousands of times denser near ``now``.  A
  width derived from the global span (span/buckets) puts thousands of
  near-term events into every bucket and the structure degenerates
  into O(n) sorted-insertions.  Instead, the geometry tracks the
  *dispatch-density* of the head, ladder-queue style:

  - when the cursor reaches a bucket holding more events than
    ``_SPLIT_THRESHOLD``, the near tier is re-anchored at that
    bucket's earliest event with a proportionally narrower width
    (events pushed past the new, nearer year end spill to overflow);
  - when a year is exhausted, the queue re-anchors at the overflow
    head, draws the events due in the new year out of the overflow
    heap, and re-sizes the bucket count to the number of events
    dispatched during the finished year (consecutive low-yield years
    widen the width again, so sparse stretches — an idle tail, a
    think-time gap — cost a few cheap re-anchors instead of long
    empty-bucket scans).

  Far-future events therefore live in the overflow heap (paying
  O(log n) only twice — on entering and on being drawn into their
  year), while the dense near-term stream pays O(1) amortized
  appends/pops against buckets that are never far from one event
  deep.

Exactness (the property the determinism suite enforces): the partition
of events into buckets is by the *monotone* map ``floor((t -
year_start) / width)``, so bucket order refines time order, the lazy
per-bucket sort refines it to full ``(time, seq)`` order, and ties are
impossible (``seq`` is unique).  Events that land in an
already-passed bucket (possible only for pushes at the cursor's own
timestamp) merge into the sorted current run; the overflow heap never
holds anything earlier than the year end.  Pops therefore come out in
exactly the order a binary heap would produce, and the kernel's
dispatch schedule — and every simulation result — is bit-identical
under ``REPRO_KERNEL_SCHED=calendar|heap``.  All re-anchor decisions
depend only on the operation sequence and event times, never on wall
clock, so the structure is deterministic too.

Cancellation matches heap semantics: ``ScheduledCallback.cancel`` flips
a flag and the dead entry is reaped when popped, never eagerly.
"""

from __future__ import annotations

import heapq
import math
from bisect import insort
from operator import attrgetter
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from repro.sim.kernel import ScheduledCallback

__all__ = ["CalendarQueue"]

#: Sort/insort key: C-speed (time, seq) tuples instead of Python __lt__.
_TIME_SEQ = attrgetter("time", "seq")


def _reverse_key(handle: "ScheduledCallback"):
    """Insort key for the descending current run (latest first).

    The current run is kept sorted *descending* so consumption is a
    physical ``list.pop()`` from the tail.  That matters beyond
    aesthetics: the kernel recycles popped handles and rewrites their
    ``(time, seq)`` slots, so a consumed entry must leave the structure
    immediately — a lazily skipped prefix would see its sort keys
    mutate underneath later bisects.
    """
    return (-handle.time, -handle.seq)


#: Bucket-count clamp (powers of two).  The floor keeps tiny queues
#: trivial; the cap bounds re-anchor cost for pathological densities.
_MIN_BUCKETS_POW = 3
_MAX_BUCKETS_POW = 17

#: Width floor guards the degenerate all-events-at-one-instant span.
_MIN_WIDTH = 1e-12

#: A visited bucket deeper than this triggers a narrower re-anchor...
_SPLIT_THRESHOLD = 48
#: ...aiming for roughly this occupancy afterwards.
_SPLIT_TARGET = 8

#: A year that dispatched fewer events than this widens the next one.
_SPARSE_YEAR = 4


class CalendarQueue:
    """Pending-event queue; pops in exact global ``(time, seq)`` order.

    The kernel drives it through three calls: :meth:`push`,
    :meth:`peek` (which also advances the internal cursor), and
    :meth:`pop` (valid immediately after a successful peek).
    """

    __slots__ = (
        "_buckets",
        "_num_buckets",
        "_width",
        "_year_start",
        "_year_end",
        "_cursor",
        "_current",
        "_overflow",
        "_size",
        "_pops",
    )

    def __init__(self) -> None:
        self._num_buckets = 1 << _MIN_BUCKETS_POW
        self._buckets: List[List[ScheduledCallback]] = [
            [] for _ in range(self._num_buckets)
        ]
        self._width = 1.0
        self._year_start = 0.0
        self._year_end = float(self._num_buckets)
        #: Index of the bucket currently being consumed; -1 = before
        #: bucket 0 (nothing sorted yet).
        self._cursor = -1
        #: The current bucket, sorted descending; consumed from the tail.
        self._current: List[ScheduledCallback] = []
        #: Events beyond the current year, ordered by handle ``__lt__``.
        self._overflow: List[ScheduledCallback] = []
        self._size = 0
        #: Pops since the last re-anchor; sizes the next year's buckets.
        self._pops = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def push(self, handle: "ScheduledCallback") -> None:
        """Insert ``handle``; O(1) amortized for in-year events."""
        self._size += 1
        time = handle.time
        if time >= self._year_end:
            heapq.heappush(self._overflow, handle)
            return
        index = int((time - self._year_start) / self._width)
        if index >= self._num_buckets:
            # Float rounding at the year's far edge.
            index = self._num_buckets - 1
        if index <= self._cursor:
            # The cursor has already passed (or is inside) this bucket:
            # merge into the descending current run.  (A negative index
            # — a push earlier than the year start — lands here too.)
            current = self._current
            if len(current) > _SPLIT_THRESHOLD:
                self._split_current(handle)
            else:
                insort(current, handle, key=_reverse_key)
        else:
            self._buckets[index].append(handle)

    def peek(self) -> Optional["ScheduledCallback"]:
        """The earliest pending handle, or ``None`` when empty.

        Advances the cursor (sorting buckets, re-anchoring the year)
        until the earliest event sits at the tail of the current run;
        :meth:`pop` may then take it in O(1).
        """
        current = self._current
        if current:
            return current[-1]
        if self._size == 0:
            return None
        while True:
            handle = self._advance()
            if handle is not None:
                return handle
            # A split or rollover re-anchored the year; rescan.

    def pop(self) -> "ScheduledCallback":
        """Remove and return the earliest handle (peek's answer).

        Physically removes the entry — the kernel recycles popped
        handles, so no reference may linger in the queue.
        """
        if not self._current and self.peek() is None:
            raise IndexError("pop from empty CalendarQueue")
        self._size -= 1
        self._pops += 1
        return self._current.pop()

    # ------------------------------------------------------------------
    # Cursor advance and re-anchoring
    # ------------------------------------------------------------------

    def _advance(self) -> Optional["ScheduledCallback"]:
        """Move the cursor to the next non-empty bucket and sort it.

        Returns the earliest handle, or ``None`` when the geometry was
        re-anchored (bucket split or year rollover) and the caller
        must rescan.
        """
        buckets = self._buckets
        num_buckets = self._num_buckets
        cursor = self._cursor
        while cursor + 1 < num_buckets:
            cursor += 1
            bucket = buckets[cursor]
            if not bucket:
                continue
            self._cursor = cursor
            if len(bucket) > _SPLIT_THRESHOLD and self._split(cursor):
                return None
            bucket.sort(key=_TIME_SEQ, reverse=True)
            buckets[cursor] = []
            self._current = bucket
            return bucket[-1]
        self._cursor = cursor
        self._rollover()
        return None

    def _split(self, cursor: int) -> bool:
        """Re-anchor with a narrower width at an overloaded bucket.

        Returns False — leaving the bucket to be sorted and consumed
        as-is — when the width already sits at its floor or every
        event in the bucket shares one timestamp (narrowing cannot
        separate them).
        """
        bucket = self._buckets[cursor]
        earliest = latest = bucket[0].time
        for handle in bucket:
            time = handle.time
            if time < earliest:
                earliest = time
            elif time > latest:
                latest = time
        floor = max(_MIN_WIDTH, math.ulp(earliest))
        if latest <= earliest or self._width <= floor:
            return False
        # Collect the whole near tier (the current run is empty here;
        # buckets before the cursor were consumed).
        items = bucket
        for index in range(cursor + 1, self._num_buckets):
            tail = self._buckets[index]
            if tail:
                items.extend(tail)
        shift = (len(bucket) // _SPLIT_TARGET).bit_length()
        width = self._width / (1 << shift)
        if width < floor:
            width = floor
        self._apply_geometry(earliest, width, len(items))
        self._replace(items)
        self._drain_overflow()
        return True

    def _split_current(self, handle: "ScheduledCallback") -> None:
        """Re-anchor with a narrower width when the current run balloons.

        A bucket can be innocently small when the cursor sorts it yet
        balloon afterwards: while the simulation's clock crawls across
        the bucket's time range, every newly scheduled event due within
        the rest of that range merges into the sorted current run.  A
        too-wide bucket (the bootstrap geometry, or a density surge)
        would then degrade pushes into O(n) sorted-insertions — the
        classic calendar-queue failure under skew.  Re-anchoring at the
        run's earliest event with a proportionally narrower width
        restores O(1) appends; events past the nearer year end spill to
        overflow.

        Falls back to a plain insort when the run shares one timestamp
        (narrowing cannot separate it) or the width is at its floor.
        """
        current = self._current
        earliest = current[-1].time
        latest = current[0].time
        time = handle.time
        if time < earliest:
            earliest = time
        elif time > latest:
            latest = time
        floor = max(_MIN_WIDTH, math.ulp(earliest))
        if latest <= earliest or self._width <= floor:
            insort(current, handle, key=_reverse_key)
            return
        shift = (len(current) // _SPLIT_TARGET).bit_length()
        width = self._width / (1 << shift)
        items = current
        items.append(handle)
        for index in range(self._cursor + 1, self._num_buckets):
            tail = self._buckets[index]
            if tail:
                items.extend(tail)
        self._apply_geometry(earliest, width, len(items))
        self._replace(items)
        self._drain_overflow()

    def _rollover(self) -> None:
        """Start the next year at the overflow head.

        Only reached with the near tier fully consumed, so everything
        pending lives in the overflow heap.  The new year's bucket
        count follows the finished year's dispatch count, and a
        low-yield year widens the width — sparse stretches re-anchor
        a few times geometrically instead of scanning empty buckets.
        """
        overflow = self._overflow
        if not overflow:
            raise AssertionError(
                "CalendarQueue accounting error: size "
                f"{self._size} but no pending events found"
            )
        pops = self._pops
        width = self._width
        if pops < _SPARSE_YEAR:
            width *= 4.0
        self._apply_geometry(overflow[0].time, width, pops)
        self._drain_overflow()

    def _apply_geometry(
        self, year_start: float, width: float, population: int
    ) -> None:
        """Reset buckets/cursor for a new year anchored at an event.

        ``population`` sizes the bucket count (clamped power of two);
        ``width`` is widened as needed so the year strictly advances
        past its start despite float rounding at large magnitudes.
        """
        num_buckets = 1 << min(
            _MAX_BUCKETS_POW,
            max(_MIN_BUCKETS_POW, population.bit_length()),
        )
        floor = max(_MIN_WIDTH, math.ulp(year_start))
        if width < floor:
            width = floor
        year_end = year_start + width * num_buckets
        while year_end <= year_start:
            width *= 2.0
            year_end = year_start + width * num_buckets
        self._num_buckets = num_buckets
        self._buckets = [[] for _ in range(num_buckets)]
        self._width = width
        self._year_start = year_start
        self._year_end = year_end
        self._cursor = -1
        self._current = []
        self._pops = 0

    def _replace(self, items: List["ScheduledCallback"]) -> None:
        """Distribute collected near-tier events into fresh geometry.

        Events past the (possibly nearer) new year end move to the
        overflow heap in one O(n) heapify rather than n heappushes.
        """
        year_end = self._year_end
        year_start = self._year_start
        width = self._width
        num_buckets = self._num_buckets
        buckets = self._buckets
        far: List[ScheduledCallback] = []
        for handle in items:
            time = handle.time
            if time >= year_end:
                far.append(handle)
                continue
            index = int((time - year_start) / width)
            if index >= num_buckets:
                index = num_buckets - 1
            buckets[index].append(handle)
        if far:
            overflow = self._overflow
            overflow.extend(far)
            heapq.heapify(overflow)

    def _drain_overflow(self) -> None:
        """Pull overflow events that now fall inside the year.

        Keeps the invariant that the overflow heap never holds
        anything earlier than ``year_end`` — each far event pays its
        two O(log n) heap operations exactly once.
        """
        overflow = self._overflow
        if not overflow or overflow[0].time >= self._year_end:
            return
        year_end = self._year_end
        year_start = self._year_start
        width = self._width
        num_buckets = self._num_buckets
        buckets = self._buckets
        heappop = heapq.heappop
        while overflow and overflow[0].time < year_end:
            handle = heappop(overflow)
            index = int((handle.time - year_start) / width)
            if index >= num_buckets:
                index = num_buckets - 1
            buckets[index].append(handle)
