"""Independent, named random-number streams.

The paper's DeNet simulator drew each stochastic workload dimension
(think times, page counts, write coin flips, instruction counts, disk
service times, ...) from its own pseudo-random stream.  Keeping streams
independent means that, for example, changing the concurrency control
algorithm does not perturb the sequence of think times — the classic
common-random-numbers variance-reduction discipline used when comparing
alternatives.

:class:`RandomStreams` derives one :class:`random.Random` per stream name
from a master seed, via SHA-256, so streams are reproducible and
uncorrelated regardless of creation order.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and ``name``."""
    digest = hashlib.sha256(
        f"{master_seed}:{name}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A family of independent named random streams.

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> think = streams.get("think-time")
    >>> think.expovariate(1.0)  # doctest: +SKIP
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def exponential(self, name: str, mean: float) -> float:
        """Draw from Exp(mean); returns 0.0 when ``mean`` is 0."""
        if mean <= 0.0:
            return 0.0
        return self.get(name).expovariate(1.0 / mean)

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw uniformly from [low, high]."""
        return self.get(name).uniform(low, high)

    def uniform_int(self, name: str, low: int, high: int) -> int:
        """Draw an integer uniformly from [low, high] inclusive."""
        return self.get(name).randint(low, high)

    def bernoulli(self, name: str, probability: float) -> bool:
        """Flip a coin that lands True with ``probability``."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.get(name).random() < probability

    def sample_without_replacement(
        self, name: str, population: int, k: int
    ) -> list[int]:
        """Sample ``k`` distinct integers from ``range(population)``."""
        if k > population:
            raise ValueError(
                f"cannot sample {k} distinct items from {population}"
            )
        return self.get(name).sample(range(population), k)
