"""Independent, named random-number streams.

The paper's DeNet simulator drew each stochastic workload dimension
(think times, page counts, write coin flips, instruction counts, disk
service times, ...) from its own pseudo-random stream.  Keeping streams
independent means that, for example, changing the concurrency control
algorithm does not perturb the sequence of think times — the classic
common-random-numbers variance-reduction discipline used when comparing
alternatives.

:class:`RandomStreams` derives one :class:`random.Random` per stream name
from a master seed, via SHA-256, so streams are reproducible and
uncorrelated regardless of creation order.

Stream names are **registered**: every canonical stream the simulator
draws from is declared below via :func:`register_stream`, with
``{placeholder}`` segments for per-entity families
(``"disk-service-{node}"`` covers ``disk-service-0``,
``disk-service-1``, ...).  The registry exists because a typo'd stream
name does not fail — it silently forks a fresh stream and perturbs
every common-random-numbers comparison — so the name set must be
introspectable: the ``stream-registry`` lint rule statically checks
every draw site against these registrations, and a strict
:class:`RandomStreams` enforces the same contract at runtime.
"""

from __future__ import annotations

import hashlib
import random
import re
from typing import Dict, Tuple

__all__ = [
    "RandomStreams",
    "derive_seed",
    "is_registered",
    "register_stream",
    "registered_streams",
    "stream_owner",
]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and ``name``."""
    digest = hashlib.sha256(
        f"{master_seed}:{name}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


# ----------------------------------------------------------------------
# Stream-name registry
# ----------------------------------------------------------------------

#: Registered name/pattern -> one-line description.
STREAM_REGISTRY: Dict[str, str] = {}

#: Registered name/pattern -> owning component ("" = unowned).  The
#: runtime sanitizer checks each draw's declared component against this
#: ownership; a draw from a stream another component owns entangles
#: sequences that the common-random-numbers discipline needs
#: independent.
STREAM_OWNERS: Dict[str, str] = {}

_PLACEHOLDER_RE = re.compile(r"\{[^{}]*\}")
_PATTERN_CACHE: Dict[str, "re.Pattern[str]"] = {}


def register_stream(name: str, description: str = "", owner: str = "") -> str:
    """Declare a canonical stream name (or ``{placeholder}`` family).

    Returns ``name`` so call sites can register and use in one
    expression.  Re-registering the same name overwrites the
    description (idempotent for module re-imports).  ``owner`` names
    the component allowed to draw from the stream (enforced at runtime
    by the sanitizer's stream-discipline checker; empty = any).
    """
    STREAM_REGISTRY[name] = description
    STREAM_OWNERS[name] = owner
    return name


def registered_streams() -> Tuple[str, ...]:
    """Every registered name/pattern, sorted for stable iteration."""
    return tuple(sorted(STREAM_REGISTRY))


def _compile(pattern: str) -> "re.Pattern[str]":
    compiled = _PATTERN_CACHE.get(pattern)
    if compiled is None:
        parts = []
        last = 0
        for match in _PLACEHOLDER_RE.finditer(pattern):
            parts.append(re.escape(pattern[last : match.start()]))
            parts.append(".+")
            last = match.end()
        parts.append(re.escape(pattern[last:]))
        compiled = re.compile("".join(parts))
        _PATTERN_CACHE[pattern] = compiled
    return compiled


def is_registered(name: str) -> bool:
    """Whether a concrete stream name matches some registration."""
    return any(
        _compile(pattern).fullmatch(name) is not None
        for pattern in STREAM_REGISTRY
    )


def stream_owner(name: str) -> str:
    """Declared owning component for a concrete stream name ("" = any).

    Exact registrations win; otherwise the first matching
    ``{placeholder}`` family (in sorted pattern order, for stability)
    provides the owner.
    """
    owner = STREAM_OWNERS.get(name)
    if owner is not None:
        return owner
    for pattern in sorted(STREAM_OWNERS):
        if _compile(pattern).fullmatch(name) is not None:
            return STREAM_OWNERS[pattern]
    return ""


class RandomStreams:
    """A family of independent named random streams.

    With ``strict=True`` every drawn name must match a registered
    stream (:func:`register_stream`); an unregistered name raises
    instead of silently forking a new stream.  The default stays
    permissive so ad-hoc experiments and tests can draw freely.

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> page_count = streams.get("page-count")
    >>> page_count.expovariate(1.0)  # doctest: +SKIP
    """

    def __init__(self, seed: int = 0, strict: bool = False):
        self.seed = seed
        self.strict = strict
        self._streams: Dict[str, random.Random] = {}
        # Runtime sanitizer; None on the clean path (zero-cost hooks).
        self._san = None

    def attach_sanitizer(self, sanitizer) -> None:
        """Route stream lookups/draws through a runtime sanitizer.

        Must be called before any stream is created: streams handed out
        afterwards are per-draw instrumentation proxies, and call sites
        cache stream handles, so late attachment would leave earlier
        streams invisible to the sanitizer.
        """
        if self._streams:
            raise ValueError(
                "attach_sanitizer must precede the first stream draw"
            )
        self._san = sanitizer

    def get(self, name: str, owner: str = None) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        ``owner`` declares the drawing component; under the sanitizer
        it is checked against the registration's declared ownership
        (the stream-discipline checker).  Clean runs ignore it.
        """
        san = self._san
        if san is not None:
            san.check_stream(name, owner)
        stream = self._streams.get(name)
        if stream is None:
            if self.strict and not is_registered(name):
                raise ValueError(
                    f"unregistered stream name {name!r}; declare it "
                    "with repro.sim.streams.register_stream"
                )
            stream = random.Random(derive_seed(self.seed, name))
            if san is not None:
                stream = san.wrap_stream(name, stream)
            self._streams[name] = stream
        return stream

    def exponential(self, name: str, mean: float, owner: str = None) -> float:
        """Draw from Exp(mean); returns 0.0 when ``mean`` is 0."""
        if mean <= 0.0:
            return 0.0
        return self.get(name, owner).expovariate(1.0 / mean)

    def uniform(
        self, name: str, low: float, high: float, owner: str = None
    ) -> float:
        """Draw uniformly from [low, high]."""
        return self.get(name, owner).uniform(low, high)

    def uniform_int(
        self, name: str, low: int, high: int, owner: str = None
    ) -> int:
        """Draw an integer uniformly from [low, high] inclusive."""
        return self.get(name, owner).randint(low, high)

    def bernoulli(
        self, name: str, probability: float, owner: str = None
    ) -> bool:
        """Flip a coin that lands True with ``probability``."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.get(name, owner).random() < probability

    def sample_without_replacement(
        self, name: str, population: int, k: int, owner: str = None
    ) -> list[int]:
        """Sample ``k`` distinct integers from ``range(population)``."""
        if k > population:
            raise ValueError(
                f"cannot sample {k} distinct items from {population}"
            )
        return self.get(name, owner).sample(range(population), k)


# ----------------------------------------------------------------------
# Canonical stream registrations
# ----------------------------------------------------------------------
# Workload generation (core/workload.py).
register_stream("page-count", "pages touched per transaction", owner="workload")
register_stream("page-choice", "which pages a transaction touches", owner="workload")
register_stream("write-coin", "read vs. update coin per access", owner="workload")
register_stream("inst-per-page", "CPU instructions per page access", owner="workload")
register_stream("copy-choice", "which replica serves a read", owner="workload")
register_stream("file-choice", "which partitions FileCount selects", owner="workload")
register_stream("think-{terminal}", "per-terminal think times", owner="workload")
register_stream(
    "page-skew",
    "Zipf-skewed page choice within a partition (access_skew > 0)",
    owner="workload",
)
# Transaction router (router/classifier.py) — isolated router-* streams
# so routing decisions never perturb workload or resource sequences.
register_stream(
    "router-explore",
    "epsilon-greedy exploration coin per routed class",
    owner="router",
)
register_stream(
    "router-choice",
    "which candidate algorithm an exploration picks",
    owner="router",
)
# Resource model (core/simulation.py).
register_stream("disk-service-{node}", "per-node disk service times", owner="resources")
register_stream("disk-choice-{node}", "per-node disk selection", owner="resources")
# Transaction restarts (core/transaction_manager.py).
register_stream("restart-delay", "post-abort restart delay", owner="transaction-manager")
register_stream(
    "fault-retry-backoff",
    "2PC retry backoff under faults",
    owner="transaction-manager",
)
# Fault injection (faults/schedule.py) — isolated fault-* streams so
# disabling faults leaves every other sequence bit-identical.
register_stream("fault-crash-{node}", "per-node crash inter-arrivals", owner="faults")
register_stream("fault-repair-{node}", "per-node repair durations", owner="faults")
register_stream("fault-msg-loss", "per-message loss coin", owner="faults")
register_stream("fault-msg-delay", "per-message delay coin", owner="faults")
register_stream("fault-msg-delay-time", "extra delay when delayed", owner="faults")
