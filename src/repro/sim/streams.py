"""Independent, named random-number streams.

The paper's DeNet simulator drew each stochastic workload dimension
(think times, page counts, write coin flips, instruction counts, disk
service times, ...) from its own pseudo-random stream.  Keeping streams
independent means that, for example, changing the concurrency control
algorithm does not perturb the sequence of think times — the classic
common-random-numbers variance-reduction discipline used when comparing
alternatives.

:class:`RandomStreams` derives one :class:`random.Random` per stream name
from a master seed, via SHA-256, so streams are reproducible and
uncorrelated regardless of creation order.

Stream names are **registered**: every canonical stream the simulator
draws from is declared below via :func:`register_stream`, with
``{placeholder}`` segments for per-entity families
(``"disk-service-{node}"`` covers ``disk-service-0``,
``disk-service-1``, ...).  The registry exists because a typo'd stream
name does not fail — it silently forks a fresh stream and perturbs
every common-random-numbers comparison — so the name set must be
introspectable: the ``stream-registry`` lint rule statically checks
every draw site against these registrations, and a strict
:class:`RandomStreams` enforces the same contract at runtime.
"""

from __future__ import annotations

import hashlib
import random
import re
from typing import Dict, Tuple

__all__ = [
    "RandomStreams",
    "derive_seed",
    "is_registered",
    "register_stream",
    "registered_streams",
]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and ``name``."""
    digest = hashlib.sha256(
        f"{master_seed}:{name}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


# ----------------------------------------------------------------------
# Stream-name registry
# ----------------------------------------------------------------------

#: Registered name/pattern -> one-line description.
STREAM_REGISTRY: Dict[str, str] = {}

_PLACEHOLDER_RE = re.compile(r"\{[^{}]*\}")
_PATTERN_CACHE: Dict[str, "re.Pattern[str]"] = {}


def register_stream(name: str, description: str = "") -> str:
    """Declare a canonical stream name (or ``{placeholder}`` family).

    Returns ``name`` so call sites can register and use in one
    expression.  Re-registering the same name overwrites the
    description (idempotent for module re-imports).
    """
    STREAM_REGISTRY[name] = description
    return name


def registered_streams() -> Tuple[str, ...]:
    """Every registered name/pattern, sorted for stable iteration."""
    return tuple(sorted(STREAM_REGISTRY))


def _compile(pattern: str) -> "re.Pattern[str]":
    compiled = _PATTERN_CACHE.get(pattern)
    if compiled is None:
        parts = []
        last = 0
        for match in _PLACEHOLDER_RE.finditer(pattern):
            parts.append(re.escape(pattern[last : match.start()]))
            parts.append(".+")
            last = match.end()
        parts.append(re.escape(pattern[last:]))
        compiled = re.compile("".join(parts))
        _PATTERN_CACHE[pattern] = compiled
    return compiled


def is_registered(name: str) -> bool:
    """Whether a concrete stream name matches some registration."""
    return any(
        _compile(pattern).fullmatch(name) is not None
        for pattern in STREAM_REGISTRY
    )


class RandomStreams:
    """A family of independent named random streams.

    With ``strict=True`` every drawn name must match a registered
    stream (:func:`register_stream`); an unregistered name raises
    instead of silently forking a new stream.  The default stays
    permissive so ad-hoc experiments and tests can draw freely.

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> page_count = streams.get("page-count")
    >>> page_count.expovariate(1.0)  # doctest: +SKIP
    """

    def __init__(self, seed: int = 0, strict: bool = False):
        self.seed = seed
        self.strict = strict
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            if self.strict and not is_registered(name):
                raise ValueError(
                    f"unregistered stream name {name!r}; declare it "
                    "with repro.sim.streams.register_stream"
                )
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def exponential(self, name: str, mean: float) -> float:
        """Draw from Exp(mean); returns 0.0 when ``mean`` is 0."""
        if mean <= 0.0:
            return 0.0
        return self.get(name).expovariate(1.0 / mean)

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw uniformly from [low, high]."""
        return self.get(name).uniform(low, high)

    def uniform_int(self, name: str, low: int, high: int) -> int:
        """Draw an integer uniformly from [low, high] inclusive."""
        return self.get(name).randint(low, high)

    def bernoulli(self, name: str, probability: float) -> bool:
        """Flip a coin that lands True with ``probability``."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.get(name).random() < probability

    def sample_without_replacement(
        self, name: str, population: int, k: int
    ) -> list[int]:
        """Sample ``k`` distinct integers from ``range(population)``."""
        if k > population:
            raise ValueError(
                f"cannot sample {k} distinct items from {population}"
            )
        return self.get(name).sample(range(population), k)


# ----------------------------------------------------------------------
# Canonical stream registrations
# ----------------------------------------------------------------------
# Workload generation (core/workload.py).
register_stream("page-count", "pages touched per transaction")
register_stream("page-choice", "which pages a transaction touches")
register_stream("write-coin", "read vs. update coin per access")
register_stream("inst-per-page", "CPU instructions per page access")
register_stream("copy-choice", "which replica serves a read")
register_stream("file-choice", "which partitions FileCount selects")
register_stream("think-{terminal}", "per-terminal think times")
# Resource model (core/simulation.py).
register_stream("disk-service-{node}", "per-node disk service times")
register_stream("disk-choice-{node}", "per-node disk selection")
# Transaction restarts (core/transaction_manager.py).
register_stream("restart-delay", "post-abort restart delay")
register_stream(
    "fault-retry-backoff", "2PC retry backoff under faults"
)
# Fault injection (faults/schedule.py) — isolated fault-* streams so
# disabling faults leaves every other sequence bit-identical.
register_stream("fault-crash-{node}", "per-node crash inter-arrivals")
register_stream("fault-repair-{node}", "per-node repair durations")
register_stream("fault-msg-loss", "per-message loss coin")
register_stream("fault-msg-delay", "per-message delay coin")
register_stream("fault-msg-delay-time", "extra delay when delayed")
