"""Statistics collectors for the simulation.

Three collector styles cover everything the paper's metrics need:

* :class:`Tally` — observation statistics (response times, blocking
  times): count, mean, variance, extremes.
* :class:`TimeWeighted` — time-averaged state statistics (CPU/disk
  utilization, queue lengths): maintains the time integral of a piecewise
  constant signal.
* :class:`Counter` — plain event counts (commits, aborts, messages).

All three support :meth:`reset`, which the simulation driver calls at the
end of the warmup period so reported statistics only cover steady state.
:class:`BatchMeans` adds simple batch-means confidence intervals for the
response-time series, which EXPERIMENTS.md uses to report run quality.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = [
    "BatchMeans",
    "Counter",
    "StreamingHistogram",
    "Tally",
    "TimeWeighted",
]


class Tally:
    """Running mean/variance over discrete observations (Welford)."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum", "total")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def record(self, value: float) -> None:
        """Add one observation."""
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Sample mean, or 0.0 when no observations were recorded."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than 2 samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def reset(self) -> None:
        """Discard all observations (end of warmup)."""
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def __repr__(self) -> str:
        return f"<Tally n={self.count} mean={self.mean:.6g}>"


class TimeWeighted:
    """Time integral of a piecewise-constant signal.

    ``update(now, value)`` closes the interval since the previous update
    at the old value and switches to ``value``.  The signal is typically
    0/1 (busy/idle) for utilizations or an integer for queue lengths.
    """

    __slots__ = ("_value", "_last_time", "_integral", "_start_time")

    def __init__(self, start_time: float = 0.0, value: float = 0.0):
        self._value = value
        self._last_time = start_time
        self._start_time = start_time
        self._integral = 0.0

    @property
    def value(self) -> float:
        """Current value of the signal."""
        return self._value

    def update(self, now: float, value: float) -> None:
        """Advance the integral to ``now`` and set a new signal value."""
        self._integral += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value

    def advance(self, now: float) -> None:
        """Advance the integral to ``now`` without changing the value."""
        self.update(now, self._value)

    def mean(self, now: float) -> float:
        """Time average of the signal over [start_time, now]."""
        elapsed = now - self._start_time
        if elapsed <= 0.0:
            return self._value
        integral = self._integral + self._value * (now - self._last_time)
        return integral / elapsed

    def reset(self, now: float) -> None:
        """Restart the averaging window at ``now`` (end of warmup)."""
        self._integral = 0.0
        self._last_time = now
        self._start_time = now

    def __repr__(self) -> str:
        return f"<TimeWeighted value={self._value:.6g}>"


class Counter:
    """A resettable event counter."""

    __slots__ = ("count",)

    def __init__(self):
        self.count = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` events (default one)."""
        self.count += amount

    def reset(self) -> None:
        """Zero the counter (end of warmup)."""
        self.count = 0

    def __repr__(self) -> str:
        return f"<Counter {self.count}>"


class StreamingHistogram:
    """Fixed-bin histogram for streaming percentile estimates.

    Observations are counted into ``num_bins`` equal-width bins over
    ``[low, high)``; values outside the range land in dedicated
    underflow/overflow buckets so the count never lies.  Memory is O(bins)
    and :meth:`record` is O(1), which keeps it safe for the kernel hot
    path — no per-observation list append, no sort at report time.

    Percentiles are estimated by linear interpolation within the bin
    containing the requested rank.  The estimate's resolution is the bin
    width; for the response-time distributions reported here (seconds,
    range [0, 60)) that is well below the batch-means noise floor.
    """

    __slots__ = (
        "low",
        "high",
        "num_bins",
        "_width",
        "_bins",
        "count",
        "_underflow",
        "_overflow",
    )

    def __init__(
        self, low: float = 0.0, high: float = 60.0, num_bins: int = 600
    ):
        if num_bins < 1:
            raise ValueError("num_bins must be positive")
        if not high > low:
            raise ValueError(f"need high > low, got [{low}, {high})")
        self.low = low
        self.high = high
        self.num_bins = num_bins
        self._width = (high - low) / num_bins
        self._bins = [0] * num_bins
        self.count = 0
        self._underflow = 0
        self._overflow = 0

    def record(self, value: float) -> None:
        """Count one observation into its bin."""
        self.count += 1
        if value < self.low:
            self._underflow += 1
        elif value >= self.high:
            self._overflow += 1
        else:
            self._bins[int((value - self.low) / self._width)] += 1

    def percentile(self, fraction: float) -> float:
        """Estimate the ``fraction`` quantile (e.g. 0.5 for the median).

        Returns 0.0 when empty.  Ranks that fall in the underflow
        (overflow) bucket clamp to ``low`` (``high``), so out-of-range
        mass degrades the estimate gracefully instead of silently
        vanishing.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if self.count == 0:
            return 0.0
        # Rank of the requested quantile among the counted observations.
        rank = fraction * self.count
        if rank <= self._underflow:
            return self.low
        cumulative = float(self._underflow)
        width = self._width
        for index, bin_count in enumerate(self._bins):
            if bin_count and cumulative + bin_count >= rank:
                within = (rank - cumulative) / bin_count
                return self.low + (index + within) * width
            cumulative += bin_count
        return self.high

    def reset(self) -> None:
        """Discard all observations (end of warmup)."""
        self._bins = [0] * self.num_bins
        self.count = 0
        self._underflow = 0
        self._overflow = 0

    def __repr__(self) -> str:
        return (
            f"<StreamingHistogram n={self.count}"
            f" range=[{self.low}, {self.high})>"
        )


# Student-t 97.5% quantiles for small degrees of freedom; beyond the table
# the normal quantile is close enough for reporting purposes.
_T_975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    15: 2.131, 20: 2.086, 30: 2.042,
}


def _t_quantile_975(dof: int) -> float:
    if dof <= 0:
        return math.inf
    if dof in _T_975:
        return _T_975[dof]
    for threshold in (30, 20, 15, 10):
        if dof >= threshold:
            return _T_975[threshold]
    return _T_975[min(_T_975, key=lambda k: abs(k - dof))]


class BatchMeans:
    """Fixed-batch-size batch means with a 95% confidence interval.

    Observations are grouped into consecutive batches of ``batch_size``;
    the batch averages are treated as (approximately) independent samples
    for the interval.  This is the standard steady-state output analysis
    used in the Carey/Livny line of simulation studies.
    """

    __slots__ = ("batch_size", "_pending_sum", "_pending_count", "_batches")

    def __init__(self, batch_size: int = 100):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.batch_size = batch_size
        self._pending_sum = 0.0
        self._pending_count = 0
        self._batches = Tally()

    def record(self, value: float) -> None:
        """Add one observation; completes a batch every ``batch_size``."""
        self._pending_sum += value
        self._pending_count += 1
        if self._pending_count == self.batch_size:
            self._batches.record(self._pending_sum / self.batch_size)
            self._pending_sum = 0.0
            self._pending_count = 0

    @property
    def num_batches(self) -> int:
        """Number of completed batches."""
        return self._batches.count

    @property
    def mean(self) -> float:
        """Mean of the completed batch means."""
        return self._batches.mean

    def half_width(self) -> Optional[float]:
        """95% CI half-width, or ``None`` with fewer than 2 batches."""
        if self._batches.count < 2:
            return None
        t_value = _t_quantile_975(self._batches.count - 1)
        return t_value * self._batches.stddev / math.sqrt(
            self._batches.count
        )

    def reset(self) -> None:
        """Discard all observations and batches (end of warmup)."""
        self._pending_sum = 0.0
        self._pending_count = 0
        self._batches.reset()
