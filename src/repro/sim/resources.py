"""Resource disciplines used by the paper's resource manager (§3.4).

Two physical resources are modeled:

* :class:`CPU` — one per node.  The paper specifies the service
  discipline exactly: *"first-come, first-served (FIFO) for message
  service and processor sharing for all other services, with message
  processing being higher priority."*  We implement processor sharing
  with the classic virtual-time construction, so every state transition
  costs O(log n) rather than O(n): the PS virtual clock ``V`` advances at
  rate ``1/n`` while ``n`` jobs share the processor, and a job arriving
  with ``s`` dedicated-seconds of work completes when ``V`` reaches its
  arrival value plus ``s``.  While a message is in service the PS clock
  freezes (messages have strict priority).

* :class:`Disk` — several per node.  Each disk serves its own queue
  FIFO, with *"disk writes given priority over disk reads"* so that the
  asynchronous post-commit write-back keeps up.  Access times are
  sampled uniformly from [MinDiskTime, MaxDiskTime].

Both resources fire a kernel :class:`~repro.sim.kernel.Event` on
completion and support cancellation of not-yet-finished work, which the
transaction manager uses when a cohort is aborted mid-request.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from enum import Enum
from itertools import count
from typing import Optional

from repro.sim.kernel import Environment, Event, ScheduledCallback
from repro.sim.stats import TimeWeighted

__all__ = ["CPU", "Disk", "DiskRequestKind"]

# Jobs whose PS target lies within this many virtual seconds of the
# current virtual clock are considered complete (floating-point slack).
_V_EPSILON = 1e-9


class _PsJob:
    """A processor-sharing job: completes when V reaches ``target_v``."""

    __slots__ = ("target_v", "event", "cancelled")

    def __init__(self, target_v: float, event: Event):
        self.target_v = target_v
        self.event = event
        self.cancelled = False


class CPU:
    """Processor with PS service and priority FIFO message service.

    Work is expressed in *instructions*; the CPU converts to seconds via
    its MIPS rating.  :meth:`execute` enters the processor-sharing class
    (transaction page processing, I/O initiation, process startup);
    :meth:`execute_message` enters the high-priority FIFO class (message
    protocol processing).
    """

    def __init__(self, env: Environment, mips: float, name: str = "cpu"):
        if mips <= 0:
            raise ValueError(f"CPU rate must be positive, got {mips}")
        self.env = env
        self.mips = mips
        self.name = name
        self._instructions_per_second = mips * 1e6
        # Processor-sharing state.
        self._v = 0.0
        self._v_updated_at = env.now
        self._ps_heap: list[tuple[float, int, _PsJob]] = []
        # Keyed by the Event object itself (identity hash).  Keying by
        # id(event) would invite the same collision-after-GC class of
        # bug as the old id(process)-keyed Timeout handles: CPython
        # recycles ids, so a stale entry could be claimed by an
        # unrelated event allocated at the same address.
        self._ps_jobs: dict[Event, _PsJob] = {}
        self._ps_active = 0
        self._ps_timer: Optional[ScheduledCallback] = None
        # Message (FIFO, high-priority) state.
        self._msg_queue: deque[tuple[float, Event]] = deque()
        self._msg_busy = False
        self._seq = count()
        # Statistics.
        self.busy_time = TimeWeighted(env.now, 0.0)
        self.message_busy_time = TimeWeighted(env.now, 0.0)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def execute(self, instructions: float) -> Event:
        """Submit processor-sharing work; the event fires on completion."""
        san = self.env._san
        if san is not None:
            san.write(("cpu", self))
        event = self.env.event()
        seconds = instructions / self._instructions_per_second
        if seconds <= 0.0:
            self.env.schedule_now(event.succeed)
            return event
        self._sync()
        job = _PsJob(self._v + seconds, event)
        heapq.heappush(self._ps_heap, (job.target_v, next(self._seq), job))
        self._ps_jobs[event] = job
        self._ps_active += 1
        self._update_busy_stat()
        self._reschedule_ps()
        return event

    def execute_message(self, instructions: float) -> Event:
        """Submit high-priority FIFO message-processing work."""
        san = self.env._san
        if san is not None:
            san.write(("cpu", self))
        event = self.env.event()
        seconds = instructions / self._instructions_per_second
        if seconds <= 0.0:
            self.env.schedule_now(event.succeed)
            return event
        self._msg_queue.append((seconds, event))
        if not self._msg_busy:
            self._start_next_message()
        return event

    def cancel(self, event: Event) -> bool:
        """Cancel a pending PS job; returns True if it was still pending.

        In-service message work cannot be cancelled (messages are tiny
        and non-preemptive); queued message work is not cancellable
        either, because nothing in the model ever abandons a message.
        """
        san = self.env._san
        if san is not None:
            san.write(("cpu", self))
        job = self._ps_jobs.pop(event, None)
        if job is None or job.cancelled:
            return False
        self._sync()
        job.cancelled = True
        self._ps_active -= 1
        self._update_busy_stat()
        self._reschedule_ps()
        return True

    @property
    def utilization_stat(self) -> TimeWeighted:
        """Time-weighted busy indicator (any class in service)."""
        return self.busy_time

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _ps_running(self) -> bool:
        return self._ps_active > 0 and not self._msg_busy

    def _sync(self) -> None:
        """Advance the PS virtual clock to the current time."""
        now = self.env.now
        if self._ps_active > 0 and not self._msg_busy:
            elapsed = now - self._v_updated_at
            if elapsed > 0.0:
                self._v += elapsed / self._ps_active
        self._v_updated_at = now

    def _update_busy_stat(self) -> None:
        now = self.env.now
        msg_busy = self._msg_busy
        busy = 1.0 if (msg_busy or self._ps_active > 0) else 0.0
        self.busy_time.update(now, busy)
        self.message_busy_time.update(now, 1.0 if msg_busy else 0.0)

    def _reschedule_ps(self) -> None:
        """Arm the timer for the next PS completion (if any)."""
        if self._ps_timer is not None:
            self._ps_timer.cancel()
            self._ps_timer = None
        if self._msg_busy:
            return
        self._discard_cancelled()
        if not self._ps_heap:
            return
        target_v = self._ps_heap[0][0]
        remaining_v = max(0.0, target_v - self._v)
        delay = remaining_v * self._ps_active
        self._ps_timer = self.env.schedule(delay, self._complete_ps)

    def _discard_cancelled(self) -> None:
        heap = self._ps_heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)

    def _complete_ps(self) -> None:
        self._ps_timer = None
        self._sync()
        self._discard_cancelled()
        heap = self._ps_heap
        if heap:
            # Snap the virtual clock so equal-target jobs finish together
            # despite floating-point drift.
            front_target = heap[0][0]
            if front_target > self._v:
                self._v = front_target
        threshold = self._v + _V_EPSILON
        heappop = heapq.heappop
        ps_jobs = self._ps_jobs
        while heap and heap[0][0] <= threshold:
            _target, _seq, job = heappop(heap)
            if job.cancelled:
                continue
            del ps_jobs[job.event]
            self._ps_active -= 1
            job.event.succeed()
        self._update_busy_stat()
        self._reschedule_ps()

    def _start_next_message(self) -> None:
        if not self._msg_queue:
            return
        # Freeze the PS clock before message service begins.
        self._sync()
        self._msg_busy = True
        self._update_busy_stat()
        if self._ps_timer is not None:
            self._ps_timer.cancel()
            self._ps_timer = None
        seconds, event = self._msg_queue.popleft()
        self.env.schedule(seconds, self._finish_message, event)

    def _finish_message(self, event: Event) -> None:
        self._sync()  # No-op for V (PS was frozen), refreshes timestamp.
        self._msg_busy = False
        event.succeed()
        if self._msg_queue:
            self._start_next_message()
        else:
            self._update_busy_stat()
            self._reschedule_ps()

    def __repr__(self) -> str:
        return (
            f"<CPU {self.name} mips={self.mips} active={self._ps_active}"
            f" msg_busy={self._msg_busy}>"
        )


class DiskRequestKind(Enum):
    """Disk request class; writes have non-preemptive priority."""

    READ = "read"
    WRITE = "write"


class _DiskRequest:
    __slots__ = ("kind", "event", "cancelled")

    def __init__(self, kind: DiskRequestKind, event: Event):
        self.kind = kind
        self.event = event
        self.cancelled = False


class Disk:
    """A single disk with FIFO service and write-over-read priority.

    Access times are sampled uniformly from ``[min_time, max_time]``
    using the supplied random stream, matching Table 3's
    MinDiskTime/MaxDiskTime parameters.
    """

    def __init__(
        self,
        env: Environment,
        min_time: float,
        max_time: float,
        stream: random.Random,
        name: str = "disk",
    ):
        if min_time < 0 or max_time < min_time:
            raise ValueError(
                f"invalid disk time range [{min_time}, {max_time}]"
            )
        self.env = env
        self.min_time = min_time
        self.max_time = max_time
        self.name = name
        self._stream = stream
        self._read_queue: deque[_DiskRequest] = deque()
        self._write_queue: deque[_DiskRequest] = deque()
        self._busy = False
        self.busy_time = TimeWeighted(env.now, 0.0)
        self.reads_served = 0
        self.writes_served = 0

    def access(self, kind: DiskRequestKind) -> Event:
        """Queue an access; the event fires when the transfer completes."""
        san = self.env._san
        if san is not None:
            san.write(("disk", self))
        request = _DiskRequest(kind, self.env.event())
        if kind is DiskRequestKind.WRITE:
            self._write_queue.append(request)
        else:
            self._read_queue.append(request)
        if not self._busy:
            self._start_next()
        return request.event

    def cancel(self, event: Event) -> bool:
        """Cancel a *queued* request; in-service transfers complete."""
        san = self.env._san
        if san is not None:
            san.write(("disk", self))
        for queue in (self._write_queue, self._read_queue):
            for request in queue:
                if request.event is event and not request.cancelled:
                    request.cancelled = True
                    return True
        return False

    @property
    def queue_length(self) -> int:
        """Number of requests waiting (not counting one in service)."""
        pending = sum(
            1 for r in self._write_queue if not r.cancelled
        ) + sum(1 for r in self._read_queue if not r.cancelled)
        return pending

    def _pop_next(self) -> Optional[_DiskRequest]:
        for queue in (self._write_queue, self._read_queue):
            while queue:
                request = queue.popleft()
                if not request.cancelled:
                    return request
        return None

    def _start_next(self) -> None:
        request = self._pop_next()
        if request is None:
            return
        self._busy = True
        self.busy_time.update(self.env.now, 1.0)
        service = self._stream.uniform(self.min_time, self.max_time)
        self.env.schedule(service, self._finish, request)

    def _finish(self, request: _DiskRequest) -> None:
        if request.kind is DiskRequestKind.WRITE:
            self.writes_served += 1
        else:
            self.reads_served += 1
        request.event.succeed()
        self._busy = False
        self.busy_time.update(self.env.now, 0.0)
        self._start_next()

    def __repr__(self) -> str:
        return (
            f"<Disk {self.name} busy={self._busy}"
            f" queued={self.queue_length}>"
        )
