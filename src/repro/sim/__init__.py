"""Discrete-event simulation substrate.

The paper's simulator was written in DeNet, a Modula-2 based simulation
language.  DeNet is unavailable (and so is SimPy in this offline
environment), so this subpackage implements the discrete-event kernel from
scratch: a generator-coroutine process model (:mod:`repro.sim.kernel`),
the resource disciplines the paper's resource manager needs — a
processor-sharing CPU with priority FIFO message service and FIFO disks
with write-over-read priority (:mod:`repro.sim.resources`) — independent
random-number streams (:mod:`repro.sim.streams`), and the statistics
collectors used by the metrics layer (:mod:`repro.sim.stats`).
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Mailbox,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import CPU, Disk, DiskRequestKind
from repro.sim.stats import BatchMeans, Counter, Tally, TimeWeighted
from repro.sim.streams import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "BatchMeans",
    "CPU",
    "Counter",
    "Disk",
    "DiskRequestKind",
    "Environment",
    "Event",
    "Interrupt",
    "Mailbox",
    "Process",
    "RandomStreams",
    "SimulationError",
    "Tally",
    "Timeout",
    "TimeWeighted",
]
