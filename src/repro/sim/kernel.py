"""A generator-coroutine discrete-event simulation kernel.

This is the substrate standing in for DeNet, the Modula-2 simulation
language the paper used.  The model is deliberately SimPy-like:

* An :class:`Environment` owns the simulation clock and the event heap.
* A *process* is a Python generator.  It advances by ``yield``-ing
  *waitables* — :class:`Timeout`, :class:`Event`, another
  :class:`Process`, or the combinators :class:`AllOf` / :class:`AnyOf` —
  and is resumed when the waitable fires.
* A process can be interrupted: :meth:`Process.interrupt` throws
  :class:`Interrupt` into the generator at its current yield point.  The
  transaction manager uses this to abort cohorts that are blocked inside
  the concurrency control manager or busy at a resource.

The kernel is intentionally small, but it is exact: events at equal
simulated times fire in schedule order (FIFO tie-breaking), canceled
timers never fire, and waitable bookkeeping is cleaned up on interrupt so
that no process is ever resumed twice.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Mailbox",
    "Process",
    "ScheduledCallback",
    "SimulationError",
    "Timeout",
    "Waitable",
]

#: The generator type driven by the kernel.  The values sent back into the
#: generator are whatever the waitable resolved to.
ProcessGenerator = Generator["Waitable", Any, Any]


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. waiting on a consumed event twice)."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    ``cause`` carries an arbitrary payload describing why the process was
    interrupted (the transaction manager passes the abort reason).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ScheduledCallback:
    """Handle for a callback placed on the event heap.

    The heap is append-only; cancellation just flips a flag and the entry
    is discarded when popped.  Positional arguments are stored on the
    handle and passed to the callback when it runs, so the hot scheduling
    paths (event delivery, timeout firing, process notification) need no
    per-event closure allocation.
    """

    __slots__ = ("time", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple = (),
    ):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call repeatedly."""
        self.cancelled = True


class Waitable:
    """Base class for things a process may ``yield``."""

    __slots__ = ()

    def _subscribe(self, process: "Process") -> None:
        raise NotImplementedError

    def _unsubscribe(self, process: "Process") -> None:
        raise NotImplementedError


class Event(Waitable):
    """A one-shot event that processes can wait on.

    The event starts pending; :meth:`succeed` fires it with a value and
    wakes every waiter.  Waiting on an already-fired event resumes the
    waiter immediately (on the next scheduler step at the current time).
    """

    __slots__ = ("env", "_fired", "_value", "_waiters")

    def __init__(self, env: "Environment"):
        self.env = env
        self._fired = False
        self._value: Any = None
        self._waiters: list[Process] = []

    @property
    def fired(self) -> bool:
        """Whether :meth:`succeed` has been called."""
        return self._fired

    @property
    def value(self) -> Any:
        """The value the event fired with (``None`` while pending)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event, waking all current waiters with ``value``.

        Delivery is *deferred* to the next scheduler step at the current
        time: firing an event never reenters the caller, so resource and
        concurrency control managers can fire grant events while
        iterating over their own state.
        """
        if self._fired:
            raise SimulationError("event already fired")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._deliver(process)
        return self

    def _deliver(self, process: "Process") -> None:
        self.env.schedule(0.0, self._deliver_step, process)

    def _deliver_step(self, process: "Process") -> None:
        # The waiter may have been interrupted (and moved on) between
        # the fire and this delivery; only resume if it still waits
        # on this event.
        if process._alive and process._waiting_on is self:
            process._resume(self._value)

    def _subscribe(self, process: "Process") -> None:
        if self._fired:
            self._deliver(process)
        else:
            self._waiters.append(process)

    def _unsubscribe(self, process: "Process") -> None:
        try:
            self._waiters.remove(process)
        except ValueError:
            pass


class Timeout(Waitable):
    """Delay waitable; resumes the waiting process after ``delay``."""

    __slots__ = ("env", "delay", "value", "_handles")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        self.env = env
        self.delay = delay
        self.value = value
        self._handles: dict[int, ScheduledCallback] = {}

    def _subscribe(self, process: "Process") -> None:
        handle = self.env.schedule(self.delay, self._fire, process)
        self._handles[id(process)] = handle

    def _fire(self, process: "Process") -> None:
        self._handles.pop(id(process), None)
        if process._alive and process._waiting_on is self:
            process._resume(self.value)

    def _unsubscribe(self, process: "Process") -> None:
        handle = self._handles.pop(id(process), None)
        if handle is not None:
            handle.cancel()


class Process(Waitable):
    """A running generator, driven by the environment.

    A process is itself waitable: yielding a process waits for its
    termination and resolves to its return value.  If the awaited process
    died with an unhandled exception, that exception is re-raised in the
    waiter.
    """

    __slots__ = (
        "env",
        "name",
        "_generator",
        "_alive",
        "_result",
        "_exception",
        "_waiting_on",
        "_watchers",
        "_resuming",
    )

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: str = "",
    ):
        self.env = env
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._alive = True
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._waiting_on: Optional[Waitable] = None
        self._watchers: list[Process] = []
        self._resuming = False
        env.schedule(0.0, self._start)

    def _start(self) -> None:
        self._step(self._generator.send, None)

    @property
    def alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return self._alive

    @property
    def result(self) -> Any:
        """Return value of the generator (``None`` while alive)."""
        return self._result

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        Interrupting a dead process is a no-op; that makes races between
        a cohort finishing and the coordinator aborting it harmless.
        """
        if not self._alive:
            return
        if self._waiting_on is not None:
            self._waiting_on._unsubscribe(self)
            self._waiting_on = None
            self._step(self._generator.throw, Interrupt(cause))
        else:
            # Not yet started (or mid-schedule): deliver the interrupt on
            # the next step at the current time.
            self.env.schedule(
                0.0, self._deliver_pending_interrupt, cause
            )

    def _deliver_pending_interrupt(self, cause: Any) -> None:
        if not self._alive:
            return
        if self._waiting_on is not None:
            self._waiting_on._unsubscribe(self)
            self._waiting_on = None
        self._step(self._generator.throw, Interrupt(cause))

    def _resume(self, value: Any) -> None:
        self._waiting_on = None
        self._step(self._generator.send, value)

    def _step(
        self, advance: Callable[[Any], Any], argument: Any
    ) -> None:
        if not self._alive:
            return
        try:
            target = advance(argument)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except Interrupt:
            # The process let the interrupt escape: treat as termination.
            self._finish(result=None)
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced to waiters
            self._finish(exception=exc)
            return
        if not isinstance(target, Waitable):
            self._finish(
                exception=SimulationError(
                    f"process {self.name!r} yielded a non-waitable: "
                    f"{target!r}"
                )
            )
            return
        self._waiting_on = target
        target._subscribe(self)

    def _finish(
        self,
        result: Any = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        self._alive = False
        self._result = result
        self._exception = exception
        watchers, self._watchers = self._watchers, []
        for watcher in watchers:
            self._notify(watcher)
        if exception is not None and not watchers:
            # Nobody is waiting: surface the failure loudly rather than
            # silently losing it.
            self.env._record_crash(self, exception)

    def _notify(self, watcher: "Process") -> None:
        self.env.schedule(0.0, self._notify_step, watcher)

    def _notify_step(self, watcher: "Process") -> None:
        if not (watcher._alive and watcher._waiting_on is self):
            return
        if self._exception is not None:
            watcher._waiting_on = None
            watcher._step(
                watcher._generator.throw, self._exception
            )
        else:
            watcher._resume(self._result)

    def _subscribe(self, process: "Process") -> None:
        if self._alive:
            self._watchers.append(process)
        else:
            self._notify(process)

    def _unsubscribe(self, process: "Process") -> None:
        try:
            self._watchers.remove(process)
        except ValueError:
            pass

    def __repr__(self) -> str:
        state = "alive" if self._alive else "done"
        return f"<Process {self.name} {state}>"


class _JoinWatcher:
    """Lightweight per-child subscriber used by :class:`AllOf`/:class:`AnyOf`.

    Earlier versions of the kernel spawned a collector :class:`Process`
    (a full generator) per combinator child; a sweep-heavy simulation
    allocates millions of those.  This shim implements just enough of
    the process protocol — ``_alive``/``_waiting_on`` for the deferred
    delivery checks, ``_resume`` for values, and the
    ``_generator.throw``/``_step`` pair for the exception path of
    :meth:`Process._notify_step` — to subscribe to a child directly.
    """

    __slots__ = ("owner", "index", "name", "_alive", "_waiting_on")

    def __init__(self, owner: "Waitable", index: int, child: Waitable):
        self.owner = owner
        self.index = index
        self.name = f"{type(owner).__name__.lower()}-watcher"
        self._alive = True
        self._waiting_on: Optional[Waitable] = child
        child._subscribe(self)

    @property
    def _generator(self) -> "_JoinWatcher":
        return self

    def throw(self, exception: BaseException) -> None:
        raise exception  # pragma: no cover - marker, never driven

    def _resume(self, value: Any) -> None:
        self._alive = False
        self._waiting_on = None
        self.owner._child_fired(self.index, value)

    def _step(self, advance: Callable[[Any], Any], argument: Any) -> None:
        # Only reached when a Process child died with an exception
        # (Process._notify_step calls watcher._step(throw, exc)).
        self._alive = False
        self._waiting_on = None
        self.owner._child_failed(self, argument)


class AllOf(Waitable):
    """Waits until every child waitable has fired; resolves to a list.

    Results are ordered as the children were given.  Children are
    watched inline via :class:`_JoinWatcher` — no collector process is
    spawned per child.
    """

    __slots__ = ("env", "_children", "_pending", "_results", "_proxy")

    def __init__(self, env: "Environment", children: Iterable[Waitable]):
        self.env = env
        self._children = list(children)
        self._pending = len(self._children)
        self._results: list[Any] = [None] * len(self._children)
        self._proxy = Event(env)
        if self._pending == 0:
            self._proxy.succeed([])
            return
        for index, child in enumerate(self._children):
            _JoinWatcher(self, index, child)

    def _child_fired(self, index: int, value: Any) -> None:
        self._results[index] = value
        self._pending -= 1
        if self._pending == 0 and not self._proxy.fired:
            self._proxy.succeed(list(self._results))

    def _child_failed(
        self, watcher: _JoinWatcher, exception: BaseException
    ) -> None:
        # Matches the old collector-process behaviour: the failure is
        # recorded as an unobserved crash and the join never fires.
        self.env._record_crash(watcher, exception)

    def _subscribe(self, process: "Process") -> None:
        self._proxy._subscribe(process)
        # Deferred deliveries check ``process._waiting_on is event``;
        # point the waiter at the proxy so the check matches.
        process._waiting_on = self._proxy

    def _unsubscribe(self, process: "Process") -> None:
        self._proxy._unsubscribe(process)


class AnyOf(Waitable):
    """Waits until the first child fires; resolves to ``(index, value)``."""

    __slots__ = ("env", "_proxy")

    def __init__(self, env: "Environment", children: Iterable[Waitable]):
        self.env = env
        self._proxy = Event(env)
        for index, child in enumerate(children):
            _JoinWatcher(self, index, child)

    def _child_fired(self, index: int, value: Any) -> None:
        if not self._proxy.fired:
            self._proxy.succeed((index, value))

    def _child_failed(
        self, watcher: _JoinWatcher, exception: BaseException
    ) -> None:
        self.env._record_crash(watcher, exception)

    def _subscribe(self, process: "Process") -> None:
        self._proxy._subscribe(process)
        # See AllOf._subscribe: align the waiter with the proxy event.
        process._waiting_on = self._proxy

    def _unsubscribe(self, process: "Process") -> None:
        self._proxy._unsubscribe(process)


class Mailbox:
    """An unbounded FIFO channel between processes.

    ``put`` never blocks; ``get`` returns an :class:`Event` that fires
    with the next item (immediately, via deferred delivery, if one is
    already queued).  The transaction manager uses one mailbox per
    cohort for two-phase-commit control messages.
    """

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: "Environment"):
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest pending getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)


class Environment:
    """Simulation clock, event heap, and process factory."""

    __slots__ = ("_now", "_heap", "_sequence", "_crashes")

    def __init__(self):
        self._now = 0.0
        self._heap: list[tuple[float, int, ScheduledCallback]] = []
        self._sequence = count()
        self._crashes: list[tuple[Process, BaseException]] = []

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def crashes(self) -> list[tuple["Process", BaseException]]:
        """Processes that died with unobserved exceptions."""
        return list(self._crashes)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledCallback:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        handle = ScheduledCallback(self._now + delay, callback, args)
        heapq.heappush(
            self._heap, (handle.time, next(self._sequence), handle)
        )
        return handle

    def process(
        self, generator: ProcessGenerator, name: str = ""
    ) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a delay waitable."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Create a fresh one-shot event."""
        return Event(self)

    def all_of(self, children: Iterable[Waitable]) -> AllOf:
        """Create a join waitable over ``children``."""
        return AllOf(self, children)

    def any_of(self, children: Iterable[Waitable]) -> AnyOf:
        """Create a first-of waitable over ``children``."""
        return AnyOf(self, children)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or the clock reaches ``until``.

        When stopped by ``until``, the clock is advanced exactly to
        ``until`` so that time-weighted statistics close their intervals
        at the requested horizon.
        """
        heap = self._heap
        while heap:
            time, _seq, handle = heap[0]
            if until is not None and time > until:
                self._now = until
                return
            heapq.heappop(heap)
            if handle.cancelled:
                continue
            self._now = time
            handle.callback(*handle.args)
        if until is not None and until > self._now:
            self._now = until

    def _record_crash(
        self, process: Process, exception: BaseException
    ) -> None:
        self._crashes.append((process, exception))

    def check_crashes(self) -> None:
        """Raise the first unobserved process failure, if any.

        The simulation driver calls this after :meth:`run` so that bugs
        in model code fail tests instead of silently skewing statistics.
        """
        if self._crashes:
            process, exception = self._crashes[0]
            raise SimulationError(
                f"process {process.name!r} crashed: {exception!r}"
            ) from exception
