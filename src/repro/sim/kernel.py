"""A generator-coroutine discrete-event simulation kernel.

This is the substrate standing in for DeNet, the Modula-2 simulation
language the paper used.  The model is deliberately SimPy-like:

* An :class:`Environment` owns the simulation clock and the event heap.
* A *process* is a Python generator.  It advances by ``yield``-ing
  *waitables* — :class:`Timeout`, :class:`Event`, another
  :class:`Process`, or the combinators :class:`AllOf` / :class:`AnyOf` —
  and is resumed when the waitable fires.
* A process can be interrupted: :meth:`Process.interrupt` throws
  :class:`Interrupt` into the generator at its current yield point.  The
  transaction manager uses this to abort cohorts that are blocked inside
  the concurrency control manager or busy at a resource.

The kernel is intentionally small, but it is exact: events at equal
simulated times fire in schedule order (FIFO tie-breaking), canceled
timers never fire, and waitable bookkeeping is cleaned up on interrupt so
that no process is ever resumed twice.

Hot-path design (the per-event cost caps every figure replication):

* **Same-time fast lane.**  Zero-delay work — deferred event
  deliveries, process-termination notifications, pending interrupts —
  is the majority of all scheduled callbacks, and none of it needs a
  priority queue: it always runs at the current timestamp.  Such
  callbacks go onto a FIFO ``deque`` instead of the heap.  FIFO
  tie-breaking is *provably preserved*: every callback (heap or fast
  lane) carries the global sequence number it was scheduled with, and
  the dispatch loop interleaves same-time heap entries with fast-lane
  entries in exact sequence order — bit-identical schedules to a
  heap-only kernel (``REPRO_KERNEL_FASTLANE=0`` forces the heap-only
  path; the determinism suite asserts identical metrics both ways).
* **Allocation-free heap entries.**  :class:`ScheduledCallback` handles
  order themselves via ``__lt__`` on ``(time, seq)`` slots and are
  pushed on the heap directly — no ``(time, seq, handle)`` wrapper
  tuple per event.
* **Pooled timeouts.**  :meth:`Environment.timeout` recycles fired
  :class:`Timeout` objects from a free list.  A timeout is single-use:
  once it has fired and resumed its waiter it may be handed out again,
  so holding on to a fired timeout object is not supported.
"""

from __future__ import annotations

import gc
import heapq
import os
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional, \
    Tuple

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Mailbox",
    "Process",
    "ScheduledCallback",
    "SimulationError",
    "Timeout",
    "Waitable",
]

#: The generator type driven by the kernel.  The values sent back into the
#: generator are whatever the waitable resolved to.
ProcessGenerator = Generator["Waitable", Any, Any]

#: Fired timeouts kept for reuse per environment (bounds pool memory).
_TIMEOUT_POOL_LIMIT = 128

#: Dispatched/reaped callback handles kept for reuse per environment.
_HANDLE_POOL_LIMIT = 512


def _fast_lane_default() -> bool:
    """Fast lane is on unless ``REPRO_KERNEL_FASTLANE=0`` disables it."""
    return os.environ.get("REPRO_KERNEL_FASTLANE", "1") != "0"


def _scheduler_default() -> str:
    """Scheduler choice: ``REPRO_KERNEL_SCHED=calendar`` (default) | ``heap``.

    ``calendar`` keeps per-event cost O(1) in the pending-event
    population (see :mod:`repro.sim.calendar`); ``heap`` is the
    original binary heap.  Both produce bit-identical schedules — the
    calendar queue pops in exact global ``(time, seq)`` order — so the
    toggle is a performance choice, verified by the determinism suite.
    """
    value = os.environ.get("REPRO_KERNEL_SCHED", "calendar")
    if value not in ("calendar", "heap"):
        raise ValueError(
            f"REPRO_KERNEL_SCHED={value!r}; expected 'calendar' or 'heap'"
        )
    return value


def _handle_seq(handle: "ScheduledCallback") -> int:
    """Sort key for perturbed-tie-break batches."""
    return handle.seq


def _gc_pause_default() -> bool:
    """GC is paused inside ``run()`` unless ``REPRO_KERNEL_GC_PAUSE=0``.

    The dispatch loop allocates at a steady, predictable rate; letting
    the cyclic collector interrupt it every few hundred allocations
    costs ~10-15% of wall time on event-dense workloads.  ``run()``
    therefore disables collection for the duration of the loop and
    restores it on exit — cyclic garbage (broken promptly by the kernel
    dropping generator references when processes finish) is reclaimed
    between run chunks instead of mid-dispatch.
    """
    return os.environ.get("REPRO_KERNEL_GC_PAUSE", "1") != "0"


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. waiting on a consumed event twice)."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    ``cause`` carries an arbitrary payload describing why the process was
    interrupted (the transaction manager passes the abort reason).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ScheduledCallback:
    """Handle for a callback placed on the event heap or fast lane.

    Scheduling is append-only; cancellation just flips a flag and the
    entry is discarded when popped.  Positional arguments are stored on
    the handle and passed to the callback when it runs, so the hot
    scheduling paths (event delivery, timeout firing, process
    notification) need no per-event closure allocation.  The handle is
    its own heap entry: ``__lt__`` orders by ``(time, seq)``, the same
    global FIFO tie-break a wrapper tuple used to provide, without
    allocating one per event.

    Ownership: once a handle has run (or was cancelled and reaped by the
    dispatch loop), it belongs to the kernel again and may be recycled
    for a future ``schedule`` call.  Callers must therefore drop their
    reference no later than the callback firing, and never call
    :meth:`cancel` on a handle whose callback has already run.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "ScheduledCallback") -> bool:
        # Exact comparison is sound here: both sides are stored
        # schedule times (never arithmetic results), and the seq
        # tie-break below handles the equal case explicitly.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call repeatedly."""
        self.cancelled = True


class Waitable:
    """Base class for things a process may ``yield``."""

    __slots__ = ()

    def _subscribe(self, process: "Process") -> None:
        raise NotImplementedError

    def _unsubscribe(self, process: "Process") -> None:
        raise NotImplementedError


class Event(Waitable):
    """A one-shot event that processes can wait on.

    The event starts pending; :meth:`succeed` fires it with a value and
    wakes every waiter.  Waiting on an already-fired event resumes the
    waiter immediately (on the next scheduler step at the current time).
    """

    __slots__ = ("env", "_fired", "_value", "_waiters")

    def __init__(self, env: "Environment"):
        self.env = env
        self._fired = False
        self._value: Any = None
        # None (no waiter) | a single waiter | a list of waiters.  The
        # single-waiter case is the overwhelming majority, so no list is
        # allocated for it.
        self._waiters: Any = None

    @property
    def fired(self) -> bool:
        """Whether :meth:`succeed` has been called."""
        return self._fired

    @property
    def value(self) -> Any:
        """The value the event fired with (``None`` while pending)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event, waking all current waiters with ``value``.

        Delivery is *deferred* to the next scheduler step at the current
        time: firing an event never reenters the caller, so resource and
        concurrency control managers can fire grant events while
        iterating over their own state.
        """
        if self._fired:
            raise SimulationError("event already fired")
        self._fired = True
        self._value = value
        waiters = self._waiters
        if waiters is not None:
            self._waiters = None
            if type(waiters) is list:
                schedule_now = self.env.schedule_now
                deliver = self._deliver_step
                for process in waiters:
                    schedule_now(deliver, process)
            else:
                self.env.schedule_now(self._deliver_step, waiters)
        return self

    def _deliver(self, process: "Process") -> None:
        self.env.schedule_now(self._deliver_step, process)

    def _deliver_step(self, process: "Process") -> None:
        # The waiter may have been interrupted (and moved on) between
        # the fire and this delivery; only resume if it still waits
        # on this event.
        if process._alive and process._waiting_on is self:
            process._resume(self._value)

    def _subscribe(self, process: "Process") -> None:
        if self._fired:
            self.env.schedule_now(self._deliver_step, process)
            return
        waiters = self._waiters
        if waiters is None:
            self._waiters = process
        elif type(waiters) is list:
            waiters.append(process)
        else:
            self._waiters = [waiters, process]

    def _unsubscribe(self, process: "Process") -> None:
        waiters = self._waiters
        if waiters is process:
            self._waiters = None
        elif type(waiters) is list:
            try:
                waiters.remove(process)
            except ValueError:
                pass


class Timeout(Waitable):
    """Delay waitable; resumes the waiting process after ``delay``.

    The scheduled-callback handle is stored per subscription — the
    common single-waiter case uses two slots, concurrent extra waiters
    (rare) go to an overflow list — so cancellation never depends on
    ``id(process)`` keys, which could collide after garbage collection
    reuses an id.  Fired timeouts created via
    :meth:`Environment.timeout` are recycled through the environment's
    pool; treat a timeout as single-use once it has fired.
    """

    __slots__ = ("env", "delay", "value", "_waiter", "_handle", "_extra")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        self.env = env
        self.delay = delay
        self.value = value
        self._waiter: Optional[Process] = None
        self._handle: Optional[ScheduledCallback] = None
        self._extra: Optional[
            List[Tuple["Process", ScheduledCallback]]
        ] = None

    def _subscribe(self, process: "Process") -> None:
        handle = self.env.schedule(self.delay, self._fire, process)
        if self._waiter is None:
            self._waiter = process
            self._handle = handle
        else:
            if self._extra is None:
                self._extra = []
            self._extra.append((process, handle))

    def _fire(self, process: "Process") -> None:
        if self._waiter is process:
            self._waiter = None
            self._handle = None
        elif self._extra:
            for index, (waiter, _handle) in enumerate(self._extra):
                if waiter is process:
                    del self._extra[index]
                    break
        if process._alive and process._waiting_on is self:
            process._resume(self.value)
        if self._waiter is None and not self._extra:
            self.env._recycle_timeout(self)

    def _unsubscribe(self, process: "Process") -> None:
        if self._waiter is process:
            assert self._handle is not None
            self._handle.cancel()
            self._waiter = None
            self._handle = None
            return
        if self._extra:
            for index, (waiter, handle) in enumerate(self._extra):
                if waiter is process:
                    handle.cancel()
                    del self._extra[index]
                    return


class Process(Waitable):
    """A running generator, driven by the environment.

    A process is itself waitable: yielding a process waits for its
    termination and resolves to its return value.  If the awaited process
    died with an unhandled exception, that exception is re-raised in the
    waiter.
    """

    __slots__ = (
        "env",
        "name",
        "_generator",
        "_alive",
        "_result",
        "_exception",
        "_waiting_on",
        "_watchers",
        "_resuming",
    )

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: str = "",
    ):
        self.env = env
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._alive = True
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._waiting_on: Optional[Waitable] = None
        self._watchers: list[Process] = []
        self._resuming = False
        san = env._san
        if san is not None:
            san.note_process(self)
        env.schedule_now(self._start)

    def _start(self) -> None:
        self._step(self._generator.send, None)

    @property
    def alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return self._alive

    @property
    def result(self) -> Any:
        """Return value of the generator (``None`` while alive)."""
        return self._result

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        Interrupting a dead process is a no-op; that makes races between
        a cohort finishing and the coordinator aborting it harmless.
        """
        if not self._alive:
            return
        if self._waiting_on is not None:
            self._waiting_on._unsubscribe(self)
            self._waiting_on = None
            self._step(self._generator.throw, Interrupt(cause))
        else:
            # Not yet started (or mid-schedule): deliver the interrupt on
            # the next step at the current time.
            self.env.schedule_now(
                self._deliver_pending_interrupt, cause
            )

    def _deliver_pending_interrupt(self, cause: Any) -> None:
        if not self._alive:
            return
        if self._waiting_on is not None:
            self._waiting_on._unsubscribe(self)
            self._waiting_on = None
        self._step(self._generator.throw, Interrupt(cause))

    def _resume(self, value: Any) -> None:
        self._waiting_on = None
        self._step(self._generator.send, value)

    def _step(
        self, advance: Callable[[Any], Any], argument: Any
    ) -> None:
        if not self._alive:
            return
        try:
            target = advance(argument)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except Interrupt:
            # The process let the interrupt escape: treat as termination.
            self._finish(result=None)
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced to waiters
            self._finish(exception=exc)
            return
        if not isinstance(target, Waitable):
            self._finish(
                exception=SimulationError(
                    f"process {self.name!r} yielded a non-waitable: "
                    f"{target!r}"
                )
            )
            return
        self._waiting_on = target
        target._subscribe(self)

    def _finish(
        self,
        result: Any = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        self._alive = False
        self._result = result
        self._exception = exception
        # Drop the generator: it closes the reference cycle through its
        # own frame (frame locals -> model objects -> this process), so
        # finished-transaction machinery is freed by reference counting
        # instead of waiting for the cyclic collector.
        self._generator = None  # type: ignore[assignment]
        watchers, self._watchers = self._watchers, []
        for watcher in watchers:
            self._notify(watcher)
        if exception is not None and not watchers:
            # Nobody is waiting: surface the failure loudly rather than
            # silently losing it.
            self.env._record_crash(self, exception)

    def _notify(self, watcher: "Process") -> None:
        self.env.schedule_now(self._notify_step, watcher)

    def _notify_step(self, watcher: "Process") -> None:
        if not (watcher._alive and watcher._waiting_on is self):
            return
        if self._exception is not None:
            watcher._waiting_on = None
            watcher._step(
                watcher._generator.throw, self._exception
            )
        else:
            watcher._resume(self._result)

    def _subscribe(self, process: "Process") -> None:
        if self._alive:
            self._watchers.append(process)
        else:
            self._notify(process)

    def _unsubscribe(self, process: "Process") -> None:
        try:
            self._watchers.remove(process)
        except ValueError:
            pass

    def __repr__(self) -> str:
        state = "alive" if self._alive else "done"
        return f"<Process {self.name} {state}>"


class _JoinWatcher:
    """Lightweight per-child subscriber used by :class:`AllOf`/:class:`AnyOf`.

    Earlier versions of the kernel spawned a collector :class:`Process`
    (a full generator) per combinator child; a sweep-heavy simulation
    allocates millions of those.  This shim implements just enough of
    the process protocol — ``_alive``/``_waiting_on`` for the deferred
    delivery checks, ``_resume`` for values, and the
    ``_generator.throw``/``_step`` pair for the exception path of
    :meth:`Process._notify_step` — to subscribe to a child directly.
    """

    __slots__ = ("owner", "index", "name", "_alive", "_waiting_on")

    def __init__(self, owner: "Waitable", index: int, child: Waitable):
        self.owner = owner
        self.index = index
        self.name = f"{type(owner).__name__.lower()}-watcher"
        self._alive = True
        self._waiting_on: Optional[Waitable] = child
        child._subscribe(self)

    @property
    def _generator(self) -> "_JoinWatcher":
        return self

    def throw(self, exception: BaseException) -> None:
        raise exception  # pragma: no cover - marker, never driven

    def _resume(self, value: Any) -> None:
        self._alive = False
        self._waiting_on = None
        self.owner._child_fired(self.index, value)

    def _step(self, advance: Callable[[Any], Any], argument: Any) -> None:
        # Only reached when a Process child died with an exception
        # (Process._notify_step calls watcher._step(throw, exc)).
        self._alive = False
        self._waiting_on = None
        self.owner._child_failed(self, argument)

    def detach(self) -> None:
        """Stop watching the child (used when another child won)."""
        if not self._alive:
            return
        self._alive = False
        child = self._waiting_on
        self._waiting_on = None
        if child is not None:
            child._unsubscribe(self)


class AllOf(Waitable):
    """Waits until every child waitable has fired; resolves to a list.

    Results are ordered as the children were given.  Children are
    watched inline via :class:`_JoinWatcher` — no collector process is
    spawned per child.
    """

    __slots__ = ("env", "_children", "_pending", "_results", "_proxy")

    def __init__(self, env: "Environment", children: Iterable[Waitable]):
        self.env = env
        self._children = list(children)
        self._pending = len(self._children)
        self._results: list[Any] = [None] * len(self._children)
        self._proxy = Event(env)
        if self._pending == 0:
            self._proxy.succeed([])
            return
        for index, child in enumerate(self._children):
            _JoinWatcher(self, index, child)

    def _child_fired(self, index: int, value: Any) -> None:
        self._results[index] = value
        self._pending -= 1
        if self._pending == 0 and not self._proxy.fired:
            self._proxy.succeed(list(self._results))

    def _child_failed(
        self, watcher: _JoinWatcher, exception: BaseException
    ) -> None:
        # Matches the old collector-process behaviour: the failure is
        # recorded as an unobserved crash and the join never fires.
        self.env._record_crash(watcher, exception)

    def _subscribe(self, process: "Process") -> None:
        self._proxy._subscribe(process)
        # Deferred deliveries check ``process._waiting_on is event``;
        # point the waiter at the proxy so the check matches.
        process._waiting_on = self._proxy

    def _unsubscribe(self, process: "Process") -> None:
        self._proxy._unsubscribe(process)


class AnyOf(Waitable):
    """Waits until the first child fires; resolves to ``(index, value)``.

    When the first child fires, the watchers on the remaining children
    are detached (their subscriptions cancelled), so losing children
    never accumulate dead subscribers and a losing timer's heap entry is
    cancelled rather than left to fire as a no-op.
    """

    __slots__ = ("env", "_proxy", "_watchers")

    def __init__(self, env: "Environment", children: Iterable[Waitable]):
        self.env = env
        self._proxy = Event(env)
        # Child firings are always delivered via the scheduler (never
        # synchronously during _subscribe), so the full watcher list is
        # in place before any _child_fired can run.
        self._watchers = [
            _JoinWatcher(self, index, child)
            for index, child in enumerate(children)
        ]

    def _child_fired(self, index: int, value: Any) -> None:
        if not self._proxy.fired:
            self._proxy.succeed((index, value))
            watchers, self._watchers = self._watchers, []
            for watcher in watchers:
                watcher.detach()

    def _child_failed(
        self, watcher: _JoinWatcher, exception: BaseException
    ) -> None:
        self.env._record_crash(watcher, exception)

    def _subscribe(self, process: "Process") -> None:
        self._proxy._subscribe(process)
        # See AllOf._subscribe: align the waiter with the proxy event.
        process._waiting_on = self._proxy

    def _unsubscribe(self, process: "Process") -> None:
        self._proxy._unsubscribe(process)


class Mailbox:
    """An unbounded FIFO channel between processes.

    ``put`` never blocks; ``get`` returns an :class:`Event` that fires
    with the next item (immediately, via deferred delivery, if one is
    already queued).  The transaction manager uses one mailbox per
    cohort for two-phase-commit control messages.
    """

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: "Environment"):
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest pending getter if any."""
        san = self.env._san
        if san is not None:
            san.write(("mailbox", self))
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next item."""
        san = self.env._san
        if san is not None:
            san.write(("mailbox", self))
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)


class Environment:
    """Simulation clock, event heap + fast lane, and process factory.

    ``now`` is a plain attribute (read-hot); treat it as read-only from
    model code.  ``dispatch_count`` counts callbacks actually run — the
    events/second benchmarks divide it by wall-clock time.
    """

    __slots__ = (
        "now",
        "_heap",
        "_cal",
        "_fast",
        "_seq",
        "_crashes",
        "_fast_enabled",
        "_gc_pause",
        "_timeout_pool",
        "_handle_pool",
        "_san",
        "_tiebreak",
        "dispatch_count",
    )

    def __init__(
        self,
        fast_lane: Optional[bool] = None,
        scheduler: Optional[str] = None,
        sanitizer: Optional[Any] = None,
        tiebreak: Optional[str] = None,
    ):
        self.now = 0.0
        self._heap: list[ScheduledCallback] = []
        if scheduler is None:
            scheduler = _scheduler_default()
        elif scheduler not in ("calendar", "heap"):
            raise ValueError(
                f"scheduler={scheduler!r}; expected 'calendar' or 'heap'"
            )
        if scheduler == "calendar":
            from repro.sim.calendar import CalendarQueue

            self._cal: Optional["CalendarQueue"] = CalendarQueue()
        else:
            self._cal = None
        self._fast: deque[ScheduledCallback] = deque()
        self._seq = 0
        self._crashes: list[tuple[Process, BaseException]] = []
        if fast_lane is None:
            fast_lane = _fast_lane_default()
        self._fast_enabled = fast_lane
        self._gc_pause = _gc_pause_default()
        self._timeout_pool: list[Timeout] = []
        self._handle_pool: list[ScheduledCallback] = []
        # Runtime sanitizer (repro.sanitizer); None on the clean path so
        # every hook is one attribute load and a predictable branch.
        if tiebreak not in (None, "fifo", "reverse-batch"):
            raise ValueError(
                f"tiebreak={tiebreak!r}; expected 'fifo' or 'reverse-batch'"
            )
        if tiebreak == "fifo":
            tiebreak = None
        if not sanitizer:
            # False is accepted as an explicit "off" (the differential
            # confirmer forces it for its perturbed re-run).
            sanitizer = None
        if sanitizer is not None and tiebreak is not None:
            raise SimulationError(
                "sanitizer and a non-FIFO tiebreak are mutually "
                "exclusive: the race detector's footprint model assumes "
                "the kernel's documented FIFO seq order"
            )
        self._san = sanitizer
        self._tiebreak = tiebreak
        if sanitizer is not None:
            sanitizer.attach_env(self)
        self.dispatch_count = 0

    @property
    def scheduler(self) -> str:
        """Active pending-event structure: ``"calendar"`` or ``"heap"``."""
        return "heap" if self._cal is None else "calendar"

    @property
    def crashes(self) -> list[tuple["Process", BaseException]]:
        """Processes that died with unobserved exceptions."""
        return list(self._crashes)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> ScheduledCallback:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        seq = self._seq
        self._seq = seq + 1
        san = self._san
        if san is not None:
            # Sanitized handles are never pooled: stable identity is
            # what makes lifecycle misuse detectable.
            handle = san.new_handle(self.now + delay, seq, callback, args)
        else:
            pool = self._handle_pool
            if pool:
                handle = pool.pop()
                handle.time = self.now + delay
                handle.seq = seq
                handle.callback = callback
                handle.args = args
                handle.cancelled = False
            else:
                handle = ScheduledCallback(
                    self.now + delay, seq, callback, args
                )
        if delay == 0.0 and self._fast_enabled:
            self._fast.append(handle)
        elif self._cal is not None:
            self._cal.push(handle)
        else:
            heapq.heappush(self._heap, handle)
        return handle

    def schedule_now(
        self, callback: Callable[..., None], *args: Any
    ) -> ScheduledCallback:
        """Run ``callback(*args)`` on the next step at the current time.

        The zero-delay fast path used by all deferred deliveries; it
        skips the negative-delay check and the heap.
        """
        seq = self._seq
        self._seq = seq + 1
        san = self._san
        if san is not None:
            handle = san.new_handle(self.now, seq, callback, args)
        else:
            pool = self._handle_pool
            if pool:
                handle = pool.pop()
                handle.time = self.now
                handle.seq = seq
                handle.callback = callback
                handle.args = args
                handle.cancelled = False
            else:
                handle = ScheduledCallback(self.now, seq, callback, args)
        if self._fast_enabled:
            self._fast.append(handle)
        elif self._cal is not None:
            self._cal.push(handle)
        else:
            heapq.heappush(self._heap, handle)
        return handle

    def process(
        self, generator: ProcessGenerator, name: str = ""
    ) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a delay waitable (recycling fired ones from the pool)."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(
                    f"negative timeout delay: {delay!r}"
                )
            timeout = pool.pop()
            timeout.delay = delay
            timeout.value = value
            return timeout
        return Timeout(self, delay, value)

    def _recycle_timeout(self, timeout: Timeout) -> None:
        if self._san is not None:
            # No pooling under the sanitizer: recycled waitables would
            # alias unrelated events and confuse lifecycle tracking.
            return
        pool = self._timeout_pool
        if len(pool) < _TIMEOUT_POOL_LIMIT:
            pool.append(timeout)

    def event(self) -> Event:
        """Create a fresh one-shot event."""
        return Event(self)

    def all_of(self, children: Iterable[Waitable]) -> AllOf:
        """Create a join waitable over ``children``."""
        return AllOf(self, children)

    def any_of(self, children: Iterable[Waitable]) -> AnyOf:
        """Create a first-of waitable over ``children``."""
        return AnyOf(self, children)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queues drain or the clock reaches ``until``.

        When stopped by ``until``, the clock is advanced exactly to
        ``until`` so that time-weighted statistics close their intervals
        at the requested horizon.  ``until`` must not lie in the past.

        Dispatch order: the earliest ``(time, seq)`` across the
        scheduler and the fast lane runs next.  Fast-lane entries
        always carry the current timestamp, so the comparison only
        needs the sequence number when a scheduler entry is due at the
        same instant.
        """
        if self._san is not None:
            self._run_sanitized(until)
            return
        if self._tiebreak is not None:
            self._run_perturbed(until)
            return
        if self._cal is not None:
            self._run_calendar(until)
            return
        heap = self._heap
        fast = self._fast
        heappop = heapq.heappop
        pool = self._handle_pool
        pool_append = pool.append
        now = self.now
        dispatched = self.dispatch_count
        pause_gc = self._gc_pause and gc.isenabled()
        if pause_gc:
            gc.disable()
        try:
            while True:
                if fast:
                    handle = fast[0]
                    if heap:
                        top = heap[0]
                        # Exact: heap entry times are stored schedule
                        # values and ``now`` was copied from one, so
                        # equality means "same instant" by construction.
                        if top.time == now and top.seq < handle.seq:
                            handle = top
                            heappop(heap)
                        else:
                            fast.popleft()
                    else:
                        fast.popleft()
                elif heap:
                    handle = heap[0]
                    if until is not None and handle.time > until:
                        self.now = until
                        return
                    heappop(heap)
                else:
                    break
                if handle.cancelled:
                    handle.callback = None
                    handle.args = ()
                    if len(pool) < _HANDLE_POOL_LIMIT:
                        pool_append(handle)
                    continue
                time = handle.time
                # Exact: avoids a redundant attribute write when the
                # clock has not moved; both values are stored schedule
                # times, never arithmetic results.
                if time != now:
                    now = time
                    self.now = time
                dispatched += 1
                handle.callback(*handle.args)
                # The handle is kernel-owned again (see
                # ScheduledCallback); recycle it.
                handle.callback = None
                handle.args = ()
                if len(pool) < _HANDLE_POOL_LIMIT:
                    pool_append(handle)
        finally:
            self.dispatch_count = dispatched
            if pause_gc:
                gc.enable()
        if until is not None and until > self.now:
            self.now = until

    def _run_calendar(self, until: Optional[float]) -> None:
        """The :meth:`run` dispatch loop over the calendar queue.

        Identical to the heap loop except that the pending-event
        structure is peeked/popped through :class:`CalendarQueue`,
        which yields the same exact ``(time, seq)`` order.
        """
        cal = self._cal
        assert cal is not None
        fast = self._fast
        peek = cal.peek
        pop = cal.pop
        pool = self._handle_pool
        pool_append = pool.append
        now = self.now
        dispatched = self.dispatch_count
        pause_gc = self._gc_pause and gc.isenabled()
        if pause_gc:
            gc.disable()
        try:
            while True:
                if fast:
                    handle = fast[0]
                    top = peek()
                    # Exact: scheduler entry times are stored schedule
                    # values and ``now`` was copied from one, so
                    # equality means "same instant" by construction.
                    if (
                        top is not None
                        and top.time == now
                        and top.seq < handle.seq
                    ):
                        handle = top
                        pop()
                    else:
                        fast.popleft()
                else:
                    handle = peek()
                    if handle is None:
                        break
                    if until is not None and handle.time > until:
                        self.now = until
                        return
                    pop()
                if handle.cancelled:
                    handle.callback = None
                    handle.args = ()
                    if len(pool) < _HANDLE_POOL_LIMIT:
                        pool_append(handle)
                    continue
                time = handle.time
                # Exact: see the heap loop.
                if time != now:
                    now = time
                    self.now = time
                dispatched += 1
                handle.callback(*handle.args)
                handle.callback = None
                handle.args = ()
                if len(pool) < _HANDLE_POOL_LIMIT:
                    pool_append(handle)
        finally:
            self.dispatch_count = dispatched
            if pause_gc:
                gc.enable()
        if until is not None and until > self.now:
            self.now = until

    def _run_sanitized(self, until: Optional[float]) -> None:
        """The :meth:`run` dispatch loop with sanitizer hooks.

        Semantically identical to the clean loops — same fast-lane
        interleave, same exact ``(time, seq)`` order over either
        scheduler — but with no handle/timeout pooling, no GC pause,
        and begin/end/advance/reap notifications into the sanitizer.
        It is a separate loop precisely so the clean paths carry zero
        per-event sanitizer cost.
        """
        san = self._san
        cal = self._cal
        heap = self._heap
        fast = self._fast
        heappop = heapq.heappop
        now = self.now
        dispatched = self.dispatch_count
        try:
            while True:
                if fast:
                    handle = fast[0]
                    if cal is not None:
                        top = cal.peek()
                    else:
                        top = heap[0] if heap else None
                    # Exact: see the clean loops — stored schedule
                    # times, equality means "same instant".
                    if (
                        top is not None
                        and top.time == now
                        and top.seq < handle.seq
                    ):
                        handle = top
                        if cal is not None:
                            cal.pop()
                        else:
                            heappop(heap)
                    else:
                        fast.popleft()
                else:
                    if cal is not None:
                        handle = cal.peek()
                        if handle is None:
                            break
                    elif heap:
                        handle = heap[0]
                    else:
                        break
                    if until is not None and handle.time > until:
                        self.now = until
                        return
                    if cal is not None:
                        cal.pop()
                    else:
                        heappop(heap)
                if handle.cancelled:
                    san.note_reaped(handle)
                    continue
                time = handle.time
                # Exact: see the clean loops.
                if time != now:
                    now = time
                    self.now = time
                    san.advance_time(time)
                dispatched += 1
                san.begin_event(handle)
                try:
                    handle.callback(*handle.args)
                finally:
                    san.end_event(handle)
        finally:
            self.dispatch_count = dispatched
        if until is not None and until > self.now:
            self.now = until

    def _run_perturbed(self, until: Optional[float]) -> None:
        """The :meth:`run` loop under the ``reverse-batch`` tie-break.

        Used by the sanitizer's differential confirmer: at each
        timestamp, the batch of currently-queued callbacks executes in
        *descending* seq order instead of FIFO.  Work a batch member
        schedules at the same timestamp lands in the *next* batch, so
        children still run after their parents (causality is
        preserved), every callback still runs exactly once at its
        scheduled time, and the loop terminates exactly like FIFO
        dispatch — only the order among causally-unrelated same-time
        events is permuted.  Deterministic: batches are sorted by seq.
        """
        cal = self._cal
        heap = self._heap
        fast = self._fast
        heappop = heapq.heappop
        pool = self._handle_pool
        pool_append = pool.append
        dispatched = self.dispatch_count
        pause_gc = self._gc_pause and gc.isenabled()
        if pause_gc:
            gc.disable()
        try:
            while True:
                if not fast:
                    top = cal.peek() if cal is not None else (
                        heap[0] if heap else None
                    )
                    if top is None:
                        break
                    if until is not None and top.time > until:
                        self.now = until
                        return
                    # Exact: stored schedule times (see clean loops).
                    if top.time != self.now:
                        self.now = top.time
                # Gather the whole batch due at the current instant.
                batch = list(fast)
                fast.clear()
                now = self.now
                while True:
                    top = cal.peek() if cal is not None else (
                        heap[0] if heap else None
                    )
                    # Exact: stored schedule times (see clean loops).
                    if top is None or top.time != now:
                        break
                    batch.append(top)
                    if cal is not None:
                        cal.pop()
                    else:
                        heappop(heap)
                batch.sort(key=_handle_seq, reverse=True)
                for handle in batch:
                    # Re-checked per handle: a batch member may cancel
                    # a later (lower-seq) member of the same batch.
                    if not handle.cancelled:
                        dispatched += 1
                        handle.callback(*handle.args)
                    handle.callback = None
                    handle.args = ()
                    if len(pool) < _HANDLE_POOL_LIMIT:
                        pool_append(handle)
        finally:
            self.dispatch_count = dispatched
            if pause_gc:
                gc.enable()
        if until is not None and until > self.now:
            self.now = until

    def _record_crash(
        self, process: Process, exception: BaseException
    ) -> None:
        self._crashes.append((process, exception))

    def check_crashes(self) -> None:
        """Raise the first unobserved process failure, if any.

        The simulation driver calls this after :meth:`run` so that bugs
        in model code fail tests instead of silently skewing statistics.
        """
        if self._crashes:
            process, exception = self._crashes[0]
            raise SimulationError(
                f"process {process.name!r} crashed: {exception!r}"
            ) from exception
