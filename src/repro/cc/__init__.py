"""Concurrency control managers (paper §2).

One subclass of :class:`~repro.cc.base.CCAlgorithm` per algorithm:

* ``2pl``   — distributed two-phase locking with local deadlock
  detection on block and a rotating "Snoop" global detector
  (:mod:`repro.cc.two_phase_locking`).
* ``ww``    — wound-wait locking, deadlock prevention via timestamps
  (:mod:`repro.cc.wound_wait`).
* ``bto``   — basic timestamp ordering with the Thomas write rule,
  queued prewrites and blocked readers
  (:mod:`repro.cc.timestamp_ordering`).
* ``opt``   — distributed optimistic certification at commit time
  (:mod:`repro.cc.optimistic`).
* ``no_dc`` — the paper's no-data-contention baseline: 2PL with an
  infinitely large database, i.e. every request granted
  (:mod:`repro.cc.no_dc`).

Two extension algorithms beyond the paper complete the blocking/restart
spectrum:

* ``wd`` — wait-die, wound-wait's sibling from [Rose78]
  (:mod:`repro.cc.wait_die`).
* ``ir`` — immediate-restart ("no waiting") locking from the ACL87
  companion study (:mod:`repro.cc.immediate_restart`).

:func:`make_algorithm` resolves an algorithm by name;
:func:`repro.cc.registry.register_algorithm` adds custom ones.
"""

from repro.cc.base import (
    CCAlgorithm,
    CCContext,
    CCResponse,
    NodeCCManager,
    RequestResult,
)
from repro.cc.registry import (
    ALGORITHM_NAMES,
    EXTENSION_NAMES,
    make_algorithm,
    register_algorithm,
)

__all__ = [
    "ALGORITHM_NAMES",
    "CCAlgorithm",
    "CCContext",
    "CCResponse",
    "EXTENSION_NAMES",
    "NodeCCManager",
    "RequestResult",
    "make_algorithm",
    "register_algorithm",
]
