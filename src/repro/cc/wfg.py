"""Waits-for graph analysis for deadlock detection (paper §2.2).

Used two ways by distributed 2PL:

* *Local detection* whenever a cohort blocks — a cycle search seeded at
  the newly blocked transaction over that node's edges.
* *Global detection* by the rotating "Snoop" — the union of all nodes'
  edges is scanned for cycles; each cycle is broken by aborting the
  youngest member (the one with the most recent initial startup time).

Edges are (waiter, holder) transaction pairs.  The functions are pure;
they operate on edge lists so they are directly testable and reusable by
both detectors.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.transaction import Transaction

__all__ = [
    "break_all_deadlocks",
    "build_adjacency",
    "find_cycle_from",
    "youngest",
]

Edge = Tuple[Transaction, Transaction]


def build_adjacency(
    edges: Iterable[Edge],
) -> Dict[Transaction, List[Transaction]]:
    """Adjacency map (waiter -> holders) from an edge list."""
    adjacency: Dict[Transaction, List[Transaction]] = {}
    for waiter, holder in edges:
        neighbors = adjacency.setdefault(waiter, [])
        if holder not in neighbors:
            neighbors.append(holder)
    return adjacency


def find_cycle_from(
    start: Transaction,
    adjacency: Dict[Transaction, List[Transaction]],
) -> Optional[List[Transaction]]:
    """A cycle through ``start``, or None.

    Iterative DFS along waits-for edges; returns the cycle's members
    (each waiting for the next, last waiting for ``start``).
    """
    stack: List[Tuple[Transaction, int]] = [(start, 0)]
    path: List[Transaction] = [start]
    on_path: Set[Transaction] = {start}
    visited: Set[Transaction] = {start}
    while stack:
        node, edge_index = stack[-1]
        neighbors = adjacency.get(node, [])
        if edge_index >= len(neighbors):
            stack.pop()
            path.pop()
            on_path.discard(node)
            continue
        stack[-1] = (node, edge_index + 1)
        neighbor = neighbors[edge_index]
        if neighbor is start:
            return list(path)
        if neighbor in on_path or neighbor in visited:
            continue
        visited.add(neighbor)
        on_path.add(neighbor)
        path.append(neighbor)
        stack.append((neighbor, 0))
    return None


def youngest(members: Sequence[Transaction]) -> Transaction:
    """The member with the most recent initial startup timestamp.

    Ties (e.g. transactions that have not been stamped yet, which all
    compare as ``(0.0, 0)``) break on transaction id rather than on the
    members' iteration order, so victim choice never depends on how
    the cycle happened to be walked.
    """
    return max(
        members,
        key=lambda txn: (txn.startup_timestamp or (0.0, 0), txn.tid),
    )


def break_all_deadlocks(
    edges: Iterable[Edge],
) -> List[Transaction]:
    """Victims whose removal makes the waits-for graph acyclic.

    Repeatedly finds a cycle, marks its youngest member as a victim,
    removes the victim's edges, and rescans — mirroring a detector that
    aborts one transaction per deadlock found.
    """
    remaining = list(edges)
    victims: List[Transaction] = []
    while True:
        adjacency = build_adjacency(remaining)
        cycle = _find_any_cycle(adjacency)
        if cycle is None:
            return victims
        victim = youngest(cycle)
        victims.append(victim)
        remaining = [
            (waiter, holder)
            for waiter, holder in remaining
            if waiter is not victim and holder is not victim
        ]


def _find_any_cycle(
    adjacency: Dict[Transaction, List[Transaction]],
) -> Optional[List[Transaction]]:
    visited: Set[Transaction] = set()
    for start in list(adjacency):
        if start in visited:
            continue
        cycle = _dfs_cycle(start, adjacency, visited)
        if cycle is not None:
            return cycle
    return None


def _dfs_cycle(
    start: Transaction,
    adjacency: Dict[Transaction, List[Transaction]],
    visited: Set[Transaction],
) -> Optional[List[Transaction]]:
    stack: List[Tuple[Transaction, int]] = [(start, 0)]
    path: List[Transaction] = [start]
    on_path: Set[Transaction] = {start}
    visited.add(start)
    while stack:
        node, edge_index = stack[-1]
        neighbors = adjacency.get(node, [])
        if edge_index >= len(neighbors):
            stack.pop()
            path.pop()
            on_path.discard(node)
            continue
        stack[-1] = (node, edge_index + 1)
        neighbor = neighbors[edge_index]
        if neighbor in on_path:
            cycle_start = path.index(neighbor)
            return path[cycle_start:]
        if neighbor in visited:
            continue
        visited.add(neighbor)
        on_path.add(neighbor)
        path.append(neighbor)
        stack.append((neighbor, 0))
    return None
