"""Immediate-restart locking (extension; the "no waiting" point of the
blocking/restart spectrum studied in Agrawal, Carey & Livny, TODS 1987).

The paper's four algorithms occupy different points between "resolve
conflicts by blocking" (2PL) and "resolve conflicts by aborting" (OPT).
The companion ACL87 study's *immediate-restart* policy is the extreme
abort end of the locking family: a lock request that cannot be granted
immediately is never queued — the requesting transaction aborts on the
spot and reruns after the usual restart delay.  Included as an
extension so the full spectrum can be swept with this simulator; it is
not one of the paper's algorithms.

No deadlocks are possible (nobody ever waits), so there is no detector
and no wound machinery; the rejection travels back through the same
local-reject path BTO uses.
"""

from __future__ import annotations

from repro.cc.base import CCAlgorithm, CCContext, CCResponse
from repro.cc.locking_common import LockingNodeManager
from repro.cc.locks import LockMode
from repro.core.database import PageId
from repro.core.transaction import Cohort

__all__ = ["ImmediateRestart", "ImmediateRestartNodeManager"]


class ImmediateRestartNodeManager(LockingNodeManager):
    """Lock manager that rejects instead of queueing."""

    upgrades_jump_queue = False

    def _acquire(
        self, cohort: Cohort, page: PageId, mode: LockMode
    ) -> CCResponse:
        granted, request, _conflicts = self.locks.acquire(
            cohort, page, mode
        )
        if granted:
            return CCResponse.granted()
        assert request is not None
        self.locks.cancel_request(request)
        return CCResponse.rejected()


class ImmediateRestart(CCAlgorithm):
    """Immediate-restart ("no waiting") locking."""

    name = "ir"

    def make_node_manager(
        self, node_id: int, context: CCContext
    ) -> ImmediateRestartNodeManager:
        """Create the immediate-restart manager for one node."""
        return ImmediateRestartNodeManager(node_id, context)
