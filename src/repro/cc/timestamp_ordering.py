"""Basic timestamp ordering (paper §2.4, [Bern80b, Bern81]).

Every page carries a read timestamp and a write timestamp; conflicting
accesses must occur in startup-timestamp order, with out-of-order
accesses aborted — except write-write conflicts, to which the Thomas
write rule applies.  The interaction with two-phase commit follows the
paper exactly:

* Writers keep updates in a private workspace until commit.  A granted
  write becomes a *prewrite* queued on the page in timestamp order;
  the writer itself never blocks.  Prewrites are applied (the page's
  write timestamp advances and the update becomes visible) when the
  writer commits.
* An accepted read that would see a pending earlier write must *block*
  until that write commits or aborts: "a write request locks out
  subsequent reads with later timestamps until the write actually
  becomes visible at commit time."

Rules, for a transaction with timestamp ``ts`` touching page ``x``:

* read:  reject if ``ts < wts(x)``; block while a prewrite with smaller
  timestamp is pending; otherwise grant and set
  ``rts(x) = max(rts(x), ts)``.
* write: reject if ``ts < rts(x)``; if ``ts < wts(x)`` grant but ignore
  the write (Thomas rule — nothing installed, no write-back I/O);
  otherwise queue a prewrite and grant.

A blocked reader whose blocking writers all resolve is re-evaluated: it
may then be granted, or rejected if a *newer* write committed in the
meantime.  Restarted transactions draw a fresh timestamp — their old
one is stale by construction, so rerunning with it would abort forever.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.cc.base import (
    CCAlgorithm,
    CCContext,
    CCResponse,
    NodeCCManager,
    RequestResult,
)
from repro.core.database import PageId
from repro.core.transaction import Cohort, Timestamp, Transaction, \
    make_timestamp

__all__ = ["BasicTimestampOrdering", "BtoNodeManager"]

#: Timestamp value older than any real one (pages start unwritten).
_ZERO_TS: Timestamp = (-1.0, -1)


class _BlockedRead:
    __slots__ = ("timestamp", "cohort", "event")

    def __init__(self, timestamp, cohort, event):
        self.timestamp = timestamp
        self.cohort = cohort
        self.event = event


class _PageRecord:
    __slots__ = ("rts", "wts", "pending", "blocked")

    def __init__(self):
        self.rts: Timestamp = _ZERO_TS
        self.wts: Timestamp = _ZERO_TS
        #: Prewrites pending commit, kept sorted by timestamp.
        self.pending: List[Tuple[Timestamp, Transaction]] = []
        self.blocked: List[_BlockedRead] = []


class _CohortState:
    """Per-cohort bookkeeping the manager needs for cleanup."""

    __slots__ = ("prewrites", "ignored_writes", "blocked_pages")

    def __init__(self):
        #: Pages on which this cohort queued a prewrite.
        self.prewrites: List[PageId] = []
        #: Pages whose write the Thomas rule discarded.
        self.ignored_writes: List[PageId] = []
        #: Pages on which this cohort currently has a blocked read.
        self.blocked_pages: List[PageId] = []


class BtoNodeManager(NodeCCManager):
    """Basic timestamp ordering node manager."""

    def __init__(self, node_id: int, context: CCContext):
        super().__init__(node_id, context)
        self._pages: Dict[PageId, _PageRecord] = {}

    def register_cohort(self, cohort: Cohort) -> None:
        """Attach fresh per-cohort bookkeeping."""
        cohort.cc_state = _CohortState()

    def _state(self, cohort: Cohort) -> _CohortState:
        if not isinstance(cohort.cc_state, _CohortState):
            cohort.cc_state = _CohortState()
        return cohort.cc_state

    def _record(self, page: PageId) -> _PageRecord:
        record = self._pages.get(page)
        if record is None:
            record = _PageRecord()
            self._pages[page] = record
        return record

    # ------------------------------------------------------------------
    # Access requests
    # ------------------------------------------------------------------

    def read_request(self, cohort: Cohort, page: PageId) -> CCResponse:
        """Timestamp-check a read; may block behind earlier prewrites."""
        ts = cohort.transaction.timestamp
        assert ts is not None
        record = self._record(page)
        if ts < record.wts:
            return CCResponse.rejected()
        if record.pending and record.pending[0][0] < ts:
            event = self.context.env.event()
            record.blocked.append(_BlockedRead(ts, cohort, event))
            self._state(cohort).blocked_pages.append(page)
            return CCResponse.blocked(event)
        if ts > record.rts:
            record.rts = ts
        return CCResponse.granted()

    def write_request(self, cohort: Cohort, page: PageId) -> CCResponse:
        """Timestamp-check a write; never blocks (prewrite queue)."""
        ts = cohort.transaction.timestamp
        assert ts is not None
        record = self._record(page)
        if ts < record.rts:
            return CCResponse.rejected()
        state = self._state(cohort)
        if ts < record.wts:
            # Thomas write rule: accept but discard the write.
            state.ignored_writes.append(page)
            return CCResponse.granted()
        bisect.insort(record.pending, (ts, cohort.transaction))
        state.prewrites.append(page)
        return CCResponse.granted()

    # ------------------------------------------------------------------
    # Commit protocol
    # ------------------------------------------------------------------

    def prepare(self, cohort: Cohort) -> bool:
        """All conflicts were resolved at access time; vote yes."""
        return True

    def commit(self, cohort: Cohort) -> List[PageId]:
        """Apply this cohort's prewrites and release blocked readers.

        A prewrite whose timestamp is older than the page's current
        write timestamp is discarded at install time (Thomas rule on a
        racing, later writer that committed first); it never becomes the
        current version, so it is excluded from the returned (and hence
        written-back) pages.
        """
        txn = cohort.transaction
        state = self._state(cohort)
        installed: List[PageId] = []
        for page in state.prewrites:
            record = self._pages.get(page)
            if record is None:
                continue
            removed = self._remove_pending(record, txn)
            if removed is not None and removed > record.wts:
                record.wts = removed
                installed.append(page)
            self._reevaluate_blocked(page, record)
        state.prewrites = []
        state.blocked_pages = []
        return installed

    def abort(self, cohort: Cohort) -> None:
        """Discard prewrites and queued blocked reads (idempotent)."""
        txn = cohort.transaction
        state = self._state(cohort)
        for page in state.prewrites:
            record = self._pages.get(page)
            if record is None:
                continue
            self._remove_pending(record, txn)
            self._reevaluate_blocked(page, record)
        state.prewrites = []
        for page in state.blocked_pages:
            record = self._pages.get(page)
            if record is None:
                continue
            record.blocked = [
                blocked
                for blocked in record.blocked
                if blocked.cohort is not cohort
            ]
        state.blocked_pages = []
        state.ignored_writes = []

    def crash_reset(self) -> None:
        """Drop page timestamps, pending prewrites, and blocked reads.

        Every blocked reader was a resident cohort and has already
        been interrupted by the injector, so no dangling events remain.
        """
        self._pages = {}

    def _remove_pending(
        self, record: _PageRecord, txn: Transaction
    ) -> Optional[Timestamp]:
        """Remove ``txn``'s prewrite; returns its timestamp if found."""
        for index, (ts, owner) in enumerate(record.pending):
            if owner is txn:
                del record.pending[index]
                return ts
        return None

    def _reevaluate_blocked(
        self, page: PageId, record: _PageRecord
    ) -> None:
        """Resolve blocked reads no longer behind a pending prewrite."""
        still_blocked: List[_BlockedRead] = []
        for blocked in record.blocked:
            if record.pending and record.pending[0][0] < blocked.timestamp:
                still_blocked.append(blocked)
                continue
            self._release_blocked_read(page, record, blocked)
        record.blocked = still_blocked

    def _release_blocked_read(
        self, page: PageId, record: _PageRecord, blocked: _BlockedRead
    ) -> None:
        state = self._state(blocked.cohort)
        if page in state.blocked_pages:
            state.blocked_pages.remove(page)
        if blocked.timestamp < record.wts:
            # A newer write became visible while we waited.
            blocked.event.succeed(RequestResult.REJECTED)
            return
        if blocked.timestamp > record.rts:
            record.rts = blocked.timestamp
        blocked.event.succeed(RequestResult.GRANTED)

    # ------------------------------------------------------------------
    # Introspection (test support)
    # ------------------------------------------------------------------

    def page_timestamps(
        self, page: PageId
    ) -> Tuple[Timestamp, Timestamp]:
        """(rts, wts) of a page; zero timestamps if untouched."""
        record = self._pages.get(page)
        if record is None:
            return (_ZERO_TS, _ZERO_TS)
        return (record.rts, record.wts)

    def pending_count(self, page: PageId) -> int:
        """Number of prewrites pending on ``page``."""
        record = self._pages.get(page)
        return len(record.pending) if record else 0


class BasicTimestampOrdering(CCAlgorithm):
    """Basic timestamp ordering with fresh timestamps per attempt."""

    name = "bto"

    def make_node_manager(
        self, node_id: int, context: CCContext
    ) -> BtoNodeManager:
        """Create the BTO manager for one node."""
        return BtoNodeManager(node_id, context)

    def assign_timestamps(
        self, transaction: Transaction, now: float
    ) -> None:
        """Fresh ordering timestamp every attempt; startup kept."""
        if transaction.startup_timestamp is None:
            transaction.startup_timestamp = make_timestamp(now)
            transaction.timestamp = transaction.startup_timestamp
        else:
            transaction.timestamp = make_timestamp(now)
