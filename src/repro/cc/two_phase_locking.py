"""Distributed two-phase locking (paper §2.2).

Cohorts lock dynamically as they execute — shared locks for reads,
converted to exclusive for updates — and hold all locks until the
transaction commits or aborts.  Deadlocks are handled at two levels:

* **Local detection on block.**  Whenever a cohort blocks, the node's
  waits-for graph is searched for a cycle through the blocker; the
  youngest transaction in the cycle (most recent initial startup time)
  is aborted.

* **Global "Snoop" detection.**  A Snoop responsibility rotates among
  the processing nodes round-robin, as in Distributed INGRES.  After
  holding the role for ``DetectionInterval`` seconds, the Snoop node
  gathers waits-for edges from every other node (one request and one
  reply message per node, paying normal message CPU costs), unions them
  with its own, breaks every cycle found by aborting the youngest
  member, and passes the role on.

Victim aborts travel through the transaction manager's abort-request
path: a message to the victim's coordinator at the host, then the
ordinary abort protocol.
"""

from __future__ import annotations

from typing import List

from repro.cc.base import CCAlgorithm, CCContext
from repro.cc.locking_common import LockingNodeManager
from repro.cc.locks import LockRequest
from repro.cc.wfg import break_all_deadlocks, build_adjacency, \
    find_cycle_from, youngest
from repro.core.transaction import Transaction

__all__ = ["TwoPhaseLocking", "TwoPhaseLockingNodeManager"]


class TwoPhaseLockingNodeManager(LockingNodeManager):
    """2PL node manager: block on conflict, detect local deadlocks."""

    upgrades_jump_queue = True

    def on_conflict(
        self,
        request: LockRequest,
        conflict_set: List[Transaction],
    ) -> None:
        """Local deadlock detection, run whenever a cohort blocks.

        Every new wait edge touches the blocker (including the
        behind-edges an upgrade creates by jumping the queue), so any
        cycle this block just closed passes through the blocker.
        Several distinct cycles can close at once, so detection
        iterates: find a cycle through the blocker, doom its youngest
        member, treat the doomed transaction's edges as already gone,
        and rescan until no cycle remains.  Transactions that are
        already aborting are likewise excluded — their locks are about
        to be released, so cycles through them resolve themselves.
        """
        me = request.transaction
        if not conflict_set:
            # Blocked purely behind compatible waiters (e.g. a shared
            # request behind a shared queue): no outgoing wait edge from
            # the blocker, so no cycle can pass through it — skip the
            # full waits-for scan.
            return
        doomed: set = set()
        while me not in doomed:
            edges = [
                (waiter, holder)
                for waiter, holder in self.locks.waits_for_edges()
                if waiter not in doomed
                and holder not in doomed
                and not waiter.abort_pending
                and not holder.abort_pending
            ]
            cycle = find_cycle_from(me, build_adjacency(edges))
            if cycle is None:
                return
            victim = youngest(cycle)
            doomed.add(victim)
            self.context.request_abort(
                victim, "local-deadlock", self.node_id
            )


class TwoPhaseLocking(CCAlgorithm):
    """Distributed 2PL with the rotating Snoop global detector."""

    name = "2pl"

    def make_node_manager(
        self, node_id: int, context: CCContext
    ) -> TwoPhaseLockingNodeManager:
        """Create the lock-based manager for one node."""
        return TwoPhaseLockingNodeManager(node_id, context)

    def start_global(self, simulation) -> None:
        """Launch the Snoop process (only useful with 2+ nodes)."""
        if simulation.config.num_proc_nodes < 2:
            return
        simulation.env.process(
            self._snoop(simulation), name="snoop"
        )

    def _snoop(self, simulation):
        """The rotating global deadlock detector."""
        env = simulation.env
        network = simulation.network
        managers = simulation.node_cc_managers
        context = simulation.cc_context
        interval = simulation.config.detection_interval
        num_nodes = len(managers)
        snoop_node = 0
        while True:
            yield env.timeout(interval)
            edges = list(managers[snoop_node].waits_for_edges())
            replies = []
            for node in range(num_nodes):
                if node == snoop_node:
                    continue
                replies.append(
                    self._gather_from(
                        env, network, managers, snoop_node, node
                    )
                )
            if replies:
                reply_lists = yield env.all_of(replies)
                for node_edges in reply_lists:
                    edges.extend(node_edges)
            # Transactions already marked for abort are as good as
            # gone: their locks release when the abort message lands,
            # so cycles through them need no (second) victim.
            edges = [
                (waiter, holder)
                for waiter, holder in edges
                if not waiter.abort_pending
                and not holder.abort_pending
            ]
            for victim in break_all_deadlocks(edges):
                if victim.abortable:
                    context.request_abort(
                        victim, "global-deadlock", snoop_node
                    )
            snoop_node = (snoop_node + 1) % num_nodes

    def _gather_from(self, env, network, managers, snoop_node, node):
        """Request + reply message pair collecting one node's edges.

        Under fault injection either message can be dropped (lossy
        link, endpoint down); the ``on_drop`` hooks resolve the reply
        with no edges so the Snoop round always completes — a missed
        deadlock is re-detected next interval.
        """
        reply_event = env.event()

        def deliver_reply(edges) -> None:
            if not reply_event.fired:
                reply_event.succeed(edges)

        def reply_dropped(_payload) -> None:
            if not reply_event.fired:
                reply_event.succeed([])

        def deliver_request(_payload) -> None:
            # Snapshot the node's edges when the request arrives and
            # ship them back to the Snoop node.
            edges = managers[node].waits_for_edges()
            network.post(
                node,
                snoop_node,
                deliver_reply,
                edges,
                on_drop=reply_dropped,
            )

        network.post(
            snoop_node,
            node,
            deliver_request,
            on_drop=reply_dropped,
        )
        return reply_event
