"""The NO_DC (no data contention) baseline (paper §4.2).

"The NO_DC results, which can be viewed as results for 2PL with an
infinitely large database, show the performance that would be obtained
if data contention were not a factor."  Every request is granted
immediately, transactions never block on data, and no aborts ever occur
— resource contention (CPUs, disks, messages) is the only limit.
"""

from __future__ import annotations

from repro.cc.base import (
    CCAlgorithm,
    CCContext,
    CCResponse,
    NodeCCManager,
)
from repro.core.database import PageId
from repro.core.transaction import Cohort

__all__ = ["NoDataContention", "NoDcNodeManager"]


class NoDcNodeManager(NodeCCManager):
    """Grants everything; pure resource-contention baseline."""

    def read_request(self, cohort: Cohort, page: PageId) -> CCResponse:
        """Always granted."""
        return CCResponse.granted()

    def write_request(self, cohort: Cohort, page: PageId) -> CCResponse:
        """Always granted."""
        return CCResponse.granted()

    def prepare(self, cohort: Cohort) -> bool:
        """Always votes yes."""
        return True

    def commit(self, cohort: Cohort):
        """Nothing to release; all updates install."""
        return cohort.updated_pages

    def abort(self, cohort: Cohort) -> None:
        """Nothing to clean up."""

    def crash_reset(self) -> None:
        """Deliberate no-op: NO_DC tracks no per-node CC state (no
        lock tables, no timestamps), so a crash has nothing to shed.
        Explicit rather than inherited so the fault-recovery contract
        is a stated decision, not an accident."""


class NoDataContention(CCAlgorithm):
    """The infinite-database 2PL baseline."""

    name = "no_dc"

    def make_node_manager(
        self, node_id: int, context: CCContext
    ) -> NoDcNodeManager:
        """Create the pass-through manager for one node."""
        return NoDcNodeManager(node_id, context)
