"""Name-based registry of concurrency control algorithms."""

from __future__ import annotations

from typing import Callable, Dict

from repro.cc.base import CCAlgorithm
from repro.cc.immediate_restart import ImmediateRestart
from repro.cc.mvcc import MultiVersionCC
from repro.cc.no_dc import NoDataContention
from repro.cc.optimistic import DistributedCertification
from repro.cc.timestamp_ordering import BasicTimestampOrdering
from repro.cc.two_phase_locking import TwoPhaseLocking
from repro.cc.wait_die import WaitDie
from repro.cc.wound_wait import WoundWait
from repro.router.dispatch import RoutedCC

__all__ = [
    "ALGORITHM_NAMES",
    "EXTENSION_NAMES",
    "MODERN_NAMES",
    "make_algorithm",
    "register_algorithm",
]

_FACTORIES: Dict[str, Callable[[], CCAlgorithm]] = {
    "2pl": TwoPhaseLocking,
    "ww": WoundWait,
    "bto": BasicTimestampOrdering,
    "opt": DistributedCertification,
    "no_dc": NoDataContention,
    # Extensions beyond the paper's four (see their module docstrings).
    "wd": WaitDie,
    "ir": ImmediateRestart,
    # Modern fleet (ROADMAP item 2): snapshot-isolation MVCC and the
    # predictive transaction router dispatching over the whole fleet.
    "mvcc": MultiVersionCC,
    "router": RoutedCC,
}

#: The paper's algorithm set, in its customary presentation order.
ALGORITHM_NAMES = ("2pl", "ww", "bto", "opt", "no_dc")

#: Extension algorithms shipped with the library but not in the paper.
EXTENSION_NAMES = ("wd", "ir")

#: Post-paper additions: the MVCC snapshot algorithm and the router.
MODERN_NAMES = ("mvcc", "router")


def make_algorithm(name: str) -> CCAlgorithm:
    """Instantiate the algorithm registered under ``name``.

    Matching is case-insensitive and tolerates the paper's spellings
    ("2PL", "WW", "BTO", "OPT", "NO_DC", "NODC").
    """
    key = name.strip().lower().replace("-", "_")
    if key == "nodc":
        key = "no_dc"
    factory = _FACTORIES.get(key)
    if factory is None:
        known = ", ".join(sorted(_FACTORIES))
        raise ValueError(
            f"unknown concurrency control algorithm {name!r}; "
            f"known: {known}"
        )
    return factory()


def register_algorithm(
    name: str, factory: Callable[[], CCAlgorithm]
) -> None:
    """Register a custom algorithm (for extensions and tests).

    Names are normalized the same way :func:`make_algorithm` does, so
    the registered algorithm resolves under every tolerated spelling.
    """
    key = name.strip().lower().replace("-", "_")
    if key in _FACTORIES:
        raise ValueError(f"algorithm {name!r} already registered")
    _FACTORIES[key] = factory
