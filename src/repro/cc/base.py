"""Abstract interface every concurrency control algorithm implements.

The concurrency control manager is *"the only module that must change
from algorithm to algorithm"* (paper §3.6).  This module pins down that
boundary:

* :class:`NodeCCManager` — one instance per processing node, handling
  the read/write access requests, commit permission (prepare vote),
  commit, and abort cleanup for the cohorts running at that node.
* :class:`CCAlgorithm` — the per-simulation factory.  It creates node
  managers, owns algorithm-global machinery (2PL's Snoop detector), and
  encodes the algorithm's *timestamp policy* across restarts.
* :class:`CCContext` — what managers may see and do: the simulation
  clock and the transaction manager's abort-request entry point.

Access requests resolve to one of three outcomes
(:class:`RequestResult`): granted immediately, blocked (the cohort must
wait on the returned event, which later fires with GRANTED or REJECTED),
or rejected (the transaction must abort and restart).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.core.database import PageId
from repro.core.transaction import Cohort, Timestamp, Transaction, \
    make_timestamp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Environment, Event

__all__ = [
    "CCAlgorithm",
    "CCContext",
    "CCResponse",
    "NodeCCManager",
    "RequestResult",
]


class RequestResult(Enum):
    """Outcome of a concurrency control access request."""

    GRANTED = "granted"
    BLOCKED = "blocked"
    REJECTED = "rejected"


@dataclass
class CCResponse:
    """Response to a read/write request.

    When ``result`` is BLOCKED, ``event`` fires later with a
    :class:`RequestResult` value of GRANTED or REJECTED.
    """

    result: RequestResult
    event: Optional["Event"] = None

    @classmethod
    def granted(cls) -> "CCResponse":
        """An immediately granted request."""
        return cls(RequestResult.GRANTED)

    @classmethod
    def rejected(cls) -> "CCResponse":
        """An immediately rejected request (transaction must abort)."""
        return cls(RequestResult.REJECTED)

    @classmethod
    def blocked(cls, event: "Event") -> "CCResponse":
        """A blocked request; ``event`` resolves it later."""
        return cls(RequestResult.BLOCKED, event)


class CCContext:
    """Hooks the CC managers get from the rest of the simulation.

    ``request_abort(transaction, reason, from_node)`` asks the
    transaction manager to abort a transaction; the notification travels
    as a message from ``from_node`` to the transaction's coordinator at
    the host, so wounds and deadlock-victim kills pay realistic
    communication costs.
    """

    def __init__(
        self,
        env: "Environment",
        request_abort: Callable[[Transaction, str, int], None],
        detection_interval: float = 1.0,
    ):
        self.env = env
        self.request_abort = request_abort
        self.detection_interval = detection_interval

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.env.now


class NodeCCManager(ABC):
    """Per-node concurrency control manager."""

    def __init__(self, node_id: int, context: CCContext):
        self.node_id = node_id
        self.context = context

    @abstractmethod
    def read_request(self, cohort: Cohort, page: PageId) -> CCResponse:
        """Request permission to read ``page``."""

    @abstractmethod
    def write_request(self, cohort: Cohort, page: PageId) -> CCResponse:
        """Request permission to (later) write ``page``.

        The cohort has always read the page first, so locking
        algorithms treat this as a read-to-write upgrade.
        """

    @abstractmethod
    def prepare(self, cohort: Cohort) -> bool:
        """Phase-one vote: may this cohort's work commit?"""

    @abstractmethod
    def commit(self, cohort: Cohort) -> List[PageId]:
        """Phase-two commit: make writes visible, release resources.

        Returns the pages whose updates were actually *installed* —
        these are the pages written back to disk afterwards.  Usually
        all of the cohort's updated pages; BTO excludes writes the
        Thomas write rule discarded (at request time or at install
        time), since they never become the current version.
        """

    @abstractmethod
    def abort(self, cohort: Cohort) -> None:
        """Abort cleanup: drop queued requests, locks, and workspaces.

        Must be idempotent — the abort protocol may race with a cohort
        that already failed locally.
        """

    def register_cohort(self, cohort: Cohort) -> None:
        """Called when a cohort starts executing at this node."""

    def crash_reset(self) -> None:
        """Discard all volatile CC state after a node crash.

        Fail-stop semantics: lock tables, timestamp tables, and
        pending certification workspaces do not survive a crash; the
        fault injector calls this after interrupting every resident
        cohort.  Stateless managers inherit this no-op.
        """

    def waits_for_edges(
        self,
    ) -> List[Tuple[Transaction, Transaction]]:
        """(waiter, holder) edges for global deadlock detection."""
        return []


class CCAlgorithm(ABC):
    """Factory and algorithm-global behaviour."""

    #: Registry key, e.g. "2pl".
    name: str = ""

    @abstractmethod
    def make_node_manager(
        self, node_id: int, context: CCContext
    ) -> NodeCCManager:
        """Create the manager for one processing node."""

    def assign_timestamps(
        self, transaction: Transaction, now: float
    ) -> None:
        """Set the transaction's timestamps for a (re)start.

        Default policy: the *initial startup timestamp* is minted once
        and survives restarts (2PL uses it to pick deadlock victims,
        wound-wait orders by it), while ``timestamp`` simply mirrors it.
        BTO overrides this to draw a fresh ordering timestamp per
        attempt, since an aborted BTO transaction's old timestamp is
        stale by construction.
        """
        if transaction.startup_timestamp is None:
            transaction.startup_timestamp = make_timestamp(now)
        transaction.timestamp = transaction.startup_timestamp

    def assign_commit_timestamp(
        self, transaction: Transaction, now: float
    ) -> Timestamp:
        """Mint the globally unique timestamp used during commit (OPT)."""
        stamp = make_timestamp(now)
        transaction.commit_timestamp = stamp
        return stamp

    def start_global(self, simulation) -> None:
        """Start algorithm-global processes (e.g. 2PL's Snoop)."""

    def bind(self, config, streams) -> None:
        """Late-bind the simulation's config and random streams.

        Called once by ``Simulation.__init__`` right after the
        algorithm is constructed, before any node manager exists.
        Composite algorithms (the transaction router) use this to
        build their children and seed their decision streams; the
        paper's algorithms inherit this no-op.
        """

    def on_commit(
        self, transaction: Transaction, response_time: float, now: float
    ) -> None:
        """Observe a commit (router reward feedback; default no-op)."""

    def on_abort(
        self, transaction: Transaction, reason: str, now: float
    ) -> None:
        """Observe an abort (router reward feedback; default no-op)."""

    def __repr__(self) -> str:
        return f"<CCAlgorithm {self.name}>"
