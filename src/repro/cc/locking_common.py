"""Shared node-manager logic for the locking algorithms (2PL, WW).

Both locking algorithms behave identically except for what happens when
a request must wait: 2PL blocks and checks for deadlocks, wound-wait
wounds younger conflicting transactions first.  That difference is the
:meth:`LockingNodeManager.on_conflict` hook.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cc.base import CCContext, CCResponse, NodeCCManager
from repro.cc.locks import LockManager, LockMode, LockRequest
from repro.core.database import PageId
from repro.core.transaction import Cohort, Transaction

__all__ = ["LockingNodeManager"]


class LockingNodeManager(NodeCCManager):
    """Lock-table-backed CC manager; subclasses set the wait policy."""

    #: Whether read-to-write conversions are placed ahead of ordinary
    #: waiters.  2PL says yes (usual lock manager practice); wound-wait
    #: says no, which together with wounding keeps every wait edge
    #: pointing from a younger to an older transaction.
    upgrades_jump_queue = True

    def __init__(self, node_id: int, context: CCContext):
        super().__init__(node_id, context)
        self.locks = LockManager(
            context.env, upgrades_jump_queue=self.upgrades_jump_queue
        )

    def read_request(self, cohort: Cohort, page: PageId) -> CCResponse:
        """Acquire a shared lock, blocking on conflict."""
        return self._acquire(cohort, page, LockMode.SHARED)

    def write_request(self, cohort: Cohort, page: PageId) -> CCResponse:
        """Convert the read lock to a write lock, blocking on conflict."""
        return self._acquire(cohort, page, LockMode.EXCLUSIVE)

    def _acquire(
        self, cohort: Cohort, page: PageId, mode: LockMode
    ) -> CCResponse:
        granted, request, conflict_set = self.locks.acquire(
            cohort, page, mode
        )
        if granted:
            return CCResponse.granted()
        assert request is not None
        self.on_conflict(request, conflict_set)
        return CCResponse.blocked(request.event)

    def on_conflict(
        self,
        request: LockRequest,
        conflict_set: List[Transaction],
    ) -> None:
        """Policy hook invoked after a request has been queued."""

    def prepare(self, cohort: Cohort) -> bool:
        """Locking validates during execution; always vote yes."""
        return True

    def commit(self, cohort: Cohort) -> List[PageId]:
        """Release all locks held at this node; all updates install."""
        self.locks.release_all(cohort.transaction)
        return cohort.updated_pages

    def abort(self, cohort: Cohort) -> None:
        """Release locks and drop any queued request (idempotent)."""
        self.locks.release_all(cohort.transaction)

    def crash_reset(self) -> None:
        """Drop the whole lock table (all residents were interrupted)."""
        self.locks = LockManager(
            self.context.env, upgrades_jump_queue=self.upgrades_jump_queue
        )

    def waits_for_edges(
        self,
    ) -> List[Tuple[Transaction, Transaction]]:
        """Local waits-for edges, for the deadlock detectors."""
        return self.locks.waits_for_edges()
