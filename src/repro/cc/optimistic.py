"""Distributed optimistic certification (paper §2.5, [Sinh85]).

Cohorts read and update freely during execution — every access request
is granted immediately.  Updates go to a private workspace; for every
read the cohort remembers the version identifier (the page's write
timestamp) it saw.  When all cohorts have reported back, the coordinator
mints a globally unique certification timestamp and ships it in the
"prepare to commit" message; each cohort then *locally certifies* its
reads and writes in a critical section (naturally atomic in a
discrete-event simulation):

* A read certifies if (i) the version read is still the page's current
  version, and (ii) no write on the page has already been locally
  certified by another still-pending transaction.  Condition (ii) is
  the conservative reading of the paper's "no write with a newer
  timestamp has already been locally certified": certified-but-
  undecided writes on a page block read certification outright, which
  is both safe for every interleaving and simplest — and the pending
  window (between a transaction's phase one and phase two) is short.
* A write certifies if (i) no read with a later timestamp has been
  certified and subsequently committed (``rts(x) <= ts``), and (ii) no
  read with a later timestamp is locally certified and still pending.

A successful certification leaves the cohort's reads and writes
registered as *pending* until the commit/abort decision arrives: commit
installs them (``rts``/``wts`` advance, writes become the current
version), abort discards them.  Conflicts are thus resolved purely by
aborting the certifying transaction — the paper's point about OPT being
unable to benefit from blocking.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cc.base import (
    CCAlgorithm,
    CCContext,
    CCResponse,
    NodeCCManager,
)
from repro.core.database import PageId
from repro.core.transaction import Cohort, Timestamp, Transaction

__all__ = ["DistributedCertification", "OptimisticNodeManager"]

_ZERO_TS: Timestamp = (-1.0, -1)


class _PageRecord:
    __slots__ = ("rts", "wts", "pending_reads", "pending_writes")

    def __init__(self):
        self.rts: Timestamp = _ZERO_TS
        self.wts: Timestamp = _ZERO_TS
        #: Certified-but-undecided accesses: txn -> certification ts.
        self.pending_reads: Dict[Transaction, Timestamp] = {}
        self.pending_writes: Dict[Transaction, Timestamp] = {}


class _CohortState:
    __slots__ = ("reads", "writes", "certified")

    def __init__(self):
        #: (page, version write-timestamp at read time) pairs.
        self.reads: List[Tuple[PageId, Timestamp]] = []
        self.writes: List[PageId] = []
        self.certified = False


class OptimisticNodeManager(NodeCCManager):
    """Certification-based node manager."""

    def __init__(self, node_id: int, context: CCContext):
        super().__init__(node_id, context)
        self._pages: Dict[PageId, _PageRecord] = {}

    def register_cohort(self, cohort: Cohort) -> None:
        """Attach a fresh workspace/read-set record."""
        cohort.cc_state = _CohortState()

    def _state(self, cohort: Cohort) -> _CohortState:
        if not isinstance(cohort.cc_state, _CohortState):
            cohort.cc_state = _CohortState()
        return cohort.cc_state

    def _record(self, page: PageId) -> _PageRecord:
        record = self._pages.get(page)
        if record is None:
            record = _PageRecord()
            self._pages[page] = record
        return record

    # ------------------------------------------------------------------
    # Access requests — always granted
    # ------------------------------------------------------------------

    def read_request(self, cohort: Cohort, page: PageId) -> CCResponse:
        """Record the version read; always granted."""
        record = self._record(page)
        self._state(cohort).reads.append((page, record.wts))
        return CCResponse.granted()

    def write_request(self, cohort: Cohort, page: PageId) -> CCResponse:
        """Buffer the update in the workspace; always granted."""
        self._state(cohort).writes.append(page)
        return CCResponse.granted()

    # ------------------------------------------------------------------
    # Certification
    # ------------------------------------------------------------------

    def prepare(self, cohort: Cohort) -> bool:
        """Locally certify the cohort's reads and writes."""
        txn = cohort.transaction
        ts = txn.commit_timestamp
        assert ts is not None, "certification needs a commit timestamp"
        state = self._state(cohort)
        for page, version in state.reads:
            record = self._record(page)
            if record.wts != version:
                return False
            if any(
                owner is not txn
                for owner in record.pending_writes
            ):
                return False
        for page in state.writes:
            record = self._record(page)
            if record.rts > ts:
                return False
            if any(
                owner is not txn and pending_ts > ts
                for owner, pending_ts in record.pending_reads.items()
            ):
                return False
        # Certification succeeded: register pending accesses so
        # concurrent certifiers see them until our decision arrives.
        for page, _version in state.reads:
            self._record(page).pending_reads[txn] = ts
        for page in state.writes:
            self._record(page).pending_writes[txn] = ts
        state.certified = True
        return True

    def commit(self, cohort: Cohort) -> List[PageId]:
        """Install certified reads and writes."""
        txn = cohort.transaction
        ts = txn.commit_timestamp
        state = self._state(cohort)
        for page, _version in state.reads:
            record = self._record(page)
            record.pending_reads.pop(txn, None)
            if ts is not None and ts > record.rts:
                record.rts = ts
        for page in state.writes:
            record = self._record(page)
            record.pending_writes.pop(txn, None)
            if ts is not None and ts > record.wts:
                record.wts = ts
        state.certified = False
        return cohort.updated_pages

    def abort(self, cohort: Cohort) -> None:
        """Discard the workspace and any pending certifications."""
        txn = cohort.transaction
        state = self._state(cohort)
        for page, _version in state.reads:
            record = self._pages.get(page)
            if record is not None:
                record.pending_reads.pop(txn, None)
        for page in state.writes:
            record = self._pages.get(page)
            if record is not None:
                record.pending_writes.pop(txn, None)
        state.reads = []
        state.writes = []
        state.certified = False

    def crash_reset(self) -> None:
        """Drop page timestamps and pending certifications wholesale.

        After recovery the node's rts/wts tables restart from zero —
        committed data survives (REDO from the log) but the validation
        history, like a real OCC node's in-memory tables, does not.
        """
        self._pages = {}

    # ------------------------------------------------------------------
    # Introspection (test support)
    # ------------------------------------------------------------------

    def page_timestamps(
        self, page: PageId
    ) -> Tuple[Timestamp, Timestamp]:
        """(rts, wts) of a page; zero timestamps if untouched."""
        record = self._pages.get(page)
        if record is None:
            return (_ZERO_TS, _ZERO_TS)
        return (record.rts, record.wts)


class DistributedCertification(CCAlgorithm):
    """Sinha-style distributed optimistic concurrency control."""

    name = "opt"

    def make_node_manager(
        self, node_id: int, context: CCContext
    ) -> OptimisticNodeManager:
        """Create the certification manager for one node."""
        return OptimisticNodeManager(node_id, context)
