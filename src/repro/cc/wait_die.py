"""Wait-die locking (extension; [Rose78], the sibling of wound-wait).

Not one of the paper's four algorithms, but the natural companion to
wound-wait from the same Rosenkrantz et al. paper, included as an
extension for completeness of the timestamp-prevention family:

* wound-wait: an *older* requester kills younger lock holders
  ("wound"), a *younger* requester waits.
* wait-die: an *older* requester waits, a *younger* requester "dies" —
  it aborts itself rather than wait for an older transaction.

Every wait edge therefore points from an older to a younger
transaction, the mirror image of wound-wait's invariant, and the
schedule is deadlock-free for the mirrored reason.  Restarted
transactions keep their original timestamp so they age into waiters and
cannot die forever.

Because the requester itself dies (rather than a remote victim), the
rejection is returned synchronously — the cohort reports the abort to
its coordinator exactly like a BTO timestamp rejection.
"""

from __future__ import annotations

from repro.cc.base import CCAlgorithm, CCContext, CCResponse
from repro.cc.locking_common import LockingNodeManager
from repro.cc.locks import LockMode
from repro.core.database import PageId
from repro.core.transaction import Cohort

__all__ = ["WaitDie", "WaitDieNodeManager"]


class WaitDieNodeManager(LockingNodeManager):
    """Wait-die node manager: younger requesters die on conflict."""

    upgrades_jump_queue = False

    def _acquire(
        self, cohort: Cohort, page: PageId, mode: LockMode
    ) -> CCResponse:
        txn = cohort.transaction
        assert txn.timestamp is not None
        granted, request, conflict_set = self.locks.acquire(
            cohort, page, mode
        )
        if granted:
            return CCResponse.granted()
        assert request is not None
        conflicts_with_older = any(
            other.timestamp is not None
            and other.timestamp < txn.timestamp
            for other in conflict_set
        )
        if conflicts_with_older:
            # The requester is younger than someone it would wait for:
            # it dies.  Only the new request is withdrawn; locks
            # already held stay held until the abort protocol reaches
            # this node.
            self.locks.cancel_request(request)
            return CCResponse.rejected()
        # Every conflict is younger: the (older) requester waits.
        return CCResponse.blocked(request.event)


class WaitDie(CCAlgorithm):
    """Wait-die deadlock prevention (extension algorithm)."""

    name = "wd"

    def make_node_manager(
        self, node_id: int, context: CCContext
    ) -> WaitDieNodeManager:
        """Create the wait-die manager for one node."""
        return WaitDieNodeManager(node_id, context)
