"""Page-level lock table shared by the locking algorithms (2PL, WW).

Semantics follow the paper's §2.2: read locks are shared, write locks
exclusive, and a cohort that updates a page *converts* its read lock to
a write lock (an upgrade).  Grants are FIFO with one policy choice left
to the algorithm:

* ``upgrades_jump_queue=True`` (2PL) — a conversion request is placed
  ahead of ordinary waiters, the usual lock manager practice.  The
  resulting upgrade-upgrade deadlocks are the detector's job.
* ``upgrades_jump_queue=False`` (wound-wait) — conversions queue at the
  back.  Combined with wound-wait's rule of wounding every younger
  conflicting transaction at insertion time, all wait edges then point
  from younger to older transactions, which is what makes the schedule
  provably deadlock-free.

The table exposes the conflict set at request time (so wound-wait can
wound), fires blocked requests' events on grant, and produces
transaction-level waits-for edges for deadlock detection.
"""

from __future__ import annotations

from enum import IntEnum
from typing import TYPE_CHECKING, Dict, List, Optional, Set, \
    Tuple

from repro.cc.base import RequestResult
from repro.core.database import PageId
from repro.core.transaction import Cohort, Transaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Environment, Event

__all__ = ["LockManager", "LockMode", "LockRequest"]


class LockMode(IntEnum):
    """Lock modes; EXCLUSIVE conflicts with everything."""

    SHARED = 0
    EXCLUSIVE = 1


def _conflicts(a: LockMode, b: LockMode) -> bool:
    return a is LockMode.EXCLUSIVE or b is LockMode.EXCLUSIVE


class LockRequest:
    """A waiting lock request."""

    __slots__ = ("cohort", "mode", "event", "is_upgrade", "page")

    def __init__(
        self,
        cohort: Cohort,
        page: PageId,
        mode: LockMode,
        event: "Event",
        is_upgrade: bool,
    ):
        self.cohort = cohort
        self.page = page
        self.mode = mode
        self.event = event
        self.is_upgrade = is_upgrade

    @property
    def transaction(self) -> Transaction:
        """The requesting transaction."""
        return self.cohort.transaction


class _LockEntry:
    __slots__ = ("holders", "queue")

    def __init__(self):
        self.holders: Dict[Transaction, LockMode] = {}
        self.queue: List[LockRequest] = []


class LockManager:
    """A per-node lock table over pages."""

    def __init__(
        self,
        env: "Environment",
        upgrades_jump_queue: bool,
    ):
        self.env = env
        self.upgrades_jump_queue = upgrades_jump_queue
        self._table: Dict[PageId, _LockEntry] = {}
        self._held: Dict[Transaction, Set[PageId]] = {}
        self._waiting: Dict[Transaction, List[LockRequest]] = {}

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def acquire(
        self, cohort: Cohort, page: PageId, mode: LockMode
    ) -> Tuple[bool, Optional[LockRequest], List[Transaction]]:
        """Try to acquire ``page`` in ``mode`` for ``cohort``.

        Returns ``(granted, request, conflict_set)``.  When granted,
        ``request`` is None.  When not granted, the request has been
        queued (its event will fire with a :class:`RequestResult`), and
        ``conflict_set`` lists the distinct transactions it waits for —
        conflicting holders plus conflicting requests queued ahead of
        it — which wound-wait uses for its wound test.

        Contract: a cohort blocks on its pending request, so a
        transaction never has two outstanding requests on one page;
        violating that is a caller bug and raises immediately rather
        than corrupting the queue.
        """
        san = self.env._san
        if san is not None:
            san.write(("lock", self))
        txn = cohort.transaction
        entry = self._table.get(page)
        if entry is None:
            entry = _LockEntry()
            self._table[page] = entry
        if entry.queue and any(
            queued.transaction is txn for queued in entry.queue
        ):
            raise RuntimeError(
                f"transaction {txn.tid} already has a queued "
                f"request on {page}"
            )
        held = entry.holders.get(txn)
        is_upgrade = False
        if mode is LockMode.SHARED:
            if held is not None:
                return True, None, []
            if not entry.queue and self._shared_grantable(entry):
                self._grant_holder(entry, txn, page, LockMode.SHARED)
                return True, None, []
        else:
            if held is LockMode.EXCLUSIVE:
                return True, None, []
            if held is LockMode.SHARED:
                is_upgrade = True
                if len(entry.holders) == 1 and not (
                    entry.queue and self._upgrade_ahead(entry, txn)
                ):
                    entry.holders[txn] = LockMode.EXCLUSIVE
                    return True, None, []
            elif not entry.holders and not entry.queue:
                self._grant_holder(entry, txn, page, LockMode.EXCLUSIVE)
                return True, None, []
        request = LockRequest(
            cohort, page, mode, self.env.event(), is_upgrade
        )
        position = self._enqueue(entry, request)
        conflict_set = self._conflict_set(entry, request, position)
        self._waiting.setdefault(txn, []).append(request)
        return False, request, conflict_set

    def _shared_grantable(self, entry: _LockEntry) -> bool:
        no_exclusive_holder = all(
            mode is LockMode.SHARED for mode in entry.holders.values()
        )
        return no_exclusive_holder and not entry.queue

    def _upgrade_ahead(
        self, entry: _LockEntry, txn: Transaction
    ) -> bool:
        return any(
            r.is_upgrade and r.transaction is not txn
            for r in entry.queue
        )

    def _grant_holder(
        self,
        entry: _LockEntry,
        txn: Transaction,
        page: PageId,
        mode: LockMode,
    ) -> None:
        entry.holders[txn] = mode
        self._held.setdefault(txn, set()).add(page)

    def _enqueue(
        self, entry: _LockEntry, request: LockRequest
    ) -> int:
        """Insert the request; returns its queue position."""
        if request.is_upgrade and self.upgrades_jump_queue:
            position = 0
            while (
                position < len(entry.queue)
                and entry.queue[position].is_upgrade
            ):
                position += 1
            entry.queue.insert(position, request)
            return position
        entry.queue.append(request)
        return len(entry.queue) - 1

    def _conflict_set(
        self, entry: _LockEntry, request: LockRequest, position: int
    ) -> List[Transaction]:
        txn = request.transaction
        conflicts: List[Transaction] = []
        # Holders iterate in grant order; the conflict set preserves
        # it on purpose — wound-wait's wound order is documented as
        # following the grant history, not a sorted key.
        for holder, mode in entry.holders.items():  # simlint: ignore[unordered-dict-iteration]
            if holder is txn:
                continue
            if _conflicts(request.mode, mode):
                conflicts.append(holder)
        for ahead in entry.queue[:position]:
            if ahead.transaction is txn:
                continue
            if _conflicts(request.mode, ahead.mode):
                if ahead.transaction not in conflicts:
                    conflicts.append(ahead.transaction)
        return conflicts

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------

    def cancel_request(self, request: LockRequest) -> None:
        """Withdraw a single queued request (its event never fires).

        Used by wait-die when a requester "dies": only the new request
        is withdrawn — locks the transaction already holds stay held
        until the abort protocol reaches this node.
        """
        san = self.env._san
        if san is not None:
            san.write(("lock", self))
        entry = self._table.get(request.page)
        if entry is not None and request in entry.queue:
            entry.queue.remove(request)
            self._forget_waiting(request)
            self._grant_pass(request.page)

    def release_all(self, txn: Transaction) -> None:
        """Drop every lock and queued request of ``txn`` at this node."""
        san = self.env._san
        if san is not None:
            san.write(("lock", self))
        touched: List[PageId] = []
        # The grant pass fires blocked requests' events in the order
        # pages are visited, so iterating the held-set directly would
        # make wakeup order hash-dependent; sort for an explicit,
        # reproducible tie-break (PageId orders by
        # (relation, partition, page)).
        for page in sorted(self._held.pop(txn, set())):
            entry = self._table[page]
            entry.holders.pop(txn, None)
            touched.append(page)
        for request in self._waiting.pop(txn, []):
            entry = self._table.get(request.page)
            if entry is not None and request in entry.queue:
                entry.queue.remove(request)
                touched.append(request.page)
        # A page can appear twice (held + queued upgrade); the second
        # grant pass would find a settled entry and grant nothing, so
        # deduplicate while keeping first-occurrence order.
        seen: Set[PageId] = set()
        for page in touched:
            if page not in seen:
                seen.add(page)
                self._grant_pass(page)

    def _grant_pass(self, page: PageId) -> None:
        """Grant now-compatible requests from the head of the queue."""
        entry = self._table.get(page)
        if entry is None:
            return
        while entry.queue:
            request = entry.queue[0]
            txn = request.transaction
            if request.is_upgrade or txn in entry.holders:
                grantable = (
                    len(entry.holders) == 1 and txn in entry.holders
                )
                if not grantable:
                    break
                entry.queue.pop(0)
                entry.holders[txn] = LockMode.EXCLUSIVE
            elif request.mode is LockMode.SHARED:
                if any(
                    mode is LockMode.EXCLUSIVE
                    for mode in entry.holders.values()
                ):
                    break
                entry.queue.pop(0)
                self._grant_holder(
                    entry, txn, page, LockMode.SHARED
                )
            else:
                if entry.holders:
                    break
                entry.queue.pop(0)
                self._grant_holder(
                    entry, txn, page, LockMode.EXCLUSIVE
                )
            self._forget_waiting(request)
            request.event.succeed(RequestResult.GRANTED)
        if not entry.holders and not entry.queue:
            del self._table[page]

    def _forget_waiting(self, request: LockRequest) -> None:
        pending = self._waiting.get(request.transaction)
        if pending is not None:
            try:
                pending.remove(request)
            except ValueError:
                pass
            if not pending:
                del self._waiting[request.transaction]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def waits_for_edges(
        self,
    ) -> List[Tuple[Transaction, Transaction]]:
        """Transaction-level (waiter, holder) edges at this node.

        A queued request waits for every conflicting holder and every
        conflicting request queued ahead of it (grants are FIFO, so the
        ahead-of-me edges are real).
        """
        san = self.env._san
        if san is not None:
            san.read(("lock", self))
        edges: List[Tuple[Transaction, Transaction]] = []
        exclusive = LockMode.EXCLUSIVE
        append = edges.append
        # This runs on every conflict under local detection (2PL), so
        # entries with no waiters — the vast majority — are skipped
        # outright and the conflict test is inlined.  Table and holder
        # order (insertion order: page first touched / lock granted)
        # is the deadlock detector's documented edge order; sorting
        # here would change victim tie-breaks and every golden figure.
        for entry in self._table.values():  # simlint: ignore[unordered-dict-iteration]
            queue = entry.queue
            if not queue:
                continue
            holders = entry.holders
            for position, request in enumerate(queue):
                waiter = request.transaction
                is_exclusive = request.mode is exclusive
                for holder, mode in holders.items():  # simlint: ignore[unordered-dict-iteration]
                    if holder is not waiter and (
                        is_exclusive or mode is exclusive
                    ):
                        append((waiter, holder))
                for index in range(position):
                    ahead = queue[index]
                    other = ahead.transaction
                    if other is not waiter and (
                        is_exclusive or ahead.mode is exclusive
                    ):
                        append((waiter, other))
        return edges

    def holds_any(self, txn: Transaction) -> bool:
        """Whether ``txn`` currently holds any lock at this node."""
        return bool(self._held.get(txn))

    def is_waiting(self, txn: Transaction) -> bool:
        """Whether ``txn`` has a queued request at this node."""
        return bool(self._waiting.get(txn))

    def assert_consistent(self) -> None:
        """Internal invariant checks, used by the test suite.

        Pages are visited in sorted order so the first assertion to
        fire is the same one on every run.
        """
        for page in sorted(self._table):
            entry = self._table[page]
            exclusive = sum(
                1 for m in entry.holders.values()
                if m is LockMode.EXCLUSIVE
            )
            if exclusive and len(entry.holders) > 1:
                raise AssertionError(
                    f"exclusive lock shared on {page}: {entry.holders}"
                )
            for request in entry.queue:
                if request.transaction in entry.holders and not (
                    request.is_upgrade
                    or entry.holders[request.transaction]
                    is LockMode.SHARED
                ):
                    raise AssertionError(
                        f"holder queued non-upgrade on {page}"
                    )
