"""Distributed wound-wait locking (paper §2.3, [Rose78]).

Identical to 2PL except in how deadlock is handled: it is *prevented*
with startup timestamps.  When a cohort's lock request conflicts, every
*younger* transaction it would wait for is "wounded" — aborted, unless
it is already in the second phase of its commit protocol, in which case
the wound is not fatal and is simply ignored.  The requester then waits
as usual.  Younger transactions are always permitted to wait for older
ones.

Two implementation choices keep the schedule provably deadlock-free:

* The wound test is applied against the full conflict set — conflicting
  *holders* and conflicting requests *queued ahead* — because with FIFO
  grants a waiter really does wait for both.
* Read-to-write conversions queue at the back rather than jumping the
  queue.  Jumping would create "older waits for younger" edges behind
  the upgrader's back without a wound test ever seeing them.

With those rules every wait edge points from a younger to an older
transaction (or to one already committing, which never waits), so no
cycle can form.  Restarted transactions keep their original startup
timestamp, which guarantees that every transaction eventually becomes
the oldest and cannot be wounded — the classic wound-wait liveness
argument.
"""

from __future__ import annotations

from typing import List

from repro.cc.base import CCAlgorithm, CCContext
from repro.cc.locking_common import LockingNodeManager
from repro.cc.locks import LockRequest
from repro.core.transaction import Transaction

__all__ = ["WoundWait", "WoundWaitNodeManager"]


class WoundWaitNodeManager(LockingNodeManager):
    """Wound-wait node manager."""

    upgrades_jump_queue = False

    def on_conflict(
        self,
        request: LockRequest,
        conflict_set: List[Transaction],
    ) -> None:
        """Wound every younger transaction the request waits for."""
        me = request.transaction
        assert me.timestamp is not None
        for other in conflict_set:
            if other.timestamp is None:
                continue
            if other.timestamp > me.timestamp:
                # Other is younger.  The wound is non-fatal if the
                # victim is already in the second phase of its commit
                # protocol; request_abort re-checks at delivery time,
                # but skipping early avoids pointless messages.
                if not other.in_second_commit_phase:
                    self.context.request_abort(
                        other, "wound", self.node_id
                    )


class WoundWait(CCAlgorithm):
    """Distributed wound-wait."""

    name = "ww"

    def make_node_manager(
        self, node_id: int, context: CCContext
    ) -> WoundWaitNodeManager:
        """Create the wound-wait manager for one node."""
        return WoundWaitNodeManager(node_id, context)
