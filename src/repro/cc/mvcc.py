"""Multi-version concurrency control with snapshot isolation (extension).

The paper's four algorithms all make readers and writers fight over a
single current version of each page.  MVCC removes that fight: every
commit installs a new *version* of the pages it wrote (the node keeps a
short chain of committed version timestamps per page —
:class:`~repro.core.database.PageVersionStore`), and every transaction
reads from the *snapshot* defined by its start timestamp — the newest
committed version no later than the snapshot.  Reads therefore never
block, never wait for locks, and never cause an abort: a read-only
transaction under MVCC commits on its first attempt, always.

Update transactions keep snapshot reads but must serialize their writes.
This module implements classic *snapshot isolation* with
first-committer-wins write-write validation:

* ``write_request`` performs an early first-updater check: if some
  transaction already **committed** a newer version of the page than
  this transaction's snapshot, the request is rejected immediately
  (the attempt would be doomed at certification anyway, so aborting
  before buying more execution is strictly cheaper).  Otherwise the
  update is buffered in the cohort's private workspace and granted —
  no lock is taken, so MVCC writers never block either.
* ``prepare`` (phase one of 2PC) re-validates every buffered write in
  a critical section: the vote is *no* if a newer-than-snapshot version
  committed since the early check, or if another still-pending prepared
  transaction holds a write intent on the page.  A *yes* vote registers
  the cohort's write intents so concurrent certifiers see them until
  the decision arrives — exactly the pending-window discipline the OPT
  manager uses.
* ``commit`` (phase two) removes the intents and installs one new
  version per written page at the transaction's commit timestamp.
  Commits may complete out of order across nodes; the version store
  keeps chains sorted by insertion.

Snapshots follow the BTO restart policy: each attempt draws a *fresh*
snapshot timestamp (an aborted attempt's snapshot is stale by
construction), while the initial startup timestamp is preserved for
victim-selection style uses.

Crash semantics are fail-stop like the other managers: ``crash_reset``
wipes the version chains and every pending intent.  Committed data
survives in the database proper (REDO from the log); the in-memory
version bookkeeping restarts from zero, after which every page behaves
as if it had one committed version at the zero timestamp.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cc.base import (
    CCAlgorithm,
    CCContext,
    CCResponse,
    NodeCCManager,
)
from repro.core.database import PageId, PageVersionStore
from repro.core.transaction import Cohort, Timestamp, Transaction, \
    make_timestamp

__all__ = ["MultiVersionCC", "MvccNodeManager"]

_ZERO_TS: Timestamp = (-1.0, -1)


class _CohortState:
    __slots__ = ("writes", "intents_registered")

    def __init__(self):
        #: Pages buffered in the private workspace, in request order.
        self.writes: List[PageId] = []
        #: Whether prepare() registered this cohort's write intents.
        self.intents_registered = False


class MvccNodeManager(NodeCCManager):
    """Snapshot-isolation node manager over a page version store."""

    def __init__(self, node_id: int, context: CCContext):
        super().__init__(node_id, context)
        #: Committed version chains for pages at this node.
        self.store = PageVersionStore()
        #: Prepared-but-undecided write intents: page -> {txn: commit ts}.
        self._intents: Dict[PageId, Dict[Transaction, Timestamp]] = {}

    def register_cohort(self, cohort: Cohort) -> None:
        """Attach a fresh private workspace."""
        cohort.cc_state = _CohortState()

    def _state(self, cohort: Cohort) -> _CohortState:
        if not isinstance(cohort.cc_state, _CohortState):
            cohort.cc_state = _CohortState()
        return cohort.cc_state

    def _snapshot(self, cohort: Cohort) -> Timestamp:
        snapshot = cohort.transaction.timestamp
        assert snapshot is not None, "MVCC cohort without a snapshot"
        return snapshot

    # ------------------------------------------------------------------
    # Access requests
    # ------------------------------------------------------------------

    def read_request(self, cohort: Cohort, page: PageId) -> CCResponse:
        """Snapshot read: always granted, no lock, no version check.

        The version served is the newest committed one no later than
        the snapshot; since chains retain several versions and
        snapshots live for one attempt, the wanted version always
        exists.  Nothing about the read can invalidate anyone.
        """
        return CCResponse.granted()

    def write_request(self, cohort: Cohort, page: PageId) -> CCResponse:
        """Buffer the update; reject if the snapshot is already stale.

        First-updater early check: a committed version newer than this
        transaction's snapshot guarantees certification failure, so the
        attempt aborts now instead of after more execution.  Otherwise
        the write goes to the workspace and the request is granted —
        MVCC writers never block.
        """
        if self.store.latest(page) > self._snapshot(cohort):
            return CCResponse.rejected()
        self._state(cohort).writes.append(page)
        return CCResponse.granted()

    # ------------------------------------------------------------------
    # Certification (first-committer-wins)
    # ------------------------------------------------------------------

    def prepare(self, cohort: Cohort) -> bool:
        """Validate write-write conflicts against snapshot and intents."""
        txn = cohort.transaction
        snapshot = self._snapshot(cohort)
        state = self._state(cohort)
        for page in state.writes:
            if self.store.latest(page) > snapshot:
                return False
            intents = self._intents.get(page)
            if intents and any(
                owner is not txn for owner in intents
            ):
                return False
        ts = txn.commit_timestamp
        assert ts is not None, "certification needs a commit timestamp"
        for page in state.writes:
            self._intents.setdefault(page, {})[txn] = ts
        state.intents_registered = True
        return True

    def commit(self, cohort: Cohort) -> List[PageId]:
        """Install one new committed version per written page."""
        txn = cohort.transaction
        ts = txn.commit_timestamp
        state = self._state(cohort)
        for page in state.writes:
            intents = self._intents.get(page)
            if intents is not None:
                intents.pop(txn, None)
                if not intents:
                    del self._intents[page]
            if ts is not None:
                self.store.install(page, ts)
        state.intents_registered = False
        return cohort.updated_pages

    def abort(self, cohort: Cohort) -> None:
        """Discard the workspace and any registered intents."""
        txn = cohort.transaction
        state = self._state(cohort)
        for page in state.writes:
            intents = self._intents.get(page)
            if intents is not None:
                intents.pop(txn, None)
                if not intents:
                    del self._intents[page]
        state.writes = []
        state.intents_registered = False

    def crash_reset(self) -> None:
        """Wipe version chains and pending intents (fail-stop crash)."""
        self.store.clear()
        self._intents = {}

    # ------------------------------------------------------------------
    # Introspection (test support)
    # ------------------------------------------------------------------

    def version_chain(self, page: PageId) -> Tuple[Timestamp, ...]:
        """Committed version timestamps of ``page``, ascending."""
        return self.store.versions(page)

    def pending_intents(self, page: PageId) -> int:
        """Number of prepared-undecided write intents on ``page``."""
        return len(self._intents.get(page, ()))


class MultiVersionCC(CCAlgorithm):
    """Snapshot isolation with first-committer-wins certification."""

    name = "mvcc"

    def make_node_manager(
        self, node_id: int, context: CCContext
    ) -> MvccNodeManager:
        """Create the version-store manager for one node."""
        return MvccNodeManager(node_id, context)

    def assign_timestamps(
        self, transaction: Transaction, now: float
    ) -> None:
        """Fresh snapshot per attempt (BTO restart policy).

        The snapshot timestamp *is* ``transaction.timestamp``: reads
        resolve against it and write validation compares committed
        versions to it, so a restarted attempt must re-snapshot at its
        new BEGIN or it would re-abort against the very commit that
        killed it.
        """
        if transaction.startup_timestamp is None:
            transaction.startup_timestamp = make_timestamp(now)
            transaction.timestamp = transaction.startup_timestamp
        else:
            transaction.timestamp = make_timestamp(now)
