"""Setuptools shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
offline environments whose pip/setuptools lack PEP 660 editable-wheel
support (the legacy ``setup.py develop`` path needs no ``wheel``
package).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
