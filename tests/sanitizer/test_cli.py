"""``python -m repro.sanitizer`` — exit codes, baseline update loop,
and session hygiene, driven through a registered tiny experiment so a
CLI test costs one small simulation instead of a figure sweep."""

import json

import pytest

from repro.core.config import paper_default_config
from repro.core.simulation import Simulation
from repro.experiments import registry
from repro.experiments.registry import Experiment
from repro.sanitizer import session
from repro.sanitizer.cli import main


def _tiny_experiment(fidelity):
    config = paper_default_config(
        "2pl", think_time=1.0, seed=11
    ).with_(duration=4.0, warmup=1.0).with_workload(num_terminals=6)
    Simulation(config).run()
    return []


@pytest.fixture
def tiny_registered(monkeypatch):
    monkeypatch.setitem(
        registry.EXPERIMENTS,
        "tiny",
        Experiment("tiny", "one small contended run", _tiny_experiment),
    )


class TestExitCodes:
    def test_unknown_experiment_is_usage_error(self, capsys):
        assert main(["no-such-figure"]) == 2

    def test_bad_baseline_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("not json")
        assert main(["tiny", "--baseline", str(bad)]) == 2

    def test_findings_without_baseline_fail(self, tiny_registered, capsys):
        code = main(["tiny", "--no-baseline", "--no-confirm", "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        assert data["violations"], "a real contended run must report races"
        # --no-confirm leaves races as warnings; only error-severity
        # findings (here: none) fail the run.
        assert code == (0 if all(
            v["severity"] != "error" for v in data["violations"]
        ) else 1)

    def test_session_deactivated_after_main(self, tiny_registered, capsys):
        main(["tiny", "--no-baseline", "--no-confirm"])
        assert not session.sanitizing_active()


class TestBaselineLoop:
    def test_update_baseline_then_clean_rerun(
        self, tiny_registered, tmp_path, capsys
    ):
        target = tmp_path / "baseline.json"
        # With the confirmer on, the contended tiny run produces
        # outcome-changing (error-severity) races to inventory.
        assert main([
            "tiny", "--update-baseline", "--baseline", str(target),
        ]) == 0
        inventory = json.loads(target.read_text())
        assert inventory["entries"]
        # The inventoried baseline makes the same sweep exit clean...
        assert main(["tiny", "--baseline", str(target)]) == 0
        # ...and ignoring it fails again (the baseline is doing work).
        assert main(["tiny", "--no-baseline"]) == 1
        capsys.readouterr()
