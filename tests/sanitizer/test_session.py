"""The process-global sanitizer session: activation, env-var wiring,
and cross-run finding dedup."""

from repro.lint.violations import Violation
from repro.sanitizer import session


def finding(message="m", path="p.py", line=1, rule="leak-audit"):
    return Violation(
        rule_id=rule,
        path=path,
        line=line,
        col=0,
        message=message,
        severity="error",
    )


class TestActivation:
    def test_inactive_by_default(self):
        assert not session.sanitizing_active()

    def test_activate_deactivate(self):
        session.activate()
        assert session.sanitizing_active()
        session.deactivate()
        assert not session.sanitizing_active()

    def test_env_var_truthy_forms(self, monkeypatch):
        for value in ("1", "true", "YES", " on "):
            monkeypatch.setenv("REPRO_SIMSAN", value)
            assert session.sanitizing_active(), value
        for value in ("", "0", "false", "off"):
            monkeypatch.setenv("REPRO_SIMSAN", value)
            assert not session.sanitizing_active(), value

    def test_confirm_flag_follows_activation(self, monkeypatch):
        session.activate(confirm=False)
        assert not session.confirm_enabled()
        session.activate(confirm=True)
        assert session.confirm_enabled()
        monkeypatch.setenv("REPRO_SIMSAN_CONFIRM", "0")
        assert not session.confirm_enabled()


class TestRecording:
    def test_record_run_counts_and_collects(self):
        session.record_run([finding("a"), finding("b")])
        assert session.session_runs() == 1
        assert len(session.session_findings()) == 2

    def test_cross_run_dedup_by_identity_key(self):
        """The same stable finding from every grid point collapses to
        one row; distinct messages stay distinct."""
        session.record_run([finding("same")])
        session.record_run([finding("same"), finding("other")])
        session.record_run([finding("same")])
        assert session.session_runs() == 3
        messages = [v.message for v in session.session_findings()]
        assert messages == ["same", "other"]

    def test_reset_clears_both(self):
        session.record_run([finding()])
        session.reset_findings()
        assert session.session_runs() == 0
        assert session.session_findings() == []
