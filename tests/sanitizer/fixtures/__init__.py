"""Seeded violation fixtures for the runtime sanitizer.

Each checker gets at least one minimal simulation that triggers
*exactly one* finding, plus a near-miss that exercises the same code
path but stays clean.  Every fixture takes the scheduler name
(``"heap"`` or ``"calendar"``) so the test suite proves the checkers
behave identically under both dispatch structures.

A fixture builds its own :class:`~repro.sim.kernel.Environment` with a
confirmer-less :class:`~repro.sanitizer.core.Sanitizer` (there is no
``SimulationConfig`` to re-run at kernel level), drives it, runs the
end-of-env audit, and returns the sanitizer; callers inspect
``sanitizer.finalize()``.
"""

from repro.sanitizer.core import Sanitizer
from repro.sim.kernel import Environment, Mailbox
from repro.sim.streams import RandomStreams


def _noop():
    pass


def make_env(scheduler):
    sanitizer = Sanitizer(confirm=False)
    env = Environment(scheduler=scheduler, sanitizer=sanitizer)
    return env, sanitizer


# ----------------------------------------------------------------------
# same-time-race
# ----------------------------------------------------------------------


def race_independent_writes(scheduler):
    """Two independently scheduled events write the same mailbox at the
    same timestamp: their order is pure seq tie-break — one race."""
    env, sanitizer = make_env(scheduler)
    mailbox = Mailbox(env)

    def first_writer():
        mailbox.put("a")

    def second_writer():
        mailbox.put("b")

    env.schedule(1.0, first_writer)
    env.schedule(1.0, second_writer)
    env.run()
    sanitizer.finish_env(env)
    return sanitizer


def race_repeated_pair_still_one_finding(scheduler):
    """The same callback pair racing on many timestamps dedups to one
    finding (per-run reports must not scale with the event count)."""
    env, sanitizer = make_env(scheduler)
    mailbox = Mailbox(env)

    def first_writer():
        mailbox.put("a")

    def second_writer():
        mailbox.put("b")

    for time in (1.0, 2.0, 3.0):
        env.schedule(time, first_writer)
        env.schedule(time, second_writer)
    env.run()
    sanitizer.finish_env(env)
    return sanitizer


def race_near_miss_parent_child(scheduler):
    """A same-time child is causally ordered after its scheduling
    parent — touching the same mailbox is not a race."""
    env, sanitizer = make_env(scheduler)
    mailbox = Mailbox(env)

    def child():
        mailbox.put("b")

    def parent():
        mailbox.put("a")
        env.schedule_now(child)

    env.schedule(1.0, parent)
    env.run()
    sanitizer.finish_env(env)
    return sanitizer


def race_near_miss_distinct_timestamps(scheduler):
    """The same conflicting pair separated by the clock is ordered by
    time, not seq — not a race."""
    env, sanitizer = make_env(scheduler)
    mailbox = Mailbox(env)

    def first_writer():
        mailbox.put("a")

    def second_writer():
        mailbox.put("b")

    env.schedule(1.0, first_writer)
    env.schedule(2.0, second_writer)
    env.run()
    sanitizer.finish_env(env)
    return sanitizer


def race_near_miss_read_read(scheduler):
    """Two same-time reads of the same state commute by definition."""
    env, sanitizer = make_env(scheduler)
    table = object()  # stands in for a node's lock table

    def first_reader():
        sanitizer.read(("lock", table))

    def second_reader():
        sanitizer.read(("lock", table))

    env.schedule(1.0, first_reader)
    env.schedule(1.0, second_reader)
    env.run()
    sanitizer.finish_env(env)
    return sanitizer


# ----------------------------------------------------------------------
# stream-discipline
# ----------------------------------------------------------------------


def stream_unregistered_draw(scheduler):
    """A dynamically named draw that never went through
    register_stream — the hole the static rule must exempt."""
    env, sanitizer = make_env(scheduler)
    streams = RandomStreams(7, strict=False)
    streams.attach_sanitizer(sanitizer)

    def draw():
        streams.uniform("mystery-stream", 0.0, 1.0)
        streams.uniform("mystery-stream", 0.0, 1.0)  # still one finding

    env.schedule(1.0, draw)
    env.run()
    sanitizer.finish_env(env)
    return sanitizer


def stream_cross_owner_draw(scheduler):
    """'page-count' belongs to the workload generator; a draw declared
    by the resource model entangles the two sequences."""
    env, sanitizer = make_env(scheduler)
    streams = RandomStreams(7, strict=False)
    streams.attach_sanitizer(sanitizer)

    def draw():
        streams.uniform_int("page-count", 1, 4, owner="resources")

    env.schedule(1.0, draw)
    env.run()
    sanitizer.finish_env(env)
    return sanitizer


def stream_near_miss_owned_draws(scheduler):
    """Registered draws by their declared owners stay clean, including
    a dynamic per-terminal name matched via its {placeholder} family."""
    env, sanitizer = make_env(scheduler)
    streams = RandomStreams(7, strict=False)
    streams.attach_sanitizer(sanitizer)

    def draw():
        streams.uniform_int("page-count", 1, 4, owner="workload")
        streams.exponential("think-3", 1.0, owner="workload")
        streams.exponential("disk-service-0", 0.02, owner="resources")
        streams.get("write-coin").random()  # owner-less draw: unchecked

    env.schedule(1.0, draw)
    env.run()
    sanitizer.finish_env(env)
    return sanitizer


# ----------------------------------------------------------------------
# handle-lifecycle
# ----------------------------------------------------------------------


def handle_stale_cancel(scheduler):
    """cancel() after the callback already dispatched: under pooling
    this would cancel whatever unrelated event recycled the handle."""
    env, sanitizer = make_env(scheduler)
    handle = env.schedule(1.0, _noop)
    env.run(until=2.0)
    handle.cancel()
    sanitizer.finish_env(env)
    return sanitizer


def handle_double_cancel(scheduler):
    """A second cancel() before the loop reaps the first."""
    env, sanitizer = make_env(scheduler)
    handle = env.schedule(1.0, _noop)
    handle.cancel()
    handle.cancel()
    env.run(until=2.0)  # reaps the cancelled handle: no leak on top
    sanitizer.finish_env(env)
    return sanitizer


def handle_near_miss_single_cancel(scheduler):
    """One cancel before dispatch, reaped by the loop — the sanctioned
    pattern (timeouts losing an AnyOf race) stays clean."""
    env, sanitizer = make_env(scheduler)
    handle = env.schedule(1.0, _noop)
    handle.cancel()
    env.run(until=2.0)
    sanitizer.finish_env(env)
    return sanitizer


# ----------------------------------------------------------------------
# leak-audit
# ----------------------------------------------------------------------


def leak_orphaned_process(scheduler):
    """A process parked on an event nobody will ever succeed survives
    the drained event queues."""
    env, sanitizer = make_env(scheduler)
    never = env.event()

    def waiter():
        yield never

    env.process(waiter(), name="stuck-waiter")
    env.run()
    sanitizer.finish_env(env)
    return sanitizer


def leak_unreaped_cancelled_handle(scheduler):
    """A cancelled future callback still pinned in the scheduler when
    the run stops short of its timestamp."""
    env, sanitizer = make_env(scheduler)
    handle = env.schedule(5.0, _noop)
    handle.cancel()
    env.run(until=1.0)
    sanitizer.finish_env(env)
    return sanitizer


def leak_near_miss_completed_process(scheduler):
    """The same waiter shape, but the event is succeeded — the process
    finishes and the audit stays clean."""
    env, sanitizer = make_env(scheduler)
    eventually = env.event()

    def waiter():
        yield eventually

    env.process(waiter(), name="served-waiter")
    env.schedule(1.0, eventually.succeed, "payload")
    env.run()
    sanitizer.finish_env(env)
    return sanitizer
