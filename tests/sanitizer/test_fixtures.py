"""Every checker fires on its seeded fixture — exactly once — and
stays silent on the matching near-miss, under both schedulers.

This is the detection-coverage contract from the sanitizer's spec: a
checker that cannot demonstrably fire is not a checker, and a checker
that fires on the near-miss would drown real findings in noise.
"""

import pytest

from repro.sanitizer import checks

from tests.sanitizer import fixtures

SCHEDULERS = ("heap", "calendar")


def by_check(sanitizer, check_id):
    return [
        violation
        for violation in sanitizer.finalize()
        if violation.rule_id == check_id
    ]


@pytest.mark.parametrize("scheduler", SCHEDULERS)
class TestSameTimeRace:
    def test_independent_writes_flag_exactly_once(self, scheduler):
        sanitizer = fixtures.race_independent_writes(scheduler)
        races = by_check(sanitizer, checks.SAME_TIME_RACE)
        assert len(races) == 1
        assert len(sanitizer.finalize()) == 1
        finding = races[0]
        assert "write/write" in finding.message
        assert "mailbox" in finding.message
        # No confirmer at kernel level: unclassified, check default.
        assert "[unconfirmed]" in finding.message
        assert finding.severity == "warning"
        # Anchored at the model-level call site, not inside kernel.py.
        assert finding.path.endswith("tests/sanitizer/fixtures/__init__.py")

    def test_repeated_pair_dedups_to_one_finding(self, scheduler):
        sanitizer = fixtures.race_repeated_pair_still_one_finding(
            scheduler
        )
        assert len(by_check(sanitizer, checks.SAME_TIME_RACE)) == 1

    def test_parent_child_same_time_is_causally_ordered(self, scheduler):
        sanitizer = fixtures.race_near_miss_parent_child(scheduler)
        assert sanitizer.finalize() == []

    def test_distinct_timestamps_do_not_race(self, scheduler):
        sanitizer = fixtures.race_near_miss_distinct_timestamps(scheduler)
        assert sanitizer.finalize() == []

    def test_read_read_does_not_race(self, scheduler):
        sanitizer = fixtures.race_near_miss_read_read(scheduler)
        assert sanitizer.finalize() == []


@pytest.mark.parametrize("scheduler", SCHEDULERS)
class TestStreamDiscipline:
    def test_unregistered_draw_flags_exactly_once(self, scheduler):
        sanitizer = fixtures.stream_unregistered_draw(scheduler)
        findings = by_check(sanitizer, checks.STREAM_DISCIPLINE)
        assert len(findings) == 1
        assert len(sanitizer.finalize()) == 1
        assert "mystery-stream" in findings[0].message
        assert "register_stream" in findings[0].message
        assert findings[0].severity == "error"

    def test_cross_owner_draw_flags_exactly_once(self, scheduler):
        sanitizer = fixtures.stream_cross_owner_draw(scheduler)
        findings = by_check(sanitizer, checks.STREAM_DISCIPLINE)
        assert len(findings) == 1
        assert len(sanitizer.finalize()) == 1
        message = findings[0].message
        assert "'workload'" in message and "'resources'" in message

    def test_owned_and_dynamic_family_draws_stay_clean(self, scheduler):
        sanitizer = fixtures.stream_near_miss_owned_draws(scheduler)
        assert sanitizer.finalize() == []


@pytest.mark.parametrize("scheduler", SCHEDULERS)
class TestHandleLifecycle:
    def test_stale_cancel_flags_exactly_once(self, scheduler):
        sanitizer = fixtures.handle_stale_cancel(scheduler)
        findings = by_check(sanitizer, checks.HANDLE_LIFECYCLE)
        assert len(findings) == 1
        assert len(sanitizer.finalize()) == 1
        assert "already" in findings[0].message
        assert findings[0].severity == "error"

    def test_double_cancel_flags_exactly_once(self, scheduler):
        sanitizer = fixtures.handle_double_cancel(scheduler)
        findings = by_check(sanitizer, checks.HANDLE_LIFECYCLE)
        assert len(findings) == 1
        assert len(sanitizer.finalize()) == 1
        assert "double cancel" in findings[0].message
        assert findings[0].severity == "warning"

    def test_single_cancel_before_dispatch_is_clean(self, scheduler):
        sanitizer = fixtures.handle_near_miss_single_cancel(scheduler)
        assert sanitizer.finalize() == []


@pytest.mark.parametrize("scheduler", SCHEDULERS)
class TestLeakAudit:
    def test_orphaned_process_flags_exactly_once(self, scheduler):
        sanitizer = fixtures.leak_orphaned_process(scheduler)
        findings = by_check(sanitizer, checks.LEAK_AUDIT)
        assert len(findings) == 1
        assert len(sanitizer.finalize()) == 1
        assert "stuck-waiter" in findings[0].message
        assert findings[0].severity == "error"

    def test_unreaped_cancelled_handle_flags_exactly_once(self, scheduler):
        sanitizer = fixtures.leak_unreaped_cancelled_handle(scheduler)
        findings = by_check(sanitizer, checks.LEAK_AUDIT)
        assert len(findings) == 1
        assert len(sanitizer.finalize()) == 1
        assert "never reaped" in findings[0].message

    def test_completed_process_is_clean(self, scheduler):
        sanitizer = fixtures.leak_near_miss_completed_process(scheduler)
        assert sanitizer.finalize() == []
