"""Findings flow through the shared lint reporting machinery:
``# simsan: waive[...]`` inline comments, the committed baseline, and
the text/JSON/SARIF renderers."""

import json

import pytest

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.violations import Violation
from repro.sanitizer import report as report_mod
from repro.sanitizer.checks import CHECKS


def finding(rule="leak-audit", path="x.py", line=1, message="m",
            severity="error"):
    return Violation(
        rule_id=rule,
        path=path,
        line=line,
        col=0,
        message=message,
        severity=severity,
    )


class TestWaivers:
    def test_matching_inline_waiver_suppresses(self, tmp_path, monkeypatch):
        source = tmp_path / "model.py"
        source.write_text(
            "x = 1\n"
            "drain()  # simsan: waive[leak-audit] benign shutdown\n"
        )
        monkeypatch.chdir(tmp_path)
        waived, kept = report_mod.apply_waivers(
            [
                finding(path="model.py", line=2),
                finding(path="model.py", line=1, message="other"),
            ]
        )[0:2]
        assert waived.suppressed
        assert not kept.suppressed

    def test_waiver_is_check_specific(self, tmp_path, monkeypatch):
        source = tmp_path / "model.py"
        source.write_text("y()  # simsan: waive[same-time-race]\n")
        monkeypatch.chdir(tmp_path)
        [kept] = report_mod.apply_waivers(
            [finding(rule="leak-audit", path="model.py", line=1)]
        )
        assert not kept.suppressed

    def test_synthetic_paths_never_resolve(self):
        [kept] = report_mod.apply_waivers(
            [finding(path="<scheduler>", line=0)]
        )
        assert not kept.suppressed


class TestBaseline:
    def test_baselined_finding_keeps_report_ok(self):
        baseline = Baseline(
            [BaselineEntry("x.py", "leak-audit", 1, "known shutdown leak")]
        )
        report = report_mod.build_report(
            [finding()], runs=3, baseline=baseline
        )
        assert report.ok
        assert report.files == 3  # rendered as "units examined"

    def test_unbaselined_error_fails_report(self):
        report = report_mod.build_report(
            [finding()], baseline=Baseline.empty()
        )
        assert not report.ok

    def test_warning_findings_do_not_fail_report(self):
        report = report_mod.build_report(
            [finding(severity="warning")], baseline=Baseline.empty()
        )
        assert report.ok

    def test_stale_entry_fails_report(self):
        baseline = Baseline(
            [BaselineEntry("gone.py", "leak-audit", 1, "was fixed")]
        )
        report = report_mod.build_report([], baseline=baseline)
        assert report.stale_baseline
        assert not report.ok

    def test_default_baseline_is_the_committed_file(self):
        path = report_mod.default_baseline_path()
        assert path.name == "baseline.json"
        assert path.is_file()
        Baseline.load(path)  # must always parse


class TestRenderers:
    def report(self):
        return report_mod.build_report(
            [finding(message="orphaned process 'x'")],
            runs=2,
            baseline=Baseline.empty(),
        )

    def test_text_names_the_check(self):
        text = report_mod.render(self.report(), "text")
        assert "leak-audit" in text
        assert "orphaned process" in text

    def test_json_round_trips(self):
        data = json.loads(report_mod.render(self.report(), "json"))
        assert data["violations"][0]["rule_id"] == "leak-audit"

    def test_sarif_uses_simsan_driver_and_check_rules(self):
        sarif = json.loads(report_mod.render(self.report(), "sarif"))
        driver = sarif["runs"][0]["tool"]["driver"]
        assert driver["name"] == "simsan"
        assert sorted(r["id"] for r in driver["rules"]) == sorted(
            check.rule_id for check in CHECKS
        )
        results = sarif["runs"][0]["results"]
        assert results[0]["ruleId"] == "leak-audit"
