"""Satellite contract: sanitized runs and the result cache never mix.

Both directions are load-bearing.  A sanitized sweep that *read* the
cache would silently skip instrumentation (a cache hit runs nothing);
a sanitized sweep that *wrote* it would plant entries a later clean
run trusts (cache keys hash config + sources, not execution mode).
"""

from repro.core.config import paper_default_config
from repro.experiments.executor import SweepExecutor
from repro.experiments.result_cache import ResultCache
from repro.sanitizer import session
from repro.sanitizer.core import diff_results


def tiny_config(seed=7):
    return paper_default_config(
        "no_dc", think_time=30.0, seed=seed
    ).with_(duration=3.0, warmup=1.0).with_workload(num_terminals=4)


class TestSanitizedRunsSkipTheCache:
    def test_sanitized_sweep_writes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        session.activate(confirm=False)
        try:
            executor = SweepExecutor(jobs=1, cache=cache)
            executor.run_many([tiny_config()])
            assert executor.stats.simulated == 1
        finally:
            session.deactivate()
        # A later clean run finds no entry to trust.
        assert cache.get(tiny_config()) is None
        clean = SweepExecutor(jobs=1, cache=cache)
        clean.run_many([tiny_config()])
        assert clean.stats.simulated == 1
        assert clean.stats.disk_hits == 0

    def test_sanitized_sweep_reads_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        clean = SweepExecutor(jobs=1, cache=cache)
        [clean_result] = clean.run_many([tiny_config()])
        assert cache.get(tiny_config()) is not None
        session.activate(confirm=False)
        try:
            executor = SweepExecutor(jobs=1, cache=cache)
            [sanitized_result] = executor.run_many([tiny_config()])
        finally:
            session.deactivate()
        # Actually simulated, no cache or memo hit consulted...
        assert executor.stats.simulated == 1
        assert executor.stats.disk_hits == 0
        assert executor.stats.memo_hits == 0
        # ...and still bit-identical to the clean result.
        assert diff_results(clean_result, sanitized_result) == ""

    def test_run_one_bypasses_warm_memo(self, tmp_path):
        executor = SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "c"))
        executor.run_one(tiny_config())
        session.activate(confirm=False)
        try:
            executor.run_one(tiny_config())
        finally:
            session.deactivate()
        assert executor.stats.simulated == 2
        assert executor.stats.memo_hits == 0

    def test_env_var_alone_triggers_the_bypass(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        clean = SweepExecutor(jobs=1, cache=cache)
        clean.run_many([tiny_config()])
        monkeypatch.setenv("REPRO_SIMSAN", "1")
        monkeypatch.setenv("REPRO_SIMSAN_CONFIRM", "0")
        executor = SweepExecutor(jobs=1, cache=cache)
        executor.run_many([tiny_config()])
        assert executor.stats.simulated == 1
        assert executor.stats.disk_hits == 0

    def test_duplicate_configs_sanitized_once_per_batch(self):
        """Within one request exact duplicates collapse — sanitizing
        the same config twice would double-count findings — but the
        memo dies with the batch."""
        session.activate(confirm=False)
        try:
            executor = SweepExecutor(jobs=1)
            results = executor.run_many([tiny_config(), tiny_config()])
            assert executor.stats.simulated == 1
            assert diff_results(results[0], results[1]) == ""
            executor.run_many([tiny_config()])
            assert executor.stats.simulated == 2
        finally:
            session.deactivate()
