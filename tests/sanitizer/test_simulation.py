"""Simulation-level sanitizer contract.

The load-bearing property: sanitizer-on results are bit-identical to
clean runs (the hooks only observe), which is what entitles the
differential confirmer to attribute any perturbed-run difference to
same-timestamp ordering rather than to the instrumentation itself.
"""

import pytest

from repro.core.config import paper_default_config
from repro.core.simulation import Simulation
from repro.sanitizer import checks, run_sanitized, session
from repro.sanitizer.core import Sanitizer, diff_results
from repro.sim.kernel import Environment, SimulationError


def tiny_config(algorithm="2pl", seed=11):
    """Small enough for a sub-second run, contended enough to produce
    same-timestamp activity on shared resources."""
    return paper_default_config(
        algorithm, think_time=1.0, seed=seed
    ).with_(duration=4.0, warmup=1.0).with_workload(num_terminals=6)


class TestBitIdentical:
    def test_sanitized_result_equals_clean_result(self):
        clean = Simulation(tiny_config()).run()
        sanitized, _ = run_sanitized(tiny_config(), confirm=False)
        assert diff_results(clean, sanitized) == ""

    def test_sanitized_result_equals_clean_result_heap(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_SCHED", "heap")
        clean = Simulation(tiny_config()).run()
        sanitized, _ = run_sanitized(tiny_config(), confirm=False)
        assert diff_results(clean, sanitized) == ""

    def test_sanitized_rerun_is_deterministic(self):
        _, first = run_sanitized(tiny_config(), confirm=False)
        _, second = run_sanitized(tiny_config(), confirm=False)
        assert [v.as_dict() for v in first] == [
            v.as_dict() for v in second
        ]


class TestConfirmer:
    def test_contended_run_produces_races(self):
        _, findings = run_sanitized(tiny_config(), confirm=False)
        races = [
            v for v in findings if v.rule_id == checks.SAME_TIME_RACE
        ]
        assert races, "expected same-timestamp activity in a real run"
        assert all("[unconfirmed]" in v.message for v in races)
        assert all(v.severity == "warning" for v in races)

    def test_confirmer_classifies_every_race(self):
        _, findings = run_sanitized(tiny_config(), confirm=True)
        races = [
            v for v in findings if v.rule_id == checks.SAME_TIME_RACE
        ]
        assert races
        for violation in races:
            benign = "[benign-commutative" in violation.message
            changing = "[outcome-changing" in violation.message
            assert benign != changing
            assert violation.severity == (
                "warning" if benign else "error"
            )

    def test_verdict_to_severity_mapping(self):
        """Unit-level pin of the classification table."""
        for verdict, severity, fragment in (
            (True, "error", "outcome-changing"),
            (False, "warning", "benign-commutative"),
        ):
            sanitizer = Sanitizer(confirm=False)
            sanitizer._races.append(
                {"path": "x.py", "line": 1, "message": "conflict"}
            )
            sanitizer._race_verdict = verdict
            [finding] = sanitizer.finalize()
            assert finding.severity == severity
            assert fragment in finding.message

    def test_perturbed_run_is_deterministic(self):
        """reverse-batch is a fixed alternative order, not a shuffle:
        the confirmer's verdict must be reproducible."""
        first = Simulation(tiny_config(), tiebreak="reverse-batch").run()
        second = Simulation(tiny_config(), tiebreak="reverse-batch").run()
        assert diff_results(first, second) == ""


class TestDiffResults:
    def test_identical_runs_diff_empty(self):
        first = Simulation(tiny_config()).run()
        second = Simulation(tiny_config()).run()
        assert diff_results(first, second) == ""

    def test_different_seeds_diff_names_fields(self):
        first = Simulation(tiny_config(seed=11)).run()
        second = Simulation(tiny_config(seed=12)).run()
        diff = diff_results(first, second)
        assert diff != ""


class TestModeSelection:
    def test_sanitizer_excludes_tiebreak(self):
        with pytest.raises(SimulationError):
            Environment(
                sanitizer=Sanitizer(confirm=False),
                tiebreak="reverse-batch",
            )

    def test_bogus_tiebreak_rejected(self):
        with pytest.raises(ValueError):
            Environment(tiebreak="random")

    def test_fifo_tiebreak_is_the_clean_loop(self):
        explicit = Simulation(tiny_config(), tiebreak="fifo").run()
        default = Simulation(tiny_config()).run()
        assert diff_results(explicit, default) == ""

    def test_env_var_auto_sanitizes_and_publishes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMSAN", "1")
        monkeypatch.setenv("REPRO_SIMSAN_CONFIRM", "0")
        Simulation(tiny_config()).run()
        assert session.session_runs() == 1
        assert session.session_findings()

    def test_explicit_sanitizer_does_not_publish(self):
        session.activate(confirm=False)
        try:
            sanitizer = Sanitizer(confirm=False)
            Simulation(tiny_config(), sanitizer=sanitizer).run()
        finally:
            session.deactivate()
        # The session counted nothing: an explicit instance is the
        # caller's to finalize.
        assert session.session_runs() == 0

    def test_sanitizer_false_forces_clean_run(self):
        session.activate(confirm=False)
        try:
            simulation = Simulation(tiny_config(), sanitizer=False)
            assert simulation.sanitizer is None
            simulation.run()
        finally:
            session.deactivate()
        assert session.session_runs() == 0
