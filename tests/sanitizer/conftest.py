"""Shared fixtures: keep the process-global sanitizer session clean.

Every test in this package runs with ``$REPRO_SIMSAN`` unset and the
session deactivated on exit, so a failing test can never leak sanitized
execution (and its cache bypass) into unrelated tests.
"""

import pytest

from repro.sanitizer import session


@pytest.fixture(autouse=True)
def clean_sanitizer_session(monkeypatch):
    monkeypatch.delenv("REPRO_SIMSAN", raising=False)
    monkeypatch.delenv("REPRO_SIMSAN_CONFIRM", raising=False)
    session.deactivate()
    session.reset_findings()
    yield
    session.deactivate()
    session.reset_findings()
