"""SARIF 2.1.0 reporter: structure, levels, suppressions."""

import json

from repro.lint.engine import LintReport
from repro.lint.registry import all_project_rules, all_rules
from repro.lint.reporters import render_sarif
from repro.lint.violations import Violation


def sarif_of(violations, rules=None):
    report = LintReport(violations=list(violations), files=1)
    return json.loads(render_sarif(report, rules))


def finding(**overrides):
    base = dict(
        rule_id="wall-clock",
        path="src/repro/core/x.py",
        line=3,
        col=5,
        message="m",
    )
    base.update(overrides)
    return Violation(**base)


class TestStructure:
    def test_top_level_shape(self):
        doc = sarif_of([finding()])
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-2.1.0.json")
        assert len(doc["runs"]) == 1
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "simlint"

    def test_every_registered_rule_is_described(self):
        doc = sarif_of([])
        descriptors = doc["runs"][0]["tool"]["driver"]["rules"]
        described = {d["id"] for d in descriptors}
        expected = {r.rule_id for r in all_rules()} | {
            r.rule_id for r in all_project_rules()
        }
        assert described == expected
        for descriptor in descriptors:
            assert descriptor["shortDescription"]["text"]
            assert descriptor["defaultConfiguration"]["level"] in (
                "error",
                "warning",
                "note",
            )

    def test_result_location_and_rule_index(self):
        doc = sarif_of([finding()])
        run = doc["runs"][0]
        (result,) = run["results"]
        assert result["ruleId"] == "wall-clock"
        index = result["ruleIndex"]
        assert (
            run["tool"]["driver"]["rules"][index]["id"]
            == "wall-clock"
        )
        location = result["locations"][0]["physicalLocation"]
        assert (
            location["artifactLocation"]["uri"]
            == "src/repro/core/x.py"
        )
        assert location["region"]["startLine"] == 3
        assert location["region"]["startColumn"] == 5

    def test_unknown_rule_id_has_no_rule_index(self):
        doc = sarif_of([finding(rule_id="parse-error")])
        (result,) = doc["runs"][0]["results"]
        assert result["ruleId"] == "parse-error"
        assert "ruleIndex" not in result


class TestLevelsAndSuppressions:
    def test_severity_maps_to_sarif_level(self):
        doc = sarif_of(
            [
                finding(line=1, severity="error"),
                finding(line=2, severity="warning"),
                finding(line=3, severity="info"),
            ]
        )
        levels = [
            r["level"] for r in doc["runs"][0]["results"]
        ]
        assert levels == ["error", "warning", "note"]

    def test_inline_suppression_marked_in_source(self):
        doc = sarif_of([finding(suppressed=True)])
        (result,) = doc["runs"][0]["results"]
        assert result["suppressions"][0]["kind"] == "inSource"

    def test_baseline_suppression_marked_external(self):
        doc = sarif_of([finding(baselined=True)])
        (result,) = doc["runs"][0]["results"]
        assert result["suppressions"][0]["kind"] == "external"

    def test_live_findings_carry_no_suppressions(self):
        doc = sarif_of([finding()])
        (result,) = doc["runs"][0]["results"]
        assert "suppressions" not in result


class TestSchemaValidation:
    def test_validates_against_sarif_schema_subset(self):
        """Hand-rolled structural validation of the SARIF invariants
        code scanners rely on (the full JSON schema is not vendored)."""
        doc = sarif_of(
            [
                finding(),
                finding(line=9, suppressed=True),
            ]
        )
        assert isinstance(doc["runs"], list)
        for run in doc["runs"]:
            driver = run["tool"]["driver"]
            assert isinstance(driver["name"], str)
            ids = [d["id"] for d in driver["rules"]]
            assert ids == sorted(ids)  # deterministic ordering
            for result in run["results"]:
                assert isinstance(result["message"]["text"], str)
                assert result["level"] in ("error", "warning", "note")
                for location in result["locations"]:
                    region = location["physicalLocation"]["region"]
                    assert region["startLine"] >= 1
                    assert region["startColumn"] >= 1

    def test_output_is_deterministic(self):
        violations = [finding(), finding(line=9)]
        first = render_sarif(
            LintReport(violations=violations, files=1)
        )
        second = render_sarif(
            LintReport(violations=list(violations), files=1)
        )
        assert first == second
