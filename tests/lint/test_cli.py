"""CLI tests: exit codes, formats, rule selection, cache flags."""

import json

import pytest

from repro.lint.cli import main

CLEAN = "def fine():\n    return 1\n"
DIRTY = "jobs[id(event)] = job\n"
SUPPRESSED = (
    "jobs[id(event)] = job  # simlint: ignore[id-keyed-container]\n"
)

RULE_IDS = [
    "float-time-equality",
    "id-keyed-container",
    "process-protocol",
    "unordered-set-iteration",
    "unseeded-global-random",
    "wall-clock",
]


@pytest.fixture
def tree(tmp_path):
    def build(files):
        root = tmp_path / "tree"
        for relative, source in files.items():
            path = root / relative
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)
        return root

    return build


def run_cli(args):
    return main([str(a) for a in args])


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        root = tree({"a.py": CLEAN})
        assert run_cli([root, "--no-cache"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violation_exits_one(self, tree, capsys):
        root = tree({"bad.py": DIRTY})
        assert run_cli([root, "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "id-keyed-container" in out
        assert "bad.py:1:" in out

    def test_suppressed_tree_exits_zero(self, tree, capsys):
        root = tree({"a.py": SUPPRESSED})
        assert run_cli([root, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "1 suppressed" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert run_cli([tmp_path / "nope", "--no-cache"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tree, capsys):
        root = tree({"a.py": CLEAN})
        code = run_cli(
            [root, "--no-cache", "--select", "no-such-rule"]
        )
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err


class TestJsonFormat:
    def test_json_payload(self, tree, capsys):
        root = tree({"bad.py": DIRTY, "ok.py": SUPPRESSED})
        code = run_cli([root, "--no-cache", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["files"] == 2
        assert payload["summary"]["violations"] == 1
        assert payload["summary"]["suppressed"] == 1
        assert payload["summary"]["ok"] is False
        by_suppressed = {
            v["suppressed"]: v for v in payload["violations"]
        }
        assert by_suppressed[False]["rule_id"] == "id-keyed-container"
        assert by_suppressed[True]["rule_id"] == "id-keyed-container"

    def test_json_clean(self, tree, capsys):
        root = tree({"a.py": CLEAN})
        assert run_cli([root, "--no-cache", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["ok"] is True
        assert payload["violations"] == []


class TestSelection:
    def test_select_limits_rules(self, tree, capsys):
        root = tree({"bad.py": DIRTY})
        code = run_cli(
            [root, "--no-cache", "--select", "wall-clock"]
        )
        assert code == 0  # id-keyed rule not selected
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert run_cli(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out


class TestGlobSelection:
    def test_select_glob_expands_to_matching_rules(
        self, tree, capsys
    ):
        root = tree({"bad.py": DIRTY})
        # id-keyed-container matches "id-*"; the finding survives.
        assert run_cli([root, "--no-cache", "--select", "id-*"]) == 1
        capsys.readouterr()

    def test_ignore_glob_drops_matching_rules(self, tree, capsys):
        root = tree({"bad.py": DIRTY})
        code = run_cli([root, "--no-cache", "--ignore", "id-*"])
        assert code == 0
        capsys.readouterr()

    def test_unmatched_ignore_pattern_exits_two(self, tree, capsys):
        root = tree({"a.py": CLEAN})
        code = run_cli([root, "--no-cache", "--ignore", "zzz-*"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_select_can_name_project_rules(self, tree, capsys):
        root = tree({"a.py": CLEAN})
        code = run_cli(
            [root, "--no-cache", "--select", "stream-registry"]
        )
        assert code == 0
        capsys.readouterr()

    def test_list_rules_includes_project_rules_and_severity(
        self, capsys
    ):
        assert run_cli(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "stream-registry",
            "message-handler-protocol",
            "cc-interface",
            "waitable-leak",
        ):
            assert rule_id in out
        assert "error" in out


class TestSarifFormat:
    def test_sarif_output_parses_and_exits_one_on_findings(
        self, tree, capsys
    ):
        root = tree({"bad.py": DIRTY})
        code = run_cli([root, "--no-cache", "--format", "sarif"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == [
            "id-keyed-container"
        ]


class TestBaselineFlags:
    def test_baseline_waives_inventoried_findings(
        self, tree, tmp_path, capsys
    ):
        root = tree({"bad.py": DIRTY})
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "format": 1,
                    "entries": [
                        {
                            "path": "tree/bad.py",
                            "rule": "id-keyed-container",
                            "count": 1,
                            "reason": "legacy, tracked in #42",
                        }
                    ],
                }
            )
        )
        code = run_cli(
            [root, "--no-cache", "--baseline", baseline]
        )
        assert code == 0
        capsys.readouterr()

    def test_new_finding_fails_despite_baseline(
        self, tree, tmp_path, capsys
    ):
        root = tree({"bad.py": DIRTY + DIRTY})  # two findings
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "format": 1,
                    "entries": [
                        {
                            "path": "tree/bad.py",
                            "rule": "id-keyed-container",
                            "count": 1,
                            "reason": "only one was blessed",
                        }
                    ],
                }
            )
        )
        code = run_cli(
            [root, "--no-cache", "--baseline", baseline]
        )
        assert code == 1
        capsys.readouterr()

    def test_stale_baseline_entry_fails_run(
        self, tree, tmp_path, capsys
    ):
        root = tree({"a.py": CLEAN})
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "format": 1,
                    "entries": [
                        {
                            "path": "tree/a.py",
                            "rule": "id-keyed-container",
                            "count": 1,
                            "reason": "fixed meanwhile",
                        }
                    ],
                }
            )
        )
        code = run_cli(
            [root, "--no-cache", "--baseline", baseline]
        )
        assert code == 1
        assert "stale baseline" in capsys.readouterr().out

    def test_corrupt_baseline_exits_two(
        self, tree, tmp_path, capsys
    ):
        root = tree({"a.py": CLEAN})
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{ nope")
        code = run_cli(
            [root, "--no-cache", "--baseline", baseline]
        )
        assert code == 2
        assert "baseline" in capsys.readouterr().err

    def test_update_baseline_inventories_findings(
        self, tree, tmp_path, capsys
    ):
        root = tree({"bad.py": DIRTY})
        baseline = tmp_path / "baseline.json"
        code = run_cli(
            [
                root,
                "--no-cache",
                "--baseline",
                baseline,
                "--update-baseline",
            ]
        )
        assert code == 0
        capsys.readouterr()
        entries = json.loads(baseline.read_text())["entries"]
        assert len(entries) == 1
        assert entries[0]["rule"] == "id-keyed-container"
        # And the freshly written baseline makes the tree pass.
        assert (
            run_cli([root, "--no-cache", "--baseline", baseline])
            == 0
        )
        capsys.readouterr()


class TestCacheFlags:
    def test_cache_file_roundtrip(self, tree, tmp_path, capsys):
        root = tree({"a.py": CLEAN, "bad.py": DIRTY})
        cache_file = tmp_path / "lint-cache.json"
        first = run_cli([root, "--cache-file", cache_file])
        assert first == 1
        assert cache_file.exists()
        capsys.readouterr()

        second = run_cli([root, "--cache-file", cache_file])
        assert second == 1
        assert "[2 cached]" in capsys.readouterr().out

    def test_show_suppressed(self, tree, capsys):
        root = tree({"a.py": SUPPRESSED})
        run_cli([root, "--no-cache", "--show-suppressed"])
        assert "(suppressed)" in capsys.readouterr().out
