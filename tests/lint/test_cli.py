"""CLI tests: exit codes, formats, rule selection, cache flags."""

import json

import pytest

from repro.lint.cli import main

CLEAN = "def fine():\n    return 1\n"
DIRTY = "jobs[id(event)] = job\n"
SUPPRESSED = (
    "jobs[id(event)] = job  # simlint: ignore[id-keyed-container]\n"
)

RULE_IDS = [
    "float-time-equality",
    "id-keyed-container",
    "process-protocol",
    "unordered-set-iteration",
    "unseeded-global-random",
    "wall-clock",
]


@pytest.fixture
def tree(tmp_path):
    def build(files):
        root = tmp_path / "tree"
        for relative, source in files.items():
            path = root / relative
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)
        return root

    return build


def run_cli(args):
    return main([str(a) for a in args])


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        root = tree({"a.py": CLEAN})
        assert run_cli([root, "--no-cache"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violation_exits_one(self, tree, capsys):
        root = tree({"bad.py": DIRTY})
        assert run_cli([root, "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "id-keyed-container" in out
        assert "bad.py:1:" in out

    def test_suppressed_tree_exits_zero(self, tree, capsys):
        root = tree({"a.py": SUPPRESSED})
        assert run_cli([root, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "1 suppressed" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert run_cli([tmp_path / "nope", "--no-cache"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tree, capsys):
        root = tree({"a.py": CLEAN})
        code = run_cli(
            [root, "--no-cache", "--select", "no-such-rule"]
        )
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err


class TestJsonFormat:
    def test_json_payload(self, tree, capsys):
        root = tree({"bad.py": DIRTY, "ok.py": SUPPRESSED})
        code = run_cli([root, "--no-cache", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["files"] == 2
        assert payload["summary"]["violations"] == 1
        assert payload["summary"]["suppressed"] == 1
        assert payload["summary"]["ok"] is False
        by_suppressed = {
            v["suppressed"]: v for v in payload["violations"]
        }
        assert by_suppressed[False]["rule_id"] == "id-keyed-container"
        assert by_suppressed[True]["rule_id"] == "id-keyed-container"

    def test_json_clean(self, tree, capsys):
        root = tree({"a.py": CLEAN})
        assert run_cli([root, "--no-cache", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["ok"] is True
        assert payload["violations"] == []


class TestSelection:
    def test_select_limits_rules(self, tree, capsys):
        root = tree({"bad.py": DIRTY})
        code = run_cli(
            [root, "--no-cache", "--select", "wall-clock"]
        )
        assert code == 0  # id-keyed rule not selected
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert run_cli(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out


class TestCacheFlags:
    def test_cache_file_roundtrip(self, tree, tmp_path, capsys):
        root = tree({"a.py": CLEAN, "bad.py": DIRTY})
        cache_file = tmp_path / "lint-cache.json"
        first = run_cli([root, "--cache-file", cache_file])
        assert first == 1
        assert cache_file.exists()
        capsys.readouterr()

        second = run_cli([root, "--cache-file", cache_file])
        assert second == 1
        assert "[2 cached]" in capsys.readouterr().out

    def test_show_suppressed(self, tree, capsys):
        root = tree({"a.py": SUPPRESSED})
        run_cli([root, "--no-cache", "--show-suppressed"])
        assert "(suppressed)" in capsys.readouterr().out
