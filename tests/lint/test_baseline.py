"""Baseline add/expire semantics and CLI integration."""

import json

import pytest

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.violations import Violation


def finding(path="src/repro/core/x.py", rule="wall-clock", line=3):
    return Violation(
        rule_id=rule, path=path, line=line, col=1, message="m"
    )


class TestMatching:
    def test_suffix_matches_on_component_boundaries(self):
        entry = BaselineEntry(
            path="repro/core/x.py", rule="wall-clock", count=1,
            reason="r",
        )
        assert entry.matches(finding("src/repro/core/x.py"))
        assert entry.matches(finding("repro/core/x.py"))
        # "macro/core/x.py" ends with "ro/core/x.py" but not on a
        # component boundary — must not match.
        assert not entry.matches(finding("src/macro_repro/core/x.py"))
        assert not entry.matches(finding("src/repro/core/y.py"))

    def test_rule_must_match(self):
        entry = BaselineEntry(
            path="repro/core/x.py", rule="wall-clock", count=1,
            reason="r",
        )
        assert not entry.matches(
            finding(rule="unordered-set-iteration")
        )


class TestApply:
    def test_waives_up_to_count_and_reports_overflow(self):
        baseline = Baseline(
            [
                BaselineEntry(
                    path="repro/core/x.py", rule="wall-clock",
                    count=2, reason="r",
                )
            ]
        )
        violations = [finding(line=n) for n in (1, 2, 3)]
        applied, stale = baseline.apply(violations)
        assert [v.baselined for v in applied] == [True, True, False]
        assert stale == []

    def test_stale_entry_reported_when_code_got_cleaner(self):
        baseline = Baseline(
            [
                BaselineEntry(
                    path="repro/core/x.py", rule="wall-clock",
                    count=2, reason="r",
                )
            ]
        )
        applied, stale = baseline.apply([finding(line=1)])
        assert [v.baselined for v in applied] == [True]
        assert len(stale) == 1
        assert stale[0].count == 2

    def test_suppressed_findings_do_not_consume_budget(self):
        baseline = Baseline(
            [
                BaselineEntry(
                    path="repro/core/x.py", rule="wall-clock",
                    count=1, reason="r",
                )
            ]
        )
        suppressed = finding(line=1).as_suppressed()
        live = finding(line=2)
        applied, stale = baseline.apply([suppressed, live])
        assert applied[0].suppressed and not applied[0].baselined
        assert applied[1].baselined
        assert stale == []


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        original = Baseline(
            [
                BaselineEntry(
                    path="repro/a.py", rule="wall-clock", count=1,
                    reason="justified",
                )
            ]
        )
        original.write(path)
        loaded = Baseline.load(path)
        assert loaded.entries == original.entries

    def test_from_violations_counts_live_findings_only(self):
        violations = [
            finding(line=1),
            finding(line=2),
            finding(line=3).as_suppressed(),
            finding(path="src/repro/core/y.py", rule="id-keyed-container"),
        ]
        baseline = Baseline.from_violations(violations, reason="r")
        as_pairs = {
            (e.path, e.rule): e.count for e in baseline.entries
        }
        assert as_pairs == {
            ("src/repro/core/x.py", "wall-clock"): 2,
            ("src/repro/core/y.py", "id-keyed-container"): 1,
        }

    @pytest.mark.parametrize(
        "payload",
        [
            "not json at all",
            '{"format": 99, "entries": []}',
            '{"entries": []}',
            '{"format": 1, "entries": [{"path": "x"}]}',
        ],
    )
    def test_malformed_baselines_raise(self, tmp_path, payload):
        path = tmp_path / "baseline.json"
        path.write_text(payload, "utf-8")
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValueError):
            Baseline.load(tmp_path / "nope.json")


class TestCommittedBaseline:
    def test_committed_baseline_parses(self):
        from repro.lint.baseline import default_baseline_path

        baseline = Baseline.load(default_baseline_path())
        # Every committed waiver must carry a justification.
        for entry in baseline.entries:
            assert entry.reason.strip(), (
                f"baseline entry {entry.path}:{entry.rule} has no "
                "justification"
            )

    def test_committed_baseline_is_sorted_json(self):
        from repro.lint.baseline import default_baseline_path

        raw = json.loads(default_baseline_path().read_text("utf-8"))
        entries = raw["entries"]
        keys = [(e["path"], e["rule"]) for e in entries]
        assert keys == sorted(keys)
