"""The repo must lint clean — CI enforces "no new violations".

This is the self-application gate: running simlint over ``src``,
``benchmarks``, and ``tests`` must produce zero unsuppressed
violations, and injecting any rule's positive fixture must break that
state (proving the gate actually bites).
"""

import json
from pathlib import Path

from repro.lint.engine import lint_paths
from repro.lint.reporters import render_text

REPO_ROOT = Path(__file__).resolve().parents[2]
LINTED_TREES = ("src", "benchmarks", "tests")


def test_repo_is_violation_free():
    report = lint_paths([REPO_ROOT / tree for tree in LINTED_TREES])
    assert report.files > 100  # sanity: the walk found the repo
    assert report.ok, "\n" + render_text(report)


def test_known_suppressions_are_inventoried():
    """The waiver list is part of the reviewed state: additions must
    show up here (and be justified in the code)."""
    report = lint_paths([REPO_ROOT / tree for tree in LINTED_TREES])
    waivers = sorted(
        (Path(v.path).name, v.rule_id) for v in report.suppressed
    )
    assert waivers == (
        # Serialization-audit loops accumulate into sets (order-free).
        [("audit.py", "unordered-dict-iteration")] * 2
        # The kernel's timestamp comparisons need no waivers anymore:
        # float-time-equality v2 proves them pure copies of scheduled
        # values and discharges them through the dataflow.
        # Lock-table iteration in grant order is documented semantics
        # (conflict sets and wait-for edges follow grant history).
        + [("locks.py", "unordered-dict-iteration")] * 3
        + [("transaction_manager.py", "resident-terminal-process")]
    )


def test_injected_fixture_breaks_the_gate(tmp_path):
    """End-to-end: dropping one bad file into a linted tree flips the
    report to failing (what the CI job runs, minus the process)."""
    staged = tmp_path / "src" / "repro" / "cc" / "victim.py"
    staged.parent.mkdir(parents=True)
    staged.write_text(
        "def pick(victims):\n"
        "    for txn in set(victims):\n"
        "        return txn\n"
    )
    report = lint_paths(
        [REPO_ROOT / tree for tree in LINTED_TREES]
        + [tmp_path / "src"]
    )
    assert not report.ok
    assert [v.rule_id for v in report.active] == [
        "unordered-set-iteration"
    ]


def test_injected_stream_typo_breaks_the_project_gate(tmp_path):
    """Whole-program gate: a misspelled stream name in a new module
    is caught against the real registry in ``sim/streams.py``."""
    staged = tmp_path / "src" / "repro" / "core" / "newcode.py"
    staged.parent.mkdir(parents=True)
    staged.write_text(
        "def setup(streams):\n"
        "    return streams.get('page-cuont')\n"
    )
    report = lint_paths(
        [REPO_ROOT / tree for tree in LINTED_TREES]
        + [tmp_path / "src"]
    )
    assert not report.ok
    assert [v.rule_id for v in report.active] == ["stream-registry"]


def test_cli_sarif_with_committed_baseline_exits_zero(capsys):
    """The acceptance command: SARIF over the full tree against the
    committed baseline, with all project rules present in the run."""
    from repro.lint.cli import main

    code = main(
        [str(REPO_ROOT / tree) for tree in LINTED_TREES]
        + ["--no-cache", "--format", "sarif"]
    )
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    rule_ids = {
        d["id"] for d in doc["runs"][0]["tool"]["driver"]["rules"]
    }
    assert {
        "stream-registry",
        "message-handler-protocol",
        "cc-interface",
        "waitable-leak",
    } <= rule_ids
