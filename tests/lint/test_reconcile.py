"""Static↔runtime reconciliation of the simsan race baseline.

Fixture trees carry their own ``repro/sanitizer/report.py`` and
``baseline.json`` so the rule reconciles against the *linted* tree,
never the installed package's committed baseline.
"""

import json
import textwrap

from repro.lint.baseline import Baseline
from repro.lint.engine import discover_files, lint_paths
from repro.lint.flow.reconcile import (
    derive_evidence,
    update_race_evidence,
)
from repro.lint.project import ProjectModel
from repro.lint.registry import get_rule

from tests.lint.test_project import build_package

RULE = "race-reconciliation"

#: A module whose code reaches two shared-state kinds: it draws from a
#: stream and runs the dispatch loop.
WORKER = """
def boot(env, streams):
    think = streams.exponential("think", 1.0)
    env.run(think)
"""

SANITIZER_STUB = """
from pathlib import Path

def default_baseline_path():
    return Path(__file__).parent / "baseline.json"
"""


def seeded_tree(tmp_path, entries):
    root = build_package(
        tmp_path,
        {
            "repro/sim/worker.py": WORKER,
            "repro/sanitizer/report.py": SANITIZER_STUB,
        },
    )
    baseline = root / "repro" / "sanitizer" / "baseline.json"
    baseline.write_text(
        json.dumps({"format": 1, "entries": entries}) + "\n",
        "utf-8",
    )
    return root


def reconcile_hits(root):
    report = lint_paths(
        [root], rules=[], project_rules=[get_rule(RULE)]
    )
    return [v for v in report.violations if v.rule_id == RULE]


ENTRY = {
    "path": "repro/sim/worker.py",
    "rule": "same-time-race",
    "count": 1,
    "reason": "benign FIFO tie-break",
}


class TestDeriveEvidence:
    def test_kinds_and_witnesses(self, tmp_path):
        root = seeded_tree(tmp_path, [ENTRY])
        model = ProjectModel.build(discover_files([root]))
        module = model.modules["repro.sim.worker"]
        assert derive_evidence(model, module) == [
            "dispatch via repro.sim.worker.boot",
            "stream via repro.sim.worker.boot",
        ]

    def test_follows_calls_and_constructors(self, tmp_path):
        root = build_package(
            tmp_path,
            {
                "repro/sim/disks.py": """
                class Disk:
                    def access(self, san):
                        san.write(("disk", self))
                """,
                "repro/sim/node.py": """
                from repro.sim.disks import Disk

                def build(count):
                    return [Disk() for _ in range(count)]
                """,
            },
        )
        model = ProjectModel.build(discover_files([root]))
        module = model.modules["repro.sim.node"]
        # The Disk instances live in a list comprehension the call
        # graph cannot type; the constructor reference still pulls
        # Disk's methods into reach.
        assert derive_evidence(model, module) == [
            "disk via repro.sim.disks.Disk.access",
        ]


class TestReconciliationRule:
    def test_entry_without_evidence_fails(self, tmp_path):
        root = seeded_tree(tmp_path, [ENTRY])
        hits = reconcile_hits(root)
        assert len(hits) == 1
        assert "no static evidence" in hits[0].message
        assert hits[0].severity == "error"

    def test_entry_with_current_evidence_passes(self, tmp_path):
        entry = dict(
            ENTRY,
            evidence=[
                "dispatch via repro.sim.worker.boot",
                "stream via repro.sim.worker.boot",
            ],
        )
        root = seeded_tree(tmp_path, [entry])
        assert not reconcile_hits(root)

    def test_new_reachable_kind_fails_as_stale(self, tmp_path):
        # Evidence recorded before the module learned to post over
        # the network: the new reachable kind must fail the lint.
        entry = dict(
            ENTRY,
            evidence=[
                "dispatch via repro.sim.worker.boot",
                "stream via repro.sim.worker.boot",
            ],
        )
        root = seeded_tree(tmp_path, [entry])
        worker = root / "repro" / "sim" / "worker.py"
        worker.write_text(
            worker.read_text("utf-8")
            + textwrap.dedent(
                """
                def announce(network, node, handler):
                    network.post(node, node, handler, "up")
                """
            ),
            "utf-8",
        )
        hits = reconcile_hits(root)
        assert len(hits) == 1
        assert "new statically-reachable shared state" in hits[0].message
        assert "net via repro.sim.worker.announce" in hits[0].message

    def test_tree_without_sanitizer_is_skipped(self, tmp_path):
        root = build_package(
            tmp_path, {"repro/sim/worker.py": WORKER}
        )
        assert not reconcile_hits(root)


class TestUpdateRoundTrip:
    def test_update_writes_evidence_that_reconciles(self, tmp_path):
        root = seeded_tree(tmp_path, [ENTRY])
        baseline_path = (
            root / "repro" / "sanitizer" / "baseline.json"
        )
        model = ProjectModel.build(discover_files([root]))
        changed = update_race_evidence(model, baseline_path)
        assert changed == 1
        loaded = Baseline.load(baseline_path)
        assert loaded.entries[0].evidence == (
            "dispatch via repro.sim.worker.boot",
            "stream via repro.sim.worker.boot",
        )
        assert loaded.entries[0].reason == ENTRY["reason"]
        # And the rule is now satisfied.
        assert not reconcile_hits(root)
        # Idempotent: a second update changes nothing.
        assert update_race_evidence(model, baseline_path) == 0

    def test_cli_flag_updates_the_tree_baseline(self, tmp_path):
        from repro.lint.cli import main

        root = seeded_tree(tmp_path, [ENTRY])
        assert main([str(root), "--update-race-evidence"]) == 0
        baseline_path = (
            root / "repro" / "sanitizer" / "baseline.json"
        )
        assert Baseline.load(baseline_path).entries[0].evidence

    def test_cli_flag_errors_without_a_tree_baseline(self, tmp_path):
        from repro.lint.cli import main

        root = build_package(
            tmp_path, {"repro/sim/worker.py": WORKER}
        )
        assert main([str(root), "--update-race-evidence"]) == 2
