"""Whole-program layer: symbol table, call graph, project rules.

Fixture packages are built under ``tmp_path`` with a real ``repro/``
package directory so the project rules' path scoping applies to them
exactly as it does to the shipped tree, and so
:func:`~repro.lint.project.module_name_for` derives the same dotted
module names.
"""

import textwrap

import pytest

from repro.lint.engine import discover_files, lint_paths
from repro.lint.project import (
    CCInterfaceRule,
    MessageHandlerRule,
    ProjectModel,
    StreamRegistryRule,
    WaitableLeakRule,
    module_name_for,
)


def build_package(tmp_path, files):
    """Write ``files`` (relative path -> source) under a fixture root,
    auto-creating ``__init__.py`` so every directory is a package."""
    root = tmp_path / "pkg"
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), "utf-8")
        parent = path.parent
        while parent != root:  # the root itself stays a plain dir
            marker = parent / "__init__.py"
            if not marker.exists():
                marker.write_text("", "utf-8")
            parent = parent.parent
    return root


def model_of(tmp_path, files):
    root = build_package(tmp_path, files)
    return ProjectModel.build(discover_files([root]))


def run_rule(tmp_path, rule, files):
    root = build_package(tmp_path, files)
    report = lint_paths([root], rules=[], project_rules=[rule])
    return report.violations


# ======================================================================
# Symbol table & call graph
# ======================================================================


class TestSymbolTable:
    def test_module_names_follow_package_layout(self, tmp_path):
        model = model_of(
            tmp_path,
            {
                "repro/core/network.py": "x = 1\n",
                "repro/__init__.py": "",
            },
        )
        assert "repro.core.network" in model.modules
        assert "repro.core" in model.modules  # the __init__.py
        assert "repro" in model.modules

    def test_module_name_for_stops_outside_packages(self, tmp_path):
        root = build_package(
            tmp_path, {"repro/sim/streams.py": "x = 1\n"}
        )
        path = root / "repro" / "sim" / "streams.py"
        assert module_name_for(path) == "repro.sim.streams"

    def test_classes_methods_and_cross_module_bases(self, tmp_path):
        model = model_of(
            tmp_path,
            {
                "repro/base.py": """
                    class Base:
                        def ping(self):
                            return 1
                """,
                "repro/leaf.py": """
                    from repro.base import Base

                    class Leaf(Base):
                        def pong(self):
                            self.state = {}
                            return 2
                """,
            },
        )
        leaf = model.classes["repro.leaf.Leaf"]
        assert leaf.bases == ("Base",)
        base = model.base_classes(leaf)
        assert [c.qualname for c in base] == ["repro.base.Base"]
        # Inherited method resolves through the chain.
        ping = model.resolve_method(leaf, "ping")
        assert ping is not None
        assert ping.qualname == "repro.base.Base.ping"
        # Instance attributes are collected from method bodies.
        assert "state" in leaf.instance_attrs

    def test_mro_chain_survives_base_cycles(self, tmp_path):
        model = model_of(
            tmp_path,
            {
                "repro/cycle.py": """
                    class A(B):
                        pass

                    class B(A):
                        pass
                """,
            },
        )
        a = model.classes["repro.cycle.A"]
        chain = model.mro_chain(a)  # must terminate
        assert {c.name for c in chain} == {"A", "B"}

    def test_call_graph_resolves_names_and_self_methods(
        self, tmp_path
    ):
        model = model_of(
            tmp_path,
            {
                "repro/calls.py": """
                    def helper():
                        return 1

                    class Worker:
                        def run(self):
                            helper()
                            self.step()
                            mystery.call()

                        def step(self):
                            pass
                """,
            },
        )
        graph = model.call_graph()
        assert graph["repro.calls.Worker.run"] == frozenset(
            {"repro.calls.helper", "repro.calls.Worker.step"}
        )

    def test_stream_registry_extracted_statically(self, tmp_path):
        model = model_of(
            tmp_path,
            {
                "repro/sim/streams.py": """
                    def register_stream(name, description=""):
                        return name

                    register_stream("page-count", "pages per txn")
                    register_stream("think-{terminal}")
                """,
            },
        )
        assert model.stream_registry() == [
            "page-count",
            "think-{terminal}",
        ]


# ======================================================================
# stream-registry
# ======================================================================

_STREAMS_MODULE = """
    def register_stream(name, description=""):
        return name

    register_stream("page-count")
    register_stream("think-{terminal}")
"""

_ROUTER_STREAMS_MODULE = """
    def register_stream(name, description=""):
        return name

    register_stream("page-skew")
    register_stream("router-explore")
    register_stream("router-choice")
"""


class TestStreamRegistry:
    def test_misspelled_stream_name_is_one_error(self, tmp_path):
        violations = run_rule(
            tmp_path,
            StreamRegistryRule(),
            {
                "repro/sim/streams.py": _STREAMS_MODULE,
                "repro/core/workload.py": """
                    def setup(streams):
                        return streams.get("page-cuont")
                """,
            },
        )
        assert len(violations) == 1
        (violation,) = violations
        assert violation.rule_id == "stream-registry"
        assert violation.severity == "error"
        assert "page-cuont" in violation.message

    def test_registered_exact_and_prefixed_draws_pass(self, tmp_path):
        violations = run_rule(
            tmp_path,
            StreamRegistryRule(),
            {
                "repro/sim/streams.py": _STREAMS_MODULE,
                "repro/core/workload.py": """
                    def setup(streams, terminal):
                        a = streams.get("page-count")
                        b = streams.get(f"think-{terminal}")
                        return a, b
                """,
            },
        )
        assert violations == []

    def test_typoed_fstring_head_is_flagged(self, tmp_path):
        violations = run_rule(
            tmp_path,
            StreamRegistryRule(),
            {
                "repro/sim/streams.py": _STREAMS_MODULE,
                "repro/core/workload.py": """
                    def setup(streams, terminal):
                        return streams.get(f"thinkk-{terminal}")
                """,
            },
        )
        assert [v.rule_id for v in violations] == ["stream-registry"]

    def test_unregistered_router_stream_is_one_error(self, tmp_path):
        """The ``router-*`` family is a set of discrete registered
        names, not a pattern: a draw from an uninvented sibling
        (``router-tiebreak``) is the seeded violation."""
        violations = run_rule(
            tmp_path,
            StreamRegistryRule(),
            {
                "repro/sim/streams.py": _ROUTER_STREAMS_MODULE,
                "repro/router/classifier.py": """
                    def choose(streams):
                        return streams.get("router-tiebreak")
                """,
            },
        )
        assert len(violations) == 1
        (violation,) = violations
        assert violation.rule_id == "stream-registry"
        assert "router-tiebreak" in violation.message
        assert violation.path.endswith("repro/router/classifier.py")

    def test_registered_router_streams_pass(self, tmp_path):
        violations = run_rule(
            tmp_path,
            StreamRegistryRule(),
            {
                "repro/sim/streams.py": _ROUTER_STREAMS_MODULE,
                "repro/router/classifier.py": """
                    def choose(streams):
                        coin = streams.get("router-explore")
                        pick = streams.get("router-choice")
                        return coin, pick
                """,
            },
        )
        assert violations == []

    def test_dynamic_names_are_never_flagged(self, tmp_path):
        violations = run_rule(
            tmp_path,
            StreamRegistryRule(),
            {
                "repro/sim/streams.py": _STREAMS_MODULE,
                "repro/core/workload.py": """
                    def setup(streams, name):
                        return streams.get(name)
                """,
            },
        )
        assert violations == []

    def test_no_registry_in_model_means_no_findings(self, tmp_path):
        violations = run_rule(
            tmp_path,
            StreamRegistryRule(),
            {
                "repro/core/workload.py": """
                    def setup(streams):
                        return streams.get("anything-goes")
                """,
            },
        )
        assert violations == []


# ======================================================================
# message-handler-protocol
# ======================================================================


class TestMessageHandler:
    def test_bad_post_handler_is_one_error(self, tmp_path):
        violations = run_rule(
            tmp_path,
            MessageHandlerRule(),
            {
                "repro/core/manager.py": """
                    class Manager:
                        def send(self, network):
                            network.post(0, 1, self._deliver, "msg")

                        def _deliver(self, payload, extra):
                            pass
                """,
            },
        )
        assert len(violations) == 1
        (violation,) = violations
        assert violation.rule_id == "message-handler-protocol"
        assert violation.severity == "error"
        assert "_deliver" in violation.message

    def test_unary_method_lambda_and_none_pass(self, tmp_path):
        violations = run_rule(
            tmp_path,
            MessageHandlerRule(),
            {
                "repro/core/manager.py": """
                    class Manager:
                        def send(self, network):
                            network.post(0, 1, self._deliver, "m")
                            network.post(
                                0, 1, lambda payload: None, "m",
                                on_drop=None,
                            )

                        def _deliver(self, payload):
                            pass
                """,
            },
        )
        assert violations == []

    def test_inherited_handler_resolves_through_chain(self, tmp_path):
        violations = run_rule(
            tmp_path,
            MessageHandlerRule(),
            {
                "repro/core/base.py": """
                    class Base:
                        def _deliver(self, payload):
                            pass
                """,
                "repro/core/manager.py": """
                    from repro.core.base import Base

                    class Manager(Base):
                        def send(self, network):
                            network.post(0, 1, self._deliver, "m")
                """,
            },
        )
        assert violations == []

    def test_unresolvable_self_handler_is_flagged(self, tmp_path):
        violations = run_rule(
            tmp_path,
            MessageHandlerRule(),
            {
                "repro/core/manager.py": """
                    class Manager:
                        def send(self, network):
                            network.post(0, 1, self._nope, "m")
                """,
            },
        )
        assert [v.rule_id for v in violations] == [
            "message-handler-protocol"
        ]
        assert "_nope" in violations[0].message

    def test_instance_attribute_handler_is_trusted(self, tmp_path):
        violations = run_rule(
            tmp_path,
            MessageHandlerRule(),
            {
                "repro/core/manager.py": """
                    class Manager:
                        def __init__(self, callback):
                            self._callback = callback

                        def send(self, network):
                            network.post(0, 1, self._callback, "m")
                """,
            },
        )
        assert violations == []

    def test_local_function_handler_arity_checked(self, tmp_path):
        violations = run_rule(
            tmp_path,
            MessageHandlerRule(),
            {
                "repro/cc/locks.py": """
                    class Manager:
                        def send(self, network):
                            def deliver(payload, who):
                                pass

                            network.post(0, 1, deliver, "m")
                """,
            },
        )
        assert [v.rule_id for v in violations] == [
            "message-handler-protocol"
        ]

    def test_bad_on_drop_lambda_is_flagged(self, tmp_path):
        violations = run_rule(
            tmp_path,
            MessageHandlerRule(),
            {
                "repro/core/manager.py": """
                    class Manager:
                        def send(self, network):
                            network.post(
                                0, 1, lambda p: None, "m",
                                on_drop=lambda: None,
                            )
                """,
            },
        )
        assert len(violations) == 1
        assert "on_drop" in violations[0].message

    def test_non_network_post_receivers_ignored(self, tmp_path):
        violations = run_rule(
            tmp_path,
            MessageHandlerRule(),
            {
                "repro/core/manager.py": """
                    class Manager:
                        def send(self, queue):
                            queue.post(0, 1, self._nope, "m")
                """,
            },
        )
        assert violations == []


# ======================================================================
# cc-interface
# ======================================================================

_CC_BASE = """
    from abc import abstractmethod

    class NodeCCManager:
        @abstractmethod
        def read_request(self, cohort, page):
            ...

        @abstractmethod
        def commit(self, cohort):
            ...

        def crash_reset(self):
            pass
"""


class TestCCInterface:
    def test_missing_crash_reset_is_one_error(self, tmp_path):
        violations = run_rule(
            tmp_path,
            CCInterfaceRule(),
            {
                "repro/cc/base.py": _CC_BASE,
                "repro/cc/algo.py": """
                    from repro.cc.base import NodeCCManager

                    class ShinyManager(NodeCCManager):
                        def read_request(self, cohort, page):
                            return 1

                        def commit(self, cohort):
                            return ()
                """,
            },
        )
        assert len(violations) == 1
        (violation,) = violations
        assert violation.rule_id == "cc-interface"
        assert violation.severity == "error"
        assert "crash_reset" in violation.message
        assert violation.path.endswith("repro/cc/algo.py")

    def test_full_surface_passes(self, tmp_path):
        violations = run_rule(
            tmp_path,
            CCInterfaceRule(),
            {
                "repro/cc/base.py": _CC_BASE,
                "repro/cc/algo.py": """
                    from repro.cc.base import NodeCCManager

                    class ShinyManager(NodeCCManager):
                        def read_request(self, cohort, page):
                            return 1

                        def commit(self, cohort):
                            return ()

                        def crash_reset(self):
                            pass
                """,
            },
        )
        assert violations == []

    def test_only_leaves_are_checked(self, tmp_path):
        violations = run_rule(
            tmp_path,
            CCInterfaceRule(),
            {
                "repro/cc/base.py": _CC_BASE,
                "repro/cc/locking.py": """
                    from repro.cc.base import NodeCCManager

                    class LockingBase(NodeCCManager):
                        def read_request(self, cohort, page):
                            return 1

                        def crash_reset(self):
                            pass
                """,
                "repro/cc/leaf.py": """
                    from repro.cc.locking import LockingBase

                    class LeafManager(LockingBase):
                        def commit(self, cohort):
                            return ()
                """,
            },
        )
        # The intermediate LockingBase misses commit but is not a
        # leaf; the leaf completes the surface through the chain.
        assert violations == []

    def test_abstract_subclass_is_skipped(self, tmp_path):
        violations = run_rule(
            tmp_path,
            CCInterfaceRule(),
            {
                "repro/cc/base.py": _CC_BASE,
                "repro/cc/partial.py": """
                    from abc import abstractmethod
                    from repro.cc.base import NodeCCManager

                    class StillAbstract(NodeCCManager):
                        @abstractmethod
                        def validate(self, cohort):
                            ...
                """,
            },
        )
        assert violations == []

    def test_router_package_manager_missing_crash_reset(
        self, tmp_path
    ):
        """v2: CC classes living in ``repro/router/`` are covered too —
        a composite manager without an explicit crash_reset is the
        seeded violation for the extended include."""
        violations = run_rule(
            tmp_path,
            CCInterfaceRule(),
            {
                "repro/cc/base.py": _CC_BASE,
                "repro/router/dispatch.py": """
                    from repro.cc.base import NodeCCManager

                    class RoutedManager(NodeCCManager):
                        def read_request(self, cohort, page):
                            return 1

                        def commit(self, cohort):
                            return ()
                """,
            },
        )
        assert len(violations) == 1
        (violation,) = violations
        assert violation.rule_id == "cc-interface"
        assert "crash_reset" in violation.message
        assert violation.path.endswith("repro/router/dispatch.py")

    def test_router_package_full_surface_passes(self, tmp_path):
        violations = run_rule(
            tmp_path,
            CCInterfaceRule(),
            {
                "repro/cc/base.py": _CC_BASE,
                "repro/router/dispatch.py": """
                    from repro.cc.base import NodeCCManager

                    class RoutedManager(NodeCCManager):
                        def read_request(self, cohort, page):
                            return 1

                        def commit(self, cohort):
                            return ()

                        def crash_reset(self):
                            pass
                """,
            },
        )
        assert violations == []


# ======================================================================
# waitable-leak
# ======================================================================


class TestWaitableLeak:
    def test_non_waitable_yield_is_one_error(self, tmp_path):
        violations = run_rule(
            tmp_path,
            WaitableLeakRule(),
            {
                "repro/core/server.py": """
                    class Server:
                        def body(self):
                            yield self.env.timeout(1.0)
                            yield self._service_time()

                        def _service_time(self):
                            return 4.2
                """,
            },
        )
        assert len(violations) == 1
        (violation,) = violations
        assert violation.rule_id == "waitable-leak"
        assert violation.severity == "error"
        assert "_service_time" in violation.message

    def test_yielding_generator_call_is_flagged(self, tmp_path):
        violations = run_rule(
            tmp_path,
            WaitableLeakRule(),
            {
                "repro/core/server.py": """
                    class Server:
                        def body(self):
                            yield self.env.timeout(1.0)
                            yield self._sub_protocol()

                        def _sub_protocol(self):
                            yield self.env.timeout(2.0)
                """,
            },
        )
        assert len(violations) == 1
        assert "yield from" in violations[0].message

    def test_yield_from_and_unresolvable_calls_pass(self, tmp_path):
        violations = run_rule(
            tmp_path,
            WaitableLeakRule(),
            {
                "repro/core/server.py": """
                    class Server:
                        def body(self, mailbox):
                            yield self.env.timeout(1.0)
                            yield from self._sub_protocol()
                            yield mailbox.get()

                        def _sub_protocol(self):
                            yield self.env.timeout(2.0)
                """,
            },
        )
        assert violations == []

    def test_plain_generators_are_not_processes(self, tmp_path):
        violations = run_rule(
            tmp_path,
            WaitableLeakRule(),
            {
                "repro/core/util.py": """
                    def chunks(items):
                        for item in items:
                            yield transform(item)

                    def transform(item):
                        return item * 2
                """,
            },
        )
        assert violations == []

    def test_waitable_returning_helper_passes(self, tmp_path):
        violations = run_rule(
            tmp_path,
            WaitableLeakRule(),
            {
                "repro/core/server.py": """
                    class Server:
                        def body(self):
                            yield self.env.timeout(1.0)
                            yield self._request()

                        def _request(self):
                            event = self.env.event()
                            return event
                """,
            },
        )
        assert violations == []


# ======================================================================
# Engine integration
# ======================================================================


class TestEngineIntegration:
    def test_default_lint_paths_runs_project_rules(self, tmp_path):
        root = build_package(
            tmp_path,
            {
                "repro/sim/streams.py": _STREAMS_MODULE,
                "repro/core/workload.py": """
                    def setup(streams):
                        return streams.get("page-cuont")
                """,
            },
        )
        report = lint_paths([root])  # rules=None: everything runs
        assert "stream-registry" in {
            v.rule_id for v in report.violations
        }
        assert not report.ok

    def test_explicit_file_rules_skip_project_pass(self, tmp_path):
        root = build_package(
            tmp_path,
            {
                "repro/sim/streams.py": _STREAMS_MODULE,
                "repro/core/workload.py": """
                    def setup(streams):
                        return streams.get("page-cuont")
                """,
            },
        )
        report = lint_paths([root], rules=[])
        assert report.violations == []

    def test_inline_suppression_waives_project_finding(
        self, tmp_path
    ):
        root = build_package(
            tmp_path,
            {
                "repro/sim/streams.py": _STREAMS_MODULE,
                "repro/core/workload.py": (
                    "def setup(streams):\n"
                    "    return streams.get('page-cuont')"
                    "  # simlint: ignore[stream-registry]\n"
                ),
            },
        )
        report = lint_paths([root])
        assert report.ok
        assert [v.rule_id for v in report.suppressed] == [
            "stream-registry"
        ]


@pytest.mark.parametrize(
    "rule_id",
    [
        "stream-registry",
        "message-handler-protocol",
        "cc-interface",
        "waitable-leak",
    ],
)
def test_project_rules_are_registered(rule_id):
    from repro.lint.registry import all_project_rules

    assert rule_id in {r.rule_id for r in all_project_rules()}
