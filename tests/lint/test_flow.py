"""Differential tests for the flow engine (CFG / dataflow / taint).

The CFG tests compare :meth:`CFG.edge_labels` against *hand-derived*
edge sets for each control shape — branch, loop with break, try/finally
(normal and exceptional edges), try/except, return-through-finally,
generator — so a builder regression shows up as a set difference, not
as a downstream rule misfire.
"""

import ast
import textwrap

import pytest

from repro.lint.flow.cfg import build_cfg
from repro.lint.flow.dataflow import (
    ASSIGN,
    FunctionFlow,
    OPAQUE,
    PARAM,
)
from repro.lint.flow.taint import CleanTime, TimeTaint


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


def flow_of(source):
    tree = ast.parse(textwrap.dedent(source))
    return FunctionFlow(tree.body[0])


def node_by_label(cfg, label):
    for index in range(len(cfg)):
        if cfg.label(index) == label:
            return index
    raise AssertionError(f"no node labelled {label!r}")


# ======================================================================
# CFG differential tests
# ======================================================================


class TestCfgShapes:
    def test_branch(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        assert cfg.edge_labels(exceptional=False) == {
            ("entry", "If@3"),
            ("If@3", "Assign@4"),
            ("If@3", "Assign@6"),
            ("Assign@4", "Return@7"),
            ("Assign@6", "Return@7"),
            ("Return@7", "exit"),
        }
        assert cfg.edge_labels(exceptional=True) == set()

    def test_loop_with_break(self):
        cfg = cfg_of(
            """
            def f(xs):
                total = 0
                while xs:
                    total = total + 1
                    if total > 3:
                        break
                return total
            """
        )
        assert cfg.edge_labels(exceptional=False) == {
            ("entry", "Assign@3"),
            ("Assign@3", "While@4"),
            ("While@4", "Assign@5"),  # enter body
            ("While@4", "Return@8"),  # condition false
            ("Assign@5", "If@6"),
            ("If@6", "Break@7"),
            ("If@6", "While@4"),  # back edge (test false)
            ("Break@7", "Return@8"),
            ("Return@8", "exit"),
        }
        assert cfg.edge_labels(exceptional=True) == set()

    def test_try_finally(self):
        cfg = cfg_of(
            """
            def f(lock):
                try:
                    lock.acquire()
                finally:
                    lock.release()
                return True
            """
        )
        # Normal flow passes *through* the finally; the finally's
        # completion also has an exceptional continuation straight to
        # exit (entered with a pending exception).
        assert cfg.edge_labels(exceptional=False) == {
            ("entry", "Expr@4"),
            ("Expr@4", "finally@3"),  # normal fall-through
            ("finally@3", "Expr@6"),
            ("Expr@6", "Return@7"),
            ("Return@7", "exit"),
        }
        assert cfg.edge_labels(exceptional=True) == {
            ("Expr@6", "exit"),
        }

    def test_try_except(self):
        cfg = cfg_of(
            """
            def f(d):
                try:
                    v = d.load()
                except KeyError:
                    v = None
                return v
            """
        )
        assert cfg.edge_labels(exceptional=False) == {
            ("entry", "Assign@4"),
            ("except@5", "Assign@6"),
            ("Assign@4", "Return@7"),
            ("Assign@6", "Return@7"),
            ("Return@7", "exit"),
        }
        assert cfg.edge_labels(exceptional=True) == {
            ("Assign@4", "except@5"),
        }

    def test_return_routes_through_finally(self):
        cfg = cfg_of(
            """
            def f(lock):
                try:
                    return lock.get()
                finally:
                    lock.release()
            """
        )
        # The return's continuation is the finally; after the finally
        # completes, control leaves the function (the edge is both the
        # normal return continuation and the exceptional one, so it
        # classifies as normal).
        assert cfg.edge_labels(exceptional=False) == {
            ("entry", "Return@4"),
            ("Return@4", "finally@3"),
            ("finally@3", "Expr@6"),
            ("Expr@6", "exit"),
        }
        assert cfg.edge_labels(exceptional=True) == set()

    def test_generator_body_is_linear(self):
        cfg = cfg_of(
            """
            def f(env):
                t = env.timeout(1.0)
                got = yield t
                return got
            """
        )
        assert cfg.edge_labels(exceptional=False) == {
            ("entry", "Assign@3"),
            ("Assign@3", "Assign@4"),
            ("Assign@4", "Return@5"),
            ("Return@5", "exit"),
        }
        assert cfg.edge_labels(exceptional=True) == set()

    def test_reaches_exit_avoiding_honours_edge_classes(self):
        cfg = cfg_of(
            """
            def f(lock):
                try:
                    granted = lock.acquire()
                    lock.audit(granted)
                finally:
                    lock.release()
            """
        )
        acquire = node_by_label(cfg, "Assign@4")
        audit = node_by_label(cfg, "Expr@5")
        # Normal flow must pass the audit...
        assert not cfg.reaches_exit_avoiding(
            acquire, {audit}, include_exceptional=False
        )
        # ...but an exception between acquire and audit skips it.
        assert cfg.reaches_exit_avoiding(
            acquire, {audit}, include_exceptional=True
        )


# ======================================================================
# Reaching definitions
# ======================================================================


class TestReachingDefs:
    def test_branch_join_merges_both_definitions(self):
        flow = flow_of(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        ret = node_by_label(flow.cfg, "Return@7")
        defs = flow.rdefs.definitions_of("a", ret)
        assert sorted(d.kind for d in defs) == [ASSIGN, ASSIGN]
        assert sorted(d.value.value for d in defs) == [1, 2]

    def test_loop_carried_definition_reaches_header(self):
        flow = flow_of(
            """
            def f(xs):
                total = 0
                while xs:
                    total = total + 1
                return total
            """
        )
        ret = node_by_label(flow.cfg, "Return@6")
        defs = flow.rdefs.definitions_of("total", ret)
        assert len(defs) == 2  # initialization + loop body

    def test_parameters_define_at_entry(self):
        flow = flow_of(
            """
            def f(x, *rest, key=None):
                return x
            """
        )
        ret = node_by_label(flow.cfg, "Return@3")
        for var in ("x", "rest", "key"):
            defs = flow.rdefs.definitions_of(var, ret)
            assert [d.kind for d in defs] == [PARAM]

    def test_global_names_are_opaque(self):
        flow = flow_of(
            """
            def f():
                global counter
                counter = 1
                return counter
            """
        )
        ret = node_by_label(flow.cfg, "Return@5")
        defs = flow.rdefs.definitions_of("counter", ret)
        assert [d.kind for d in defs] == [OPAQUE]

    def test_tuple_unpacking_is_opaque(self):
        flow = flow_of(
            """
            def f(pair):
                a, b = pair
                return a
            """
        )
        ret = node_by_label(flow.cfg, "Return@4")
        defs = flow.rdefs.definitions_of("a", ret)
        assert [d.kind for d in defs] == [OPAQUE]


# ======================================================================
# Taint lattices
# ======================================================================


def taint_at_return(source, taint_class):
    flow = flow_of(source)
    tree = flow.cfg
    for index in range(len(tree)):
        stmt = tree.stmts[index]
        if isinstance(stmt, ast.Return):
            return taint_class(flow), stmt.value, index
    raise AssertionError("no return statement")


class TestTimeTaint:
    def test_arithmetic_on_time_taints(self):
        taint, expr, node = taint_at_return(
            """
            def f(env, delay):
                deadline = env.now + delay
                return deadline
            """,
            TimeTaint,
        )
        assert taint.tainted(expr, node)

    def test_pure_copy_is_untainted(self):
        taint, expr, node = taint_at_return(
            """
            def f(handle):
                snapshot = handle.time
                return snapshot
            """,
            TimeTaint,
        )
        assert not taint.tainted(expr, node)

    def test_store_kills_taint(self):
        # Writing a derived time into an attribute and reading it back
        # is a *stored schedule time* again (the kernel's handle.time).
        taint, expr, node = taint_at_return(
            """
            def f(self, env, delay):
                self.time = env.now + delay
                return self.time
            """,
            TimeTaint,
        )
        assert not taint.tainted(expr, node)


class TestCleanTime:
    def test_copy_chain_is_clean(self):
        flow = flow_of(
            """
            def f(self, top):
                now = self.now
                snapshot = now
                return snapshot
            """
        )
        clean = CleanTime(flow)
        ret = node_by_label(flow.cfg, "Return@5")
        stmt = flow.cfg.stmts[ret]
        assert clean.clean(stmt.value, ret)

    def test_arithmetic_is_not_clean(self):
        flow = flow_of(
            """
            def f(self):
                now = self.now + 1.0
                return now
            """
        )
        clean = CleanTime(flow)
        ret = node_by_label(flow.cfg, "Return@4")
        stmt = flow.cfg.stmts[ret]
        assert not clean.clean(stmt.value, ret)

    def test_parameters_are_not_clean(self):
        flow = flow_of(
            """
            def f(now):
                return now
            """
        )
        clean = CleanTime(flow)
        ret = node_by_label(flow.cfg, "Return@3")
        stmt = flow.cfg.stmts[ret]
        assert not clean.clean(stmt.value, ret)
