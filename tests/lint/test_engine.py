"""Engine tests: discovery, per-file caching, invalidation."""

import importlib.util
import json
import sys
import textwrap

import pytest

from repro.lint.cache import LintCache
from repro.lint.engine import discover_files, lint_paths
from repro.lint.registry import (
    _SOURCE_HASH_CACHE,
    all_rules,
    module_source_hash,
    rules_signature,
)

CLEAN = "def fine():\n    return 1\n"
DIRTY = "jobs[id(event)] = job\n"


def write_tree(root, files):
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


class TestDiscovery:
    def test_recursive_sorted_discovery(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "b/inner.py": CLEAN,
                "a.py": CLEAN,
                "b/__pycache__/junk.py": DIRTY,
                "notes.txt": "not python",
            },
        )
        files = discover_files([tmp_path])
        names = [f.relative_to(tmp_path).as_posix() for f in files]
        assert names == ["a.py", "b/inner.py"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            discover_files([tmp_path / "nope"])

    def test_duplicate_paths_deduplicated(self, tmp_path):
        write_tree(tmp_path, {"a.py": CLEAN})
        files = discover_files([tmp_path, tmp_path / "a.py"])
        assert len(files) == 1


class TestReport:
    def test_clean_tree_is_ok(self, tmp_path):
        write_tree(tmp_path, {"a.py": CLEAN})
        report = lint_paths([tmp_path])
        assert report.ok
        assert report.files == 1
        assert report.violations == []

    def test_violations_fail_the_report(self, tmp_path):
        write_tree(tmp_path, {"a.py": CLEAN, "bad.py": DIRTY})
        report = lint_paths([tmp_path])
        assert not report.ok
        assert [v.rule_id for v in report.active] == [
            "id-keyed-container"
        ]

    def test_suppressed_findings_keep_report_ok(self, tmp_path):
        source = (
            "jobs[id(event)] = job"
            "  # simlint: ignore[id-keyed-container]\n"
        )
        write_tree(tmp_path, {"a.py": source})
        report = lint_paths([tmp_path])
        assert report.ok
        assert len(report.suppressed) == 1


class TestCache:
    def test_second_run_hits_cache_with_identical_results(
        self, tmp_path
    ):
        root = write_tree(
            tmp_path / "tree", {"a.py": CLEAN, "bad.py": DIRTY}
        )
        cache_path = tmp_path / "cache.json"

        first = lint_paths([root], cache=LintCache(cache_path))
        assert first.cache_hits == 0
        assert cache_path.exists()

        second = lint_paths([root], cache=LintCache(cache_path))
        assert second.cache_hits == second.files == 2
        assert [v.as_dict() for v in second.violations] == [
            v.as_dict() for v in first.violations
        ]

    def test_edited_file_misses_cache(self, tmp_path):
        root = write_tree(tmp_path / "tree", {"a.py": CLEAN})
        cache_path = tmp_path / "cache.json"
        lint_paths([root], cache=LintCache(cache_path))

        (root / "a.py").write_text(DIRTY)
        report = lint_paths([root], cache=LintCache(cache_path))
        assert report.cache_hits == 0
        assert not report.ok

    def test_rule_set_change_invalidates(self, tmp_path):
        root = write_tree(tmp_path / "tree", {"bad.py": DIRTY})
        cache_path = tmp_path / "cache.json"
        lint_paths([root], cache=LintCache(cache_path))

        # A reduced rule set has a different signature: the cached
        # verdict for the full set must not be served for it.
        subset = [
            rule
            for rule in all_rules()
            if rule.rule_id != "id-keyed-container"
        ]
        assert rules_signature(subset) != rules_signature()
        report = lint_paths(
            [root], rules=subset, cache=LintCache(cache_path)
        )
        assert report.cache_hits == 0
        assert report.ok

    def test_cache_hit_rebinds_path(self, tmp_path):
        """Entries are content-keyed; a moved file must report its
        current location, not where the content was first seen."""
        root_a = write_tree(tmp_path / "a", {"bad.py": DIRTY})
        root_b = write_tree(tmp_path / "b", {"moved.py": DIRTY})
        cache_path = tmp_path / "cache.json"
        lint_paths([root_a], cache=LintCache(cache_path))

        report = lint_paths([root_b], cache=LintCache(cache_path))
        assert report.cache_hits == 1
        assert report.violations[0].path.endswith("b/moved.py")

    def test_corrupt_cache_recovers(self, tmp_path):
        root = write_tree(tmp_path / "tree", {"bad.py": DIRTY})
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{ not json")
        report = lint_paths([root], cache=LintCache(cache_path))
        assert not report.ok
        # And the rewritten cache is valid JSON again.
        assert json.loads(cache_path.read_text())["entries"]


_RULE_MODULE = """
    from repro.lint.registry import Rule


    class TempRule(Rule):
        rule_id = "temp-pass-statement"
        summary = "flags every pass statement"

        def check(self, tree, source, path):
            import ast

            return [
                self.violation(path, node)
                for node in ast.walk(tree)
                if isinstance(node, ast.Pass)
            ]
"""

_RULE_MODULE_REFORMATTED = """
    # A comment, and different spacing — same structure.
    from repro.lint.registry import Rule

    class TempRule(Rule):
        rule_id = "temp-pass-statement"
        summary = "flags every pass statement"
        def check(self, tree, source, path):
            import ast
            return [self.violation(path, node)
                for node in ast.walk(tree)
                if isinstance(node, ast.Pass)]
"""

_RULE_MODULE_EDITED = """
    from repro.lint.registry import Rule


    class TempRule(Rule):
        rule_id = "temp-pass-statement"
        summary = "flags every pass statement"

        def check(self, tree, source, path):
            import ast

            return [
                self.violation(path, node)
                for node in ast.walk(tree)
                if isinstance(node, (ast.Pass, ast.Break))
            ]
"""


def load_rule(path, module_name="temp_lint_rule"):
    """Import a rule class from a file the way a plugin would."""
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module  # inspect.getfile needs this
    spec.loader.exec_module(module)
    return module.TempRule()


class TestSourceHashHardening:
    """Cache keys cover rule *logic*, not rule-module formatting."""

    @pytest.fixture(autouse=True)
    def _clean_memo_and_modules(self):
        yield
        _SOURCE_HASH_CACHE.clear()
        sys.modules.pop("temp_lint_rule", None)

    def test_whitespace_only_edit_keeps_module_hash(self, tmp_path):
        path = tmp_path / "rule_module.py"
        path.write_text(textwrap.dedent(_RULE_MODULE))
        before = module_source_hash(str(path))
        _SOURCE_HASH_CACHE.clear()
        path.write_text(textwrap.dedent(_RULE_MODULE_REFORMATTED))
        assert module_source_hash(str(path)) == before

    def test_logic_edit_changes_module_hash(self, tmp_path):
        path = tmp_path / "rule_module.py"
        path.write_text(textwrap.dedent(_RULE_MODULE))
        before = module_source_hash(str(path))
        _SOURCE_HASH_CACHE.clear()
        path.write_text(textwrap.dedent(_RULE_MODULE_EDITED))
        assert module_source_hash(str(path)) != before

    def test_rule_logic_edit_busts_cache(self, tmp_path):
        """Editing a rule's code re-runs analysis even though neither
        the linted file nor the rule's declared version changed."""
        rule_path = tmp_path / "rule_module.py"
        rule_path.write_text(textwrap.dedent(_RULE_MODULE))
        root = write_tree(
            tmp_path / "tree", {"a.py": "def f():\n    pass\n"}
        )
        cache_path = tmp_path / "cache.json"

        rule = load_rule(rule_path)
        first = lint_paths(
            [root], rules=[rule], cache=LintCache(cache_path)
        )
        assert first.cache_hits == 0
        assert len(first.violations) == 1

        rule_path.write_text(textwrap.dedent(_RULE_MODULE_EDITED))
        _SOURCE_HASH_CACHE.clear()
        edited = load_rule(rule_path)
        assert edited.version == rule.version  # only the code moved
        second = lint_paths(
            [root], rules=[edited], cache=LintCache(cache_path)
        )
        assert second.cache_hits == 0

    def test_whitespace_rule_edit_is_served_from_cache(
        self, tmp_path
    ):
        rule_path = tmp_path / "rule_module.py"
        rule_path.write_text(textwrap.dedent(_RULE_MODULE))
        root = write_tree(
            tmp_path / "tree", {"a.py": "def f():\n    pass\n"}
        )
        cache_path = tmp_path / "cache.json"

        rule = load_rule(rule_path)
        lint_paths([root], rules=[rule], cache=LintCache(cache_path))

        rule_path.write_text(textwrap.dedent(_RULE_MODULE_REFORMATTED))
        _SOURCE_HASH_CACHE.clear()
        reformatted = load_rule(rule_path)
        report = lint_paths(
            [root],
            rules=[reformatted],
            cache=LintCache(cache_path),
        )
        assert report.cache_hits == 1


class TestParallelFilePass:
    def test_jobs_two_matches_serial_results(self, tmp_path):
        root = write_tree(
            tmp_path / "tree",
            {
                "a.py": CLEAN,
                "bad.py": DIRTY,
                "c.py": CLEAN,
                "d.py": DIRTY,
            },
        )
        serial = lint_paths([root], jobs=1)
        parallel = lint_paths([root], jobs=2)
        assert [v.as_dict() for v in parallel.violations] == [
            v.as_dict() for v in serial.violations
        ]
        assert parallel.files == serial.files == 4

    def test_parallel_results_populate_cache(self, tmp_path):
        root = write_tree(
            tmp_path / "tree", {"a.py": CLEAN, "bad.py": DIRTY}
        )
        cache_path = tmp_path / "cache.json"
        lint_paths([root], cache=LintCache(cache_path), jobs=2)
        warm = lint_paths([root], cache=LintCache(cache_path))
        assert warm.cache_hits == 2

    def test_bad_jobs_values_rejected(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path / "tree", {"a.py": CLEAN})
        with pytest.raises(ValueError):
            lint_paths([root], jobs=0)
        monkeypatch.setenv("REPRO_LINT_JOBS", "banana")
        with pytest.raises(ValueError):
            lint_paths([root])
