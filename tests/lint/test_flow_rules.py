"""Seeded fixtures for the four flow-sensitive rules.

Each rule gets (a) a fixture that must fire *exactly once*, (b) a
near-miss that must stay clean, and (c) the uniformity checks: inline
suppression, ``--select``, and the parallel file pass treat flow rules
exactly like every other rule.
"""

import textwrap

import pytest

from repro.lint.engine import lint_paths, lint_source
from repro.lint.registry import get_rule

from tests.lint.test_project import build_package

SIM_PATH = "repro/sim/fixture.py"
CC_PATH = "repro/cc/fixture.py"


def rule_hits(source, path, rule_id):
    source = textwrap.dedent(source)
    return [
        v
        for v in lint_source(source, path)
        if v.rule_id == rule_id and not v.suppressed
    ]


def project_hits(tmp_path, rule_id, files):
    root = build_package(tmp_path, files)
    report = lint_paths(
        [root],
        rules=[],
        project_rules=[get_rule(rule_id)],
    )
    return [
        v
        for v in report.violations
        if v.rule_id == rule_id and not v.suppressed
    ]


# ======================================================================
# waitable-escape (file rule)
# ======================================================================


class TestWaitableEscape:
    RULE = "waitable-escape"

    def test_fires_exactly_once_on_leaky_branch(self):
        snippet = """
        def proc(env, fast):
            t = env.timeout(1.0)
            if fast:
                yield t
        """
        hits = rule_hits(snippet, SIM_PATH, self.RULE)
        assert len(hits) == 1
        assert hits[0].line == 3  # the creating assignment

    def test_near_miss_every_path_consumes(self):
        snippet = """
        def proc(env, fast):
            t = env.timeout(1.0)
            if fast:
                yield t
            else:
                t.cancel()
        """
        assert not rule_hits(snippet, SIM_PATH, self.RULE)

    def test_never_consumed_fires(self):
        snippet = """
        def proc(env):
            done = env.event()
            return None
        """
        assert len(rule_hits(snippet, SIM_PATH, self.RULE)) == 1

    def test_handed_off_waitables_are_exempt(self):
        # Escaping uses (returns, call arguments, container stores)
        # leave the waitable's fate to the receiver.
        for snippet in (
            "def proc(env):\n"
            "    done = env.event()\n"
            "    return done\n",
            "def proc(env, tm):\n"
            "    done = env.event()\n"
            "    tm.watch(done)\n",
            "def proc(env, table, tid):\n"
            "    done = env.event()\n"
            "    table[tid] = done\n",
        ):
            assert not rule_hits(snippet, SIM_PATH, self.RULE)

    def test_suppression(self):
        snippet = (
            "def proc(env):\n"
            "    t = env.timeout(1.0)"
            "  # simlint: ignore[waitable-escape]\n"
            "    return None\n"
        )
        violations = lint_source(snippet, SIM_PATH)
        mine = [v for v in violations if v.rule_id == self.RULE]
        assert mine and all(v.suppressed for v in mine)


# ======================================================================
# lock-path-discipline (file rule)
# ======================================================================


class TestLockPathDiscipline:
    RULE = "lock-path-discipline"

    def test_fires_exactly_once_on_unchecked_path(self):
        snippet = """
        def grab(self, lock_table, txn):
            granted = lock_table.acquire(txn)
            if txn.priority:
                return granted
            return None
        """
        hits = rule_hits(snippet, CC_PATH, self.RULE)
        assert len(hits) == 1
        assert hits[0].line == 3

    def test_near_miss_every_path_inspects_the_grant(self):
        snippet = """
        def grab(self, lock_table, txn):
            granted, request = lock_table.acquire(txn)
            if granted:
                return request
            self.block(request)
            return None
        """
        assert not rule_hits(snippet, CC_PATH, self.RULE)

    def test_discarded_result_fires(self):
        snippet = """
        def grab(self, lock_table, txn):
            lock_table.acquire(txn)
            return True
        """
        assert len(rule_hits(snippet, CC_PATH, self.RULE)) == 1

    def test_exception_edge_escaping_the_check_fires(self):
        snippet = """
        def grab(self, lock_table, txn):
            try:
                granted = lock_table.acquire(txn)
                self.audit(granted)
            finally:
                self.done()
        """
        # An exception between acquire and audit leaves via the
        # finally without the grant ever being inspected.
        assert len(rule_hits(snippet, CC_PATH, self.RULE)) == 1

    def test_consuming_in_the_finally_is_clean(self):
        snippet = """
        def grab(self, lock_table, txn):
            try:
                granted = lock_table.acquire(txn)
            finally:
                self.settle(granted)
        """
        assert not rule_hits(snippet, CC_PATH, self.RULE)

    def test_out_of_scope_path_is_ignored(self):
        snippet = """
        def grab(lock_table, txn):
            lock_table.acquire(txn)
        """
        assert not rule_hits(snippet, SIM_PATH, self.RULE)


# ======================================================================
# time-taint (project rule)
# ======================================================================


class TestTimeTaint:
    RULE = "time-taint"

    def test_fires_exactly_once_on_derived_equality(self, tmp_path):
        hits = project_hits(
            tmp_path,
            self.RULE,
            {
                "repro/sim/sched.py": """
                def due(env, delay):
                    deadline = env.now + delay
                    return deadline == env.now
                """
            },
        )
        assert len(hits) == 1
        assert hits[0].line == 4  # the comparison

    def test_fires_across_a_call_boundary(self, tmp_path):
        hits = project_hits(
            tmp_path,
            self.RULE,
            {
                "repro/sim/sched.py": """
                def _advance(now, step):
                    return now + step

                def poll(env, step):
                    target = _advance(env.now, step)
                    return target == env.now
                """
            },
        )
        assert len(hits) == 1
        assert hits[0].line == 7  # the comparison in poll()

    def test_fires_on_dict_key(self, tmp_path):
        hits = project_hits(
            tmp_path,
            self.RULE,
            {
                "repro/sim/sched.py": """
                def bucket(env, width, table, item):
                    key = env.now + width
                    table[key] = item
                """
            },
        )
        assert len(hits) == 1

    def test_near_miss_pure_copy_is_clean(self, tmp_path):
        hits = project_hits(
            tmp_path,
            self.RULE,
            {
                "repro/sim/sched.py": """
                def snapshot(env, table, item):
                    stamp = env.now
                    table[stamp] = item
                    return stamp
                """
            },
        )
        assert not hits


# ======================================================================
# draw-escape (project rule)
# ======================================================================


class TestDrawEscape:
    RULE = "draw-escape"

    def test_fires_exactly_once_on_posted_draw(self, tmp_path):
        hits = project_hits(
            tmp_path,
            self.RULE,
            {
                "repro/core/traffic.py": """
                def send(network, streams, node, handler):
                    delay = streams.exponential("ext-think", 1.0)
                    network.post(node, node, handler, delay)
                """
            },
        )
        assert len(hits) == 1
        assert hits[0].line == 4

    def test_fires_on_set_storage(self, tmp_path):
        hits = project_hits(
            tmp_path,
            self.RULE,
            {
                "repro/core/traffic.py": """
                def pick(streams, chosen):
                    page = streams.uniform_int("page", 1, 100)
                    chosen.add(page)
                """
            },
        )
        assert len(hits) == 1

    def test_near_miss_draw_consumed_locally(self, tmp_path):
        hits = project_hits(
            tmp_path,
            self.RULE,
            {
                "repro/core/traffic.py": """
                def send(network, streams, node, handler, wait):
                    delay = streams.exponential("ext-think", 1.0)
                    wait(delay)
                    network.post(node, node, handler, "payload")
                """
            },
        )
        assert not hits


# ======================================================================
# Uniformity: suppression, --select, parallel file pass
# ======================================================================


class TestUniformity:
    def test_select_scopes_flow_rules_like_any_other(self):
        from repro.lint.cli import _select_rules

        file_rules, project_rules = _select_rules(
            "waitable-escape,time-taint", None
        )
        assert [r.rule_id for r in file_rules] == ["waitable-escape"]
        assert [r.rule_id for r in project_rules] == ["time-taint"]

    def test_ignore_glob_drops_flow_rules(self):
        from repro.lint.cli import _select_rules

        file_rules, project_rules = _select_rules(
            None, "time-taint,draw-escape,race-reconciliation"
        )
        ids = [r.rule_id for r in file_rules] + [
            r.rule_id for r in project_rules
        ]
        assert "time-taint" not in ids
        assert "draw-escape" not in ids
        assert "waitable-escape" in ids  # untouched

    def test_flow_findings_survive_the_parallel_pass(self, tmp_path):
        root = build_package(
            tmp_path,
            {
                "repro/sim/leaky.py": """
                def proc(env):
                    t = env.timeout(1.0)
                    return None
                """
            },
        )
        report = lint_paths([root], jobs=2)
        assert [
            v.rule_id
            for v in report.active
            if v.rule_id == "waitable-escape"
        ] == ["waitable-escape"]

    def test_flow_rules_declare_engine_hash_modules(self):
        for rule_id in (
            "waitable-escape",
            "lock-path-discipline",
            "time-taint",
            "draw-escape",
        ):
            rule = get_rule(rule_id)
            assert rule.extra_hash_modules == (
                "repro.lint.flow.cfg",
                "repro.lint.flow.dataflow",
                "repro.lint.flow.taint",
            )
            assert rule.severity == "error"

    def test_engine_edit_changes_rule_source_hash(self, monkeypatch):
        # The composite hash must cover the engine modules: hashing
        # the same rule with a different digest for cfg.py must change
        # the signature the file cache keys on.
        import repro.lint.registry as registry

        rule = get_rule("waitable-escape")
        before = rule.source_hash
        original = registry.module_source_hash

        def tweaked(module_file):
            digest = original(module_file)
            if module_file.endswith("flow/cfg.py"):
                return "0" * 16
            return digest

        monkeypatch.setattr(
            registry, "module_source_hash", tweaked
        )
        assert rule.source_hash != before
